"""Tests for provenance trees and the provenance 2-monoid (Defs. 6.1/6.2)."""

import pytest

from repro.algebra.counting import CountingSemiring
from repro.algebra.laws import check_two_monoid_laws
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.provenance import (
    NodeKind,
    ProvenanceMonoid,
    conjoin,
    disjoin,
    evaluate_tree,
    false_tree,
    is_read_once,
    leaf,
    true_tree,
    truth_value,
)
from repro.exceptions import AlgebraError


class TestConstruction:
    def test_leaf(self):
        tree = leaf("a")
        assert tree.kind is NodeKind.LEAF
        assert tree.support == {"a"}
        assert not tree.is_true and not tree.is_false

    def test_constants(self):
        assert true_tree().is_true
        assert false_tree().is_false
        assert true_tree().support == frozenset()

    def test_reserved_symbols_rejected(self):
        with pytest.raises(AlgebraError):
            leaf(("__prov_true__",))

    def test_disjoin_builds_or(self):
        tree = disjoin(leaf("a"), leaf("b"))
        assert tree.kind is NodeKind.OR
        assert tree.support == {"a", "b"}

    def test_conjoin_builds_and(self):
        tree = conjoin(leaf("a"), leaf("b"))
        assert tree.kind is NodeKind.AND


class TestCanonicalization:
    def test_commutativity_is_structural(self):
        assert disjoin(leaf("a"), leaf("b")) == disjoin(leaf("b"), leaf("a"))
        assert conjoin(leaf("a"), leaf("b")) == conjoin(leaf("b"), leaf("a"))

    def test_associativity_flattens(self):
        left = disjoin(disjoin(leaf("a"), leaf("b")), leaf("c"))
        right = disjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        assert left == right
        assert len(left.children) == 3

    def test_identity_laws(self):
        a = leaf("a")
        assert disjoin(a, false_tree()) == a
        assert conjoin(a, true_tree()) == a

    def test_absorbing_constants(self):
        a = leaf("a")
        assert disjoin(a, true_tree()).is_true
        assert conjoin(a, false_tree()).is_false

    def test_zero_times_zero(self):
        monoid = ProvenanceMonoid()
        assert monoid.mul(monoid.zero, monoid.zero) == monoid.zero

    def test_mixed_nesting_does_not_flatten(self):
        tree = conjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        assert tree.kind is NodeKind.AND
        assert len(tree.children) == 2

    def test_duplicate_children_preserved(self):
        tree = disjoin(leaf("a"), leaf("a"))
        assert len(tree.children) == 2


class TestDecomposability:
    def test_distinct_leaves_decomposable(self):
        tree = conjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        assert tree.is_decomposable
        assert is_read_once(tree)

    def test_repeated_leaf_not_decomposable(self):
        tree = disjoin(conjoin(leaf("a"), leaf("b")), conjoin(leaf("a"), leaf("c")))
        assert not tree.is_decomposable

    def test_constants_are_decomposable(self):
        assert true_tree().is_decomposable
        assert false_tree().is_decomposable

    def test_leaf_count(self):
        tree = disjoin(leaf("a"), leaf("a"))
        assert tree.leaf_count == 2
        assert len(tree.support) == 1


class TestTruthValue:
    def test_and_or_evaluation(self):
        tree = conjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        assert truth_value(tree, {"a", "b"})
        assert truth_value(tree, {"a", "c"})
        assert not truth_value(tree, {"a"})
        assert not truth_value(tree, {"b", "c"})

    def test_constants(self):
        assert truth_value(true_tree(), set())
        assert not truth_value(false_tree(), {"a"})


class TestEvaluateTree:
    def test_probability_evaluation(self):
        monoid = ProbabilityMonoid()
        tree = conjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        probs = {"a": 0.5, "b": 0.5, "c": 0.5}
        value = evaluate_tree(tree, monoid, probs.__getitem__)
        assert value == pytest.approx(0.5 * 0.75)

    def test_counting_evaluation(self):
        monoid = CountingSemiring()
        tree = conjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        value = evaluate_tree(tree, monoid, lambda _s: 1)
        assert value == 2

    def test_constants_map_to_identities(self):
        monoid = CountingSemiring()
        assert evaluate_tree(true_tree(), monoid, lambda _s: 0) == 1
        assert evaluate_tree(false_tree(), monoid, lambda _s: 9) == 0


class TestFreeProvenanceMonoid:
    """The unsimplified universal 2-monoid (needed for Shapley-style targets)."""

    def test_keeps_and_with_false(self):
        from repro.algebra.provenance import FreeProvenanceMonoid

        monoid = FreeProvenanceMonoid()
        kept = monoid.mul(leaf("a"), monoid.zero)
        assert not kept.is_false
        assert kept.kind is NodeKind.AND
        assert kept.support == {"a"}

    def test_zero_times_zero_is_zero(self):
        from repro.algebra.provenance import FreeProvenanceMonoid

        monoid = FreeProvenanceMonoid()
        assert monoid.mul(monoid.zero, monoid.zero) == monoid.zero

    def test_one_plus_one_is_not_one(self):
        """1 ⊕ 1 must stay a 2-node tree: φ(1 ⊕ 1) = 2 in the counting
        semiring, so collapsing it would break universality."""
        from repro.algebra.counting import CountingSemiring as _CS
        from repro.algebra.provenance import FreeProvenanceMonoid

        monoid = FreeProvenanceMonoid()
        doubled = monoid.add(monoid.one, monoid.one)
        assert not doubled.is_true
        assert evaluate_tree(doubled, _CS(), lambda _s: 0) == 2

    def test_identity_laws(self):
        from repro.algebra.provenance import FreeProvenanceMonoid

        monoid = FreeProvenanceMonoid()
        a = leaf("a")
        assert monoid.add(a, monoid.zero) == a
        assert monoid.mul(a, monoid.one) == a

    def test_laws_census(self):
        from repro.algebra.provenance import FreeProvenanceMonoid

        monoid = FreeProvenanceMonoid()
        samples = [
            monoid.zero, monoid.one, leaf("a"), leaf("b"),
            monoid.add(leaf("a"), leaf("b")),
            monoid.mul(leaf("c"), monoid.zero),
        ]
        assert check_two_monoid_laws(monoid, samples) == []

    def test_not_annihilating(self):
        from repro.algebra.provenance import FreeProvenanceMonoid

        assert not FreeProvenanceMonoid().annihilates

    def test_quotient_relationship(self):
        """Canonicalizing a free tree gives the simplified monoid's result."""
        from repro.algebra.provenance import FreeProvenanceMonoid

        free = FreeProvenanceMonoid()
        kept = free.mul(leaf("a"), free.zero)
        simplified = conjoin(leaf("a"), false_tree())
        assert simplified.is_false
        # φ into an annihilating monoid agrees on both representations.
        from repro.algebra.counting import CountingSemiring as _CS

        counting = _CS()
        assert evaluate_tree(kept, counting, lambda _s: 3) == 0
        assert evaluate_tree(simplified, counting, lambda _s: 3) == 0


class TestMonoidLaws:
    def test_law_census(self):
        monoid = ProvenanceMonoid()
        samples = [
            monoid.zero, monoid.one, leaf("a"), leaf("b"),
            disjoin(leaf("a"), leaf("b")), conjoin(leaf("c"), leaf("d")),
        ]
        assert check_two_monoid_laws(monoid, samples) == []

    def test_str_rendering(self):
        tree = conjoin(leaf("a"), disjoin(leaf("b"), leaf("c")))
        rendered = str(tree)
        assert "∧" in rendered and "∨" in rendered
        assert str(true_tree()) == "true"
        assert str(false_tree()) == "false"
