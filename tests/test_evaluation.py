"""Tests for conjunctive-query evaluation (the baseline substrate)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.evaluation import (
    count_satisfying_assignments,
    evaluates_true,
    satisfying_assignments,
)
from repro.query.bcq import make_query
from repro.query.families import q_eq1, q_h, q_nh, random_query, star_query
from repro.workloads.generators import random_database, star_database


class TestFigure1Evaluation:
    def test_initial_count_is_one(self):
        db = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        assert count_satisfying_assignments(q_eq1(), db) == 1

    def test_the_unique_assignment(self):
        db = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        [assignment] = list(satisfying_assignments(q_eq1(), db))
        assert assignment == {"A": 1, "B": 5, "C": 2, "D": 4}

    def test_repaired_counts_from_the_paper(self):
        base = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        plus_r = base.with_facts(
            Database.from_relations({"R": [(1, 6), (1, 7)]}).facts()
        )
        assert count_satisfying_assignments(q_eq1(), plus_r) == 3
        optimal = base.with_facts(
            Database.from_relations({"R": [(1, 6)], "T": [(1, 2, 9)]}).facts()
        )
        assert count_satisfying_assignments(q_eq1(), optimal) == 4


class TestBasics:
    def test_empty_database_false(self):
        assert not evaluates_true(q_h(), Database())
        assert count_satisfying_assignments(q_h(), Database()) == 0

    def test_cartesian_count(self):
        db = Database.from_relations(
            {"E": [(1, 2), (1, 3)], "F": [(2, 5), (2, 6), (3, 7)]}
        )
        # E(X,Y) ∧ F(Y,Z): Y=2 gives 1·2, Y=3 gives 1·1.
        assert count_satisfying_assignments(q_h(), db) == 3

    def test_qnh_evaluation(self):
        db = Database.from_relations(
            {"R": [(1,), (2,)], "S": [(1, 9), (2, 8)], "T": [(9,)]}
        )
        assert count_satisfying_assignments(q_nh(), db) == 1
        assert evaluates_true(q_nh(), db)

    def test_nullary_atom_semantics(self):
        q = make_query([("N", ""), ("R", "A")])
        without_n = Database.from_relations({"R": [(1,)]})
        assert not evaluates_true(q, without_n)
        with_n = without_n.with_facts(
            Database.from_relations({"N": [()]}).facts()
        )
        assert count_satisfying_assignments(q, with_n) == 1

    def test_disconnected_product(self):
        q = make_query([("R", "A"), ("S", "B")])
        db = Database.from_relations({"R": [(1,), (2,)], "S": [(5,), (6,), (7,)]})
        assert count_satisfying_assignments(q, db) == 6

    def test_star_database_closed_form(self):
        q = star_query(3)
        db = star_database(q, hubs=4, spokes_per_hub=2)
        assert count_satisfying_assignments(q, db) == 4 * 2**3

    def test_repeated_variable_across_atoms(self):
        q = make_query([("R", "AB"), ("S", "BA")])
        db = Database.from_relations({"R": [(1, 2), (2, 1)], "S": [(2, 1)]})
        # Needs R(a,b) and S(b,a): only (a,b)=(1,2) works.
        assert count_satisfying_assignments(q, db) == 1


def _brute_force_count(query, database) -> int:
    """Reference evaluator: try every assignment over the active domain."""
    from itertools import product

    domain = sorted(database.active_domain(), key=repr)
    variables = sorted(query.variables)
    count = 0
    for values in product(domain, repeat=len(variables)):
        assignment = dict(zip(variables, values))
        if all(
            tuple(assignment[v] for v in atom.variables)
            in database.tuples(atom.relation)
            for atom in query.atoms
        ):
            count += 1
    return count


class TestAgainstReferenceEvaluator:
    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=60, deadline=None)
    def test_counts_match_reference(self, seed):
        rng = random.Random(seed)
        query = random_query(rng, max_variables=3, max_atoms=3, max_arity=2)
        database = random_database(
            query, facts_per_relation=3, domain_size=3, seed=rng
        )
        if not database.active_domain():
            return
        assert count_satisfying_assignments(query, database) == (
            _brute_force_count(query, database)
        )

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_assignments_are_distinct_and_satisfying(self, seed):
        rng = random.Random(seed)
        query = random_query(rng, max_variables=3, max_atoms=3, max_arity=2)
        database = random_database(
            query, facts_per_relation=3, domain_size=3, seed=rng
        )
        seen = set()
        for assignment in satisfying_assignments(query, database):
            key = tuple(sorted(assignment.items(), key=lambda kv: kv[0]))
            assert key not in seen, "bag-set semantics: assignments are distinct"
            seen.add(key)
            for atom in query.atoms:
                values = tuple(assignment[v] for v in atom.variables)
                assert values in database.tuples(atom.relation)
