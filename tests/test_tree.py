"""Tests for the Proposition 5.5 variable-tree construction."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.bcq import make_query
from repro.query.families import (
    q_eq1,
    q_h,
    q_nh,
    random_hierarchical_query,
    star_query,
    telescope_query,
)
from repro.query.tree import (
    build_variable_forest,
    verify_variable_tree,
)
from repro.query.components import connected_components


class TestEq1Tree:
    def test_tree_exists(self):
        forest = build_variable_forest(q_eq1())
        assert forest is not None
        assert len(forest.trees) == 1

    def test_root_is_a(self):
        """A occurs in all three atoms, so it must be the root."""
        forest = build_variable_forest(q_eq1())
        assert forest.trees[0].root == "A"

    def test_paths_match_atoms(self):
        forest = build_variable_forest(q_eq1())
        tree = forest.trees[0]
        paths = {frozenset(tree.path_to_root(v)) for v in tree.variables}
        assert frozenset({"A", "B"}) in paths        # R(A,B)
        assert frozenset({"A", "C"}) in paths        # S(A,C)
        assert frozenset({"A", "C", "D"}) in paths   # T(A,C,D)

    def test_depths(self):
        tree = build_variable_forest(q_eq1()).trees[0]
        assert tree.depth("A") == 0
        assert tree.depth("B") == 1
        assert tree.depth("C") == 1
        assert tree.depth("D") == 2

    def test_children(self):
        tree = build_variable_forest(q_eq1()).trees[0]
        assert set(tree.children("A")) == {"B", "C"}
        assert tree.children("C") == ("D",)
        assert tree.children("D") == ()


class TestOtherQueries:
    def test_qh_tree(self):
        """E(X,Y) ∧ F(Y,Z): Y is the root."""
        forest = build_variable_forest(q_h())
        assert forest is not None
        assert forest.trees[0].root == "Y"

    def test_non_hierarchical_has_no_tree(self):
        assert build_variable_forest(q_nh()) is None

    def test_star_tree_shape(self):
        forest = build_variable_forest(star_query(4))
        tree = forest.trees[0]
        assert tree.root == "X"
        assert len(tree.children("X")) == 4

    def test_telescope_tree_is_a_chain(self):
        forest = build_variable_forest(telescope_query(5))
        tree = forest.trees[0]
        assert tree.root == "X1"
        for depth, variable in enumerate(
            ("X1", "X2", "X3", "X4", "X5")
        ):
            assert tree.depth(variable) == depth

    def test_disconnected_query_gets_forest(self):
        q = make_query([("R", "A"), ("S", "B")])
        forest = build_variable_forest(q)
        assert len(forest.trees) == 2
        assert forest.variables == {"A", "B"}

    def test_nullary_components_are_skipped(self):
        q = make_query([("R", "A"), ("N", "")])
        forest = build_variable_forest(q)
        assert len(forest.trees) == 1

    def test_equal_at_sets_are_chained(self):
        q = make_query([("R", "AB")])
        forest = build_variable_forest(q)
        tree = forest.trees[0]
        # A and B have identical at-sets; one must parent the other.
        assert tree.depth("A") + tree.depth("B") == 1


class TestVerification:
    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=100, deadline=None)
    def test_built_trees_verify(self, seed):
        query = random_hierarchical_query(random.Random(seed))
        forest = build_variable_forest(query)
        assert forest is not None
        components = [
            c for c in connected_components(query) if c.variables
        ]
        assert len(forest.trees) == len(components)
        for component, tree in zip(components, forest.trees):
            assert verify_variable_tree(component, tree)

    def test_verify_rejects_wrong_tree(self):
        from repro.query.tree import VariableTree

        component = connected_components(q_eq1())[0]
        bad = VariableTree(root="B", parent={"A": "B", "C": "A", "D": "C"})
        assert not verify_variable_tree(component, bad)

    def test_verify_rejects_wrong_variable_set(self):
        from repro.query.tree import VariableTree

        component = connected_components(q_eq1())[0]
        bad = VariableTree(root="A", parent={"B": "A"})
        assert not verify_variable_tree(component, bad)
