"""Kernel-vs-scalar equivalence: the batched engine must match the scalar one.

Three layers of checks:

* **Kronecker convolution** ≡ the naive ``_convolve`` on random non-negative
  vectors, including truncation edge cases (empty operands, all-zero
  operands, truncation shorter/longer than the full product).
* **Kernel ≡ scalar relation ops** for every bundled monoid on randomized
  relations: ``project_out`` and ``merge`` (with mismatched variable orders,
  and one-sided support tuples to exercise the Shapley union-merge).
* **End-to-end smoke**: the Figure 1 instance and the quick perf suite give
  identical results under ``kernel_mode="auto"`` and ``"scalar"``.
"""

from __future__ import annotations

import random
from fractions import Fraction

import math
import pytest

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.algebra.provenance import ProvenanceMonoid, leaf
from repro.algebra.real import RealSemiring
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import (
    SatVector,
    ShapleyKernel,
    ShapleyMonoid,
    _convolve,
    kron_convolve,
)
from repro.algebra.tropical import (
    MaxPlusSemiring,
    MaxTimesSemiring,
    MinPlusSemiring,
)
from repro.core.algorithm import execute_plan, run_algorithm
from repro.core.instrument import CountingMonoid
from repro.core.kernels import (
    GenericKernel,
    kernel_for,
    kernels_forced_scalar,
    scalar_kernels,
)
from repro.core.plan import clear_plan_cache, compile_plan, plan_cache_info
from repro.db.annotated import KDatabase, KRelation
from repro.exceptions import ReproError
from repro.query.atoms import make_atom
from repro.query.families import q_eq1


# ----------------------------------------------------------------------
# Kronecker convolution ≡ naive convolution
# ----------------------------------------------------------------------
class TestKronConvolve:
    def test_matches_naive_on_random_vectors(self):
        rng = random.Random(42)
        for _ in range(500):
            left = [rng.randrange(0, 1000) for _ in range(rng.randrange(0, 10))]
            right = [rng.randrange(0, 1000) for _ in range(rng.randrange(0, 10))]
            length = rng.randrange(1, 14)
            assert kron_convolve(left, right, length) == _convolve(
                left, right, length
            ), (left, right, length)

    def test_huge_coefficients_stay_exact(self):
        rng = random.Random(7)
        left = [rng.randrange(0, 2**200) for _ in range(6)]
        right = [rng.randrange(0, 2**200) for _ in range(6)]
        assert kron_convolve(left, right, 11) == _convolve(left, right, 11)

    @pytest.mark.parametrize(
        "left,right,length",
        [
            ([], [], 3),
            ([], [1, 2], 3),
            ([0, 0, 0], [1, 2], 4),
            ([1], [5], 1),
            ([3], [1, 2, 3], 2),
            ([1, 2, 3], [4], 5),
            ([1, 1], [1, 1], 1),       # truncation below the product degree
            ([1, 1], [1, 1], 3),       # exact product length
            ([1, 1], [1, 1], 9),       # zero-padded beyond the product
            ([0, 0, 7], [0, 5], 6),    # leading zeros
            ([2, 0, 0], [3, 0], 6),    # trailing zeros get trimmed
        ],
    )
    def test_truncation_edge_cases(self, left, right, length):
        assert kron_convolve(left, right, length) == _convolve(
            left, right, length
        )


# ----------------------------------------------------------------------
# Shapley kernel internals
# ----------------------------------------------------------------------
class TestShapleyKernel:
    def test_resolves_to_specialized_kernel(self):
        monoid = ShapleyMonoid(4)
        assert isinstance(kernel_for(monoid), ShapleyKernel)
        with scalar_kernels():
            assert isinstance(kernel_for(monoid), GenericKernel)
            assert kernels_forced_scalar()
        assert not kernels_forced_scalar()

    def test_wrapped_monoid_keeps_generic_kernel(self):
        # CountingMonoid must stay on the generic kernel so its ⊕/⊗ counters
        # keep observing every application.
        wrapped = CountingMonoid(ShapleyMonoid(3))
        assert isinstance(kernel_for(wrapped), GenericKernel)

    @pytest.mark.parametrize("length", [1, 2, 3, 7])
    def test_add_mul_match_scalar_on_random_vectors(self, length):
        monoid = ShapleyMonoid(length)
        kernel = ShapleyKernel(monoid)
        rng = random.Random(length)

        def vector():
            pool = [monoid.zero, monoid.one, monoid.star]
            if rng.random() < 0.5:
                return rng.choice(pool)
            return SatVector(
                tuple(rng.randrange(0, 6) for _ in range(length)),
                tuple(rng.randrange(0, 6) for _ in range(length)),
            )

        for _ in range(300):
            left, right = vector(), vector()
            assert kernel._add(left, right) == monoid.add(left, right)
            assert kernel._mul(left, right) == monoid.mul(left, right)

    @pytest.mark.parametrize("length", [1, 2, 5])
    def test_spike_fold_closed_form(self, length):
        monoid = ShapleyMonoid(length)
        kernel = ShapleyKernel(monoid)
        for ones in range(4):
            for stars in range(7):
                if not (ones or stars):
                    continue
                items = [monoid.one] * ones + [monoid.star] * stars
                expected = items[0]
                for item in items[1:]:
                    expected = monoid.add(expected, item)
                assert kernel._spike_fold(ones, stars) == expected

    def test_identity_fast_paths_in_monoid(self):
        monoid = ShapleyMonoid(4)
        dense = monoid.add(monoid.star, monoid.mul(monoid.star, monoid.star))
        assert monoid.add(monoid.zero, dense) == dense
        assert monoid.add(dense, monoid.zero) == dense
        assert monoid.mul(monoid.one, dense) == dense
        assert monoid.mul(dense, monoid.one) == dense
        # 0 ⊗ a is NOT 0 — the non-annihilating collapse.
        collapsed = monoid.mul(monoid.zero, dense)
        assert collapsed != monoid.zero
        totals = [
            f + t for f, t in zip(dense.false_counts, dense.true_counts)
        ]
        assert list(collapsed.false_counts) == totals
        assert all(t == 0 for t in collapsed.true_counts)


# ----------------------------------------------------------------------
# Kernel ≡ scalar on randomized relations, every bundled monoid
# ----------------------------------------------------------------------
def _samplers():
    """(monoid, annotation sampler) pairs covering every bundled carrier."""
    bagset = BagSetMonoid(4)
    shapley = ShapleyMonoid(4)
    provenance = ProvenanceMonoid()

    def monotone(rng):
        total, out = 0, []
        for _ in range(4):
            total += rng.randrange(0, 3)
            out.append(total)
        return tuple(out)

    def sat(rng):
        if rng.random() < 0.4:
            return rng.choice([shapley.zero, shapley.one, shapley.star])
        return SatVector(
            tuple(rng.randrange(0, 5) for _ in range(4)),
            tuple(rng.randrange(0, 5) for _ in range(4)),
        )

    return [
        (ProbabilityMonoid(), lambda rng: rng.choice([0.0, 0.25, 0.5, 1.0, rng.random()])),
        (ExactProbabilityMonoid(), lambda rng: Fraction(rng.randrange(0, 5), 4)),
        (CountingSemiring(), lambda rng: rng.randrange(0, 6)),
        (RealSemiring(), lambda rng: rng.choice([0.0, 1.0, rng.random() * 3])),
        (BooleanSemiring(), lambda rng: rng.random() < 0.6),
        (MinPlusSemiring(), lambda rng: rng.choice([math.inf, 0, 1, rng.randrange(0, 9)])),
        (MaxTimesSemiring(), lambda rng: rng.randrange(0, 6)),
        (MaxPlusSemiring(), lambda rng: rng.choice([-math.inf, 0, rng.randrange(0, 9)])),
        (ResilienceMonoid(), lambda rng: rng.choice([math.inf, 0, 1, rng.randrange(0, 5)])),
        (bagset, lambda rng: monotone(rng)),
        (shapley, sat),
        (provenance, lambda rng: rng.choice(
            [provenance.zero, provenance.one, leaf("a"), leaf("b"), leaf("c")]
        )),
    ]


def _random_relation(atom, monoid, sampler, rng, tuples=12, domain=4):
    relation = KRelation(atom, monoid)
    for _ in range(tuples):
        values = tuple(rng.randrange(0, domain) for _ in range(atom.arity))
        relation.set(values, sampler(rng))
    return relation


def _assert_equal_relations(monoid, kernel_rel, scalar_rel):
    assert kernel_rel.support() == scalar_rel.support()
    for values, annotation in kernel_rel.items():
        assert monoid.eq(annotation, scalar_rel.annotation(values)), (
            monoid.name,
            values,
            annotation,
            scalar_rel.annotation(values),
        )


@pytest.mark.parametrize(
    "monoid,sampler", _samplers(), ids=lambda m: getattr(m, "name", None)
)
class TestKernelScalarEquivalence:
    def test_project_out(self, monoid, sampler):
        rng = random.Random(2024)
        atom = make_atom("R", ("X", "Y"))
        target = make_atom("R'", ("X",))
        for trial in range(6):
            relation = _random_relation(atom, monoid, sampler, rng)
            kernel_out = relation.project_out("Y", target)
            with scalar_kernels():
                scalar_out = relation.project_out("Y", target)
            _assert_equal_relations(monoid, kernel_out, scalar_out)

    def test_merge_with_reordered_variables(self, monoid, sampler):
        rng = random.Random(77)
        first_atom = make_atom("R", ("X", "Y"))
        second_atom = make_atom("S", ("Y", "X"))
        target = make_atom("R'", ("X", "Y"))
        for trial in range(6):
            first = _random_relation(first_atom, monoid, sampler, rng)
            # Disjoint-ish supports: one-sided tuples exercise the Shapley
            # union-merge (a ⊗ 0 ≠ 0) on every trial.
            second = _random_relation(second_atom, monoid, sampler, rng, domain=5)
            kernel_out = first.merge(second, target)
            with scalar_kernels():
                scalar_out = first.merge(second, target)
            _assert_equal_relations(monoid, kernel_out, scalar_out)

    def test_merge_identity_alignment(self, monoid, sampler):
        rng = random.Random(5)
        first_atom = make_atom("R", ("X", "Y"))
        second_atom = make_atom("S", ("X", "Y"))
        target = make_atom("R'", ("X", "Y"))
        first = _random_relation(first_atom, monoid, sampler, rng)
        second = _random_relation(second_atom, monoid, sampler, rng)
        kernel_out = first.merge(second, target)
        with scalar_kernels():
            scalar_out = first.merge(second, target)
        _assert_equal_relations(monoid, kernel_out, scalar_out)


def test_shapley_union_merge_keeps_one_sided_tuples():
    """a ⊗ 0 ≠ 0: tuples on one side only must survive a Shapley merge."""
    monoid = ShapleyMonoid(3)
    left = KRelation(make_atom("R", ("X",)), monoid, {(1,): monoid.star})
    right = KRelation(make_atom("S", ("X",)), monoid, {(2,): monoid.star})
    target = make_atom("R'", ("X",))
    merged = left.merge(right, target)
    with scalar_kernels():
        scalar_merged = left.merge(right, target)
    assert merged.support() == scalar_merged.support() == frozenset({(1,), (2,)})
    assert merged.annotation((1,)) == monoid.mul(monoid.star, monoid.zero)
    assert merged.annotation((2,)) == monoid.mul(monoid.zero, monoid.star)


def test_absorb_matches_scalar():
    monoid = CountingSemiring()
    rng = random.Random(9)
    big_atom = make_atom("R", ("X", "Y"))
    small_atom = make_atom("S", ("X",))
    target = make_atom("R'", ("X", "Y"))
    big = _random_relation(big_atom, monoid, lambda r: r.randrange(0, 5), rng)
    small = _random_relation(small_atom, monoid, lambda r: r.randrange(0, 5), rng)
    kernel_out = big.absorb(small, target)
    with scalar_kernels():
        scalar_out = big.absorb(small, target)
    _assert_equal_relations(monoid, kernel_out, scalar_out)


# ----------------------------------------------------------------------
# Plan cache and policy plumbing
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_repeat_compiles_hit_the_cache(self):
        clear_plan_cache()
        query = q_eq1()
        first = compile_plan(query)
        for _ in range(4):
            assert compile_plan(query) is first
        info = plan_cache_info()
        assert info["hits"] == 4 and info["misses"] == 1

    def test_policies_and_sizes_are_distinct_entries(self):
        clear_plan_cache()
        query = q_eq1()
        compile_plan(query, "rule1_first")
        compile_plan(query, "rule2_first")
        compile_plan(query, "min_support", relation_sizes={"R": 3, "S": 9, "T": 1})
        assert plan_cache_info()["size"] == 3

    def test_min_support_is_a_valid_policy_everywhere(self):
        from repro.query.elimination import eliminate, policy_names

        query = q_eq1()
        assert "min_support" in policy_names()
        assert eliminate(query, "min_support").success
        plan = compile_plan(query, "min_support")
        assert plan.final_relation
        monoid = CountingSemiring()
        annotated = KDatabase(query, monoid)
        assert run_algorithm(query, annotated, policy="min_support") == 0

    def test_min_support_prefers_small_intermediates(self):
        from repro.query.elimination import (
            Rule1Step,
            applicable_rule1_steps,
            make_min_support_policy,
            _FreshNames,
        )

        query = q_eq1()
        fresh = _FreshNames({atom.relation for atom in query.atoms})
        rule1 = applicable_rule1_steps(query, fresh)
        # Applicable Rule 1 moves on q_eq1: B (private in R), D (private in T).
        assert {step.source.relation for step in rule1} == {"R", "T"}
        policy = make_min_support_policy({"R": 1000, "S": 2, "T": 5})
        chosen = policy(rule1, [])
        assert isinstance(chosen, Rule1Step)
        assert chosen.source.relation == "T"

    def test_unknown_policy_message_lists_min_support(self):
        from repro.exceptions import QueryError
        from repro.query.elimination import eliminate

        with pytest.raises(QueryError, match="min_support"):
            eliminate(q_eq1(), "no_such_policy")


# ----------------------------------------------------------------------
# End-to-end smoke: kernel engine ≡ scalar engine
# ----------------------------------------------------------------------
class TestEndToEndSmoke:
    def test_figure1_bagset_identical(self, fig1_query, fig1_instance):
        from repro.problems.bagset_max import maximize_profile

        kernel_profile = maximize_profile(fig1_query, fig1_instance)
        scalar_profile = maximize_profile(
            fig1_query, fig1_instance, kernel_mode="scalar"
        )
        assert kernel_profile == scalar_profile
        assert kernel_profile[fig1_instance.budget] == 4  # the paper's optimum

    def test_figure1_all_policies_agree(self, fig1_query, fig1_instance):
        from repro.problems.bagset_max import maximize_profile

        profiles = {
            policy: maximize_profile(fig1_query, fig1_instance, policy=policy)
            for policy in ("rule1_first", "rule2_first", "min_support")
        }
        assert len(set(profiles.values())) == 1

    def test_quick_perf_suite_agrees(self):
        from repro.bench.perf import run_perf_suite

        document = run_perf_suite(quick=True, repeats=1)
        assert set(document["experiments"]) == {
            "E2", "E4", "E6", "res", "engine", "serve", "multiquery",
        }
        for name, experiment in document["experiments"].items():
            assert experiment["agree"], f"{name} kernel/scalar disagreement"

    def test_invalid_kernel_mode_raises(self, fig1_query):
        annotated = KDatabase(fig1_query, CountingSemiring())
        plan = compile_plan(fig1_query)
        with pytest.raises(ReproError, match="kernel mode"):
            execute_plan(plan, annotated, kernel_mode="vectorized")

    def test_cli_accepts_min_support_policy(self, capsys):
        from repro.cli import main

        code = main(["check", "Q() :- R(A,B), S(A,C)", "--policy", "min_support"])
        assert code == 0
        out = capsys.readouterr().out
        assert "min_support" in out and "hierarchical: True" in out

    def test_cli_bench_quick_json(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "BENCH_perf.json"
        code = main(["bench", "E4", "--quick", "--json", str(path)])
        assert code == 0
        import json

        document = json.loads(path.read_text())
        assert document["experiments"]["E4"]["agree"]
        assert "speedup" in document["experiments"]["E4"]["runs"][0]
