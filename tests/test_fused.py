"""Tests for shared-scan multi-query fusion (``repro.core.fused`` and the
engine/serve layers above it).

The load-bearing property is **bit-identicality within a kernel tier**: a
fused stacked pass must produce byte-for-byte the answers a sequential
per-binding loop produces under the same tier — exact ``==``, never
``approx``.  The suite checks that over every flat-carrier kernel family,
and checks the decline conditions (packed vector kernels, unbound tasks,
batched/scalar modes, numpy-blocked runs, incompatible scan signatures)
fall back to the serial path with correct, positionally aligned results
and untouched fusion counters.  On top sit the engine-session batching API
(``evaluate_many`` memo discipline, mutation invalidation), the JSON
``bindings`` sweep expansion, and the scheduler/server legs — including a
gated deterministic fused claim and an 8-worker stress run.
"""

from __future__ import annotations

import json
import math
import sys
import threading
from fractions import Fraction

import pytest

import repro.core.kernels as kernels_module
from repro.algebra.bagset import BagSetMonoid
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.algebra.real import RealSemiring
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.algebra.tropical import MinPlusSemiring
from repro.core.algorithm import (
    KERNEL_MODES,
    _array_kernel_if_selected,
    execute_plan,
)
from repro.core.fused import FusedTask, execute_fused, stack_token
from repro.core.kernels import array_kernel_for, numpy_or_none
from repro.core.plan import binding_occurrences, compile_plan
from repro.db.annotated import KDatabase
from repro.db.fact import Fact
from repro.engine import Engine
from repro.engine.session import (
    REQUEST_FAMILIES,
    canonical_binding,
    register_request_family,
)
from repro.exceptions import ReproError, SchemaError
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.query.families import q_h, star_query
from repro.query.parser import parse_query
from repro.serve import Request, Scheduler, Server, load_request_stream
from repro.serve.io import requests_from_dict
from repro.workloads.generators import (
    random_database,
    random_probabilistic_database,
)

needs_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="columnar tier needs numpy"
)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _masked(annotated: KDatabase, query, binding) -> KDatabase:
    """Independent serial reference: the binding's section of *annotated*.

    Deliberately re-implements σ_{X=c} over the support dicts (mirroring
    ``EngineSession._masked_database``) so the expectation does not lean on
    the code under test.
    """
    values = dict(binding)
    occurrences = binding_occurrences(query, tuple(values))
    masked = KDatabase(query, annotated.monoid)
    for relation in annotated.relations():
        positions = occurrences.get(relation.atom.relation, ())
        keys, annotations = [], []
        for key, annotation in relation._annotations.items():
            if all(key[pos] == values[var] for pos, var in positions):
                keys.append(key)
                annotations.append(annotation)
        masked.relation(relation.atom.relation).bulk_load(keys, annotations)
    return masked


def _fact_weight(fact: Fact) -> int:
    return sum(value for value in fact.values if isinstance(value, int))


#: (id, monoid factory, ψ) per flat-carrier 2-monoid.  Every ψ is a pure
#: function of the fact and never produces the monoid's zero (except
#: boolean, whose carrier is exact), so serial zero-dropping and the fused
#: no-drop discipline see the same values.
FLAT_FAMILIES = [
    ("probability", ProbabilityMonoid, lambda f: (_fact_weight(f) % 7 + 1) / 10),
    (
        "probability-exact",
        ExactProbabilityMonoid,
        lambda f: Fraction(_fact_weight(f) % 7 + 1, 10),
    ),
    ("boolean", BooleanSemiring, lambda f: _fact_weight(f) % 4 != 0),
    ("counting", CountingSemiring, lambda f: 1 + _fact_weight(f) % 3),
    ("expectation", RealSemiring, lambda f: float(_fact_weight(f) % 5) + 0.5),
    (
        "resilience",
        ResilienceMonoid,
        lambda f: (1, 2, math.inf)[_fact_weight(f) % 3],
    ),
    ("min-plus", MinPlusSemiring, lambda f: float(_fact_weight(f) % 6)),
]


def _star_workload(make_monoid, psi, seed: int = 3):
    query = star_query(2)
    database = random_database(
        query, facts_per_relation=40, domain_size=8, seed=seed
    )
    annotated = KDatabase.annotate(
        query, make_monoid(), database.facts(), psi
    )
    hubs = sorted(
        {fact.values[0] for fact in database.facts() if fact.relation == "R1"}
    )
    bindings = [(("X", value),) for value in hubs[:5]]
    bindings.append((("X", "unseen-value"),))
    return query, annotated, bindings


def _tasks_for(plan, annotated, query, bindings, *, kernel_mode="auto"):
    return [
        FusedTask(
            plan=plan,
            annotated=annotated,
            binding=binding,
            fallback=lambda binding=binding: execute_plan(
                plan,
                _masked(annotated, query, binding),
                kernel_mode=kernel_mode,
            ).result,
        )
        for binding in bindings
    ]


# ----------------------------------------------------------------------
# Core: fused ≡ masked-serial, bit for bit, over every flat kernel
# ----------------------------------------------------------------------
class TestFusedFlatKernels:
    @pytest.mark.parametrize(
        "make_monoid,psi",
        [pytest.param(m, p, id=name) for name, m, p in FLAT_FAMILIES],
    )
    def test_fused_matches_masked_serial_bitwise(self, make_monoid, psi):
        query, annotated, bindings = _star_workload(make_monoid, psi)
        plan = compile_plan(query)
        expected = [
            execute_plan(plan, _masked(annotated, query, binding)).result
            for binding in bindings
        ]
        report = execute_fused(
            _tasks_for(plan, annotated, query, bindings)
        )
        assert report.results == expected  # exact ==, even for floats
        kernel = _array_kernel_if_selected("auto", annotated.monoid)
        if stack_token(kernel) is not None:
            assert report.fused_batches == 1
            assert report.fused_queries == len(bindings)
        else:  # no columnar tier for this monoid: everything went serial
            assert (report.fused_batches, report.fused_queries) == (0, 0)

    @pytest.mark.parametrize(
        "make_monoid,psi",
        [pytest.param(m, p, id=name) for name, m, p in FLAT_FAMILIES],
    )
    def test_width_one_equals_width_k_columns(self, make_monoid, psi):
        """Each member of a fused batch answers exactly as it would alone."""
        query, annotated, bindings = _star_workload(make_monoid, psi)
        plan = compile_plan(query)
        alone = [
            execute_fused(
                _tasks_for(plan, annotated, query, [binding])
            ).results[0]
            for binding in bindings
        ]
        together = execute_fused(
            _tasks_for(plan, annotated, query, bindings)
        ).results
        assert together == alone

    def test_unseen_binding_value_answers_zero(self):
        query, annotated, bindings = _star_workload(
            ProbabilityMonoid, lambda f: 0.5
        )
        report = execute_fused(
            _tasks_for(compile_plan(query), annotated, query, bindings[-1:])
        )
        assert report.results == [annotated.monoid.zero]


# ----------------------------------------------------------------------
# Decline conditions
# ----------------------------------------------------------------------
class TestDeclineConditions:
    def test_empty_batch(self):
        report = execute_fused([])
        assert report.results == []
        assert (report.fused_batches, report.fused_queries) == (0, 0)

    def test_single_task_is_not_counted_as_fusion(self):
        query, annotated, bindings = _star_workload(
            ProbabilityMonoid, lambda f: 0.5
        )
        plan = compile_plan(query)
        report = execute_fused(
            _tasks_for(plan, annotated, query, bindings[:1])
        )
        assert report.results == [
            execute_plan(plan, _masked(annotated, query, bindings[0])).result
        ]
        assert (report.fused_batches, report.fused_queries) == (0, 0)

    @pytest.mark.parametrize(
        "make_monoid", [lambda: BagSetMonoid(3), lambda: ShapleyMonoid(3)],
        ids=["bagset", "shapley"],
    )
    def test_packed_vector_kernels_fall_back(self, make_monoid):
        """Packed carriers are never stacked: every task runs its fallback."""
        query = star_query(2)
        annotated = KDatabase(query, make_monoid())
        plan = compile_plan(query)
        sentinels = [object() for _ in range(3)]
        tasks = [
            FusedTask(plan, annotated, lambda s=s: s, (("X", 0),))
            for s in sentinels
        ]
        report = execute_fused(tasks)
        assert report.results == sentinels
        assert (report.fused_batches, report.fused_queries) == (0, 0)

    def test_unbound_tasks_take_the_fallback(self):
        query, annotated, bindings = _star_workload(
            ProbabilityMonoid, lambda f: 0.5
        )
        plan = compile_plan(query)
        tasks = _tasks_for(plan, annotated, query, bindings[:2])
        sentinel = object()
        tasks.insert(1, FusedTask(plan, annotated, lambda: sentinel))
        report = execute_fused(tasks)
        assert report.results[1] is sentinel
        expected = [
            execute_plan(plan, _masked(annotated, query, binding)).result
            for binding in bindings[:2]
        ]
        assert [report.results[0], report.results[2]] == expected
        kernel = _array_kernel_if_selected("auto", annotated.monoid)
        if stack_token(kernel) is not None:
            assert (report.fused_batches, report.fused_queries) == (1, 2)

    @pytest.mark.parametrize("mode", ["batched", "scalar"])
    def test_non_columnar_modes_decline(self, mode):
        query, annotated, bindings = _star_workload(
            ProbabilityMonoid, lambda f: 0.5
        )
        plan = compile_plan(query)
        report = execute_fused(
            _tasks_for(plan, annotated, query, bindings, kernel_mode=mode),
            kernel_mode=mode,
        )
        assert report.results == [
            execute_plan(
                plan, _masked(annotated, query, binding), kernel_mode=mode
            ).result
            for binding in bindings
        ]
        assert (report.fused_batches, report.fused_queries) == (0, 0)

    def test_numpy_blocked_batch_still_answers(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        kernels_module._reset_numpy_probe()
        try:
            assert numpy_or_none() is None
            query, annotated, bindings = _star_workload(
                ProbabilityMonoid, lambda f: 0.5
            )
            plan = compile_plan(query)
            report = execute_fused(
                _tasks_for(plan, annotated, query, bindings)
            )
            assert report.results == [
                execute_plan(
                    plan, _masked(annotated, query, binding)
                ).result
                for binding in bindings
            ]
            assert (report.fused_batches, report.fused_queries) == (0, 0)
        finally:
            monkeypatch.undo()
            kernels_module._reset_numpy_probe()

    @needs_numpy
    def test_incompatible_signatures_never_cross_fuse(self):
        """Two shapes in one batch → two independent groups, both right."""
        star, star_db, star_bindings = _star_workload(
            ProbabilityMonoid, lambda f: 0.4
        )
        chain = q_h()
        chain_facts = random_database(
            chain, facts_per_relation=30, domain_size=6, seed=9
        )
        chain_db = KDatabase.annotate(
            chain, ProbabilityMonoid(), chain_facts.facts(), lambda f: 0.6
        )
        chain_bindings = [(("X", value),) for value in (0, 1)]
        star_plan, chain_plan = compile_plan(star), compile_plan(chain)
        tasks = (
            _tasks_for(star_plan, star_db, star, star_bindings[:2])
            + _tasks_for(chain_plan, chain_db, chain, chain_bindings)
        )
        expected = [task.fallback() for task in tasks]
        report = execute_fused(tasks)
        assert report.results == expected
        assert report.fused_batches == 2  # one per signature, no mixing
        assert report.fused_queries == 4

    @needs_numpy
    def test_distinct_database_objects_never_cross_fuse(self):
        query, first, bindings = _star_workload(
            ProbabilityMonoid, lambda f: 0.5, seed=3
        )
        _, second, _ = _star_workload(ProbabilityMonoid, lambda f: 0.5, seed=4)
        plan = compile_plan(query)
        tasks = _tasks_for(plan, first, query, bindings[:1]) + _tasks_for(
            plan, second, query, bindings[:1]
        )
        report = execute_fused(tasks)
        assert report.results == [task.fallback() for task in tasks]
        assert (report.fused_batches, report.fused_queries) == (0, 0)


# ----------------------------------------------------------------------
# stack_token
# ----------------------------------------------------------------------
class TestStackToken:
    def test_no_kernel_means_no_token(self):
        assert stack_token(None) is None

    @needs_numpy
    def test_equal_monoid_state_shares_a_token(self):
        first = stack_token(array_kernel_for(ProbabilityMonoid()))
        second = stack_token(array_kernel_for(ProbabilityMonoid()))
        assert first is not None
        assert first == second

    @needs_numpy
    def test_packed_vector_kernels_have_no_token(self):
        for monoid in (BagSetMonoid(2), ShapleyMonoid(2)):
            kernel = array_kernel_for(monoid)
            assert kernel is not None
            assert stack_token(kernel) is None

    @needs_numpy
    def test_token_is_memoized_on_the_kernel(self):
        kernel = array_kernel_for(ProbabilityMonoid())
        token = stack_token(kernel)
        assert kernel._fused_stack_token == token
        assert stack_token(kernel) == token


# ----------------------------------------------------------------------
# Engine session: evaluate_many, bindings, memo discipline
# ----------------------------------------------------------------------
def _session_workload(size: int = 120, seed: int = 7):
    query = star_query(2)
    database = random_probabilistic_database(
        query, facts_per_relation=size // 2, domain_size=10,
        seed=seed, skew=0.6,
    )
    hubs = sorted(
        {
            fact.values[0]
            for fact in database.support_database().facts()
            if fact.relation == "R1"
        }
    )
    return query, database, hubs[:6]


class TestSessionBatching:
    @pytest.mark.parametrize("mode", KERNEL_MODES)
    def test_evaluate_many_matches_serial_loop_bitwise(self, mode):
        query, database, hubs = _session_workload()
        serial_session = Engine(kernel_mode=mode).open(
            query, probabilistic=database
        )
        serial = [
            serial_session.pqe(binding={"X": hub}) for hub in hubs
        ] + [serial_session.expected_count(binding={"X": hub}) for hub in hubs]
        fused_session = Engine(kernel_mode=mode).open(
            query, probabilistic=database
        )
        requests = [("pqe", {"binding": {"X": hub}}) for hub in hubs] + [
            ("expected_count", {"binding": {"X": hub}}) for hub in hubs
        ]
        fused = fused_session.evaluate_many(requests, use_memo=False)
        assert fused == serial  # exact equality within the tier
        stats = fused_session.stats()
        kernel = _array_kernel_if_selected(
            fused_session.kernel_mode, ProbabilityMonoid()
        )
        if stack_token(kernel) is not None:
            assert stats["fused_batches"] == 2  # one per family
            assert stats["fused_queries"] == 2 * len(hubs)
        else:
            assert stats["fused_batches"] == 0
            assert stats["fused_queries"] == 0

    def test_mixed_batch_with_unbound_requests(self):
        query, database, hubs = _session_workload()
        session = Engine().open(query, probabilistic=database)
        requests = [
            ("pqe", {}),
            ("pqe", {"binding": {"X": hubs[0]}}),
            ("expected_count", {}),
            ("pqe", {"binding": {"X": hubs[1]}}),
        ]
        results = session.evaluate_many(requests)
        assert results[0] == session.pqe()
        assert results[1] == session.pqe(binding={"X": hubs[0]})
        assert results[2] == session.expected_count()
        assert results[3] == session.pqe(binding={"X": hubs[1]})

    def test_second_batch_is_served_from_the_memo(self):
        query, database, hubs = _session_workload()
        session = Engine().open(query, probabilistic=database)
        requests = [("pqe", {"binding": {"X": hub}}) for hub in hubs]
        first = session.evaluate_many(requests)
        evaluations = session.stats()["evaluations"]
        hits = session.stats()["memo"]["hits"]
        second = session.evaluate_many(requests)
        assert second == first
        assert session.stats()["evaluations"] == evaluations
        assert session.stats()["memo"]["hits"] == hits + len(hubs)

    def test_mutation_between_batches_invalidates(self):
        query = parse_query("Q() :- R(X), S(X, Y)")
        database = ProbabilisticDatabase(
            {
                Fact("R", (1,)): 0.5,
                Fact("S", (1, 2)): 0.4,
                Fact("R", (2,)): 0.5,
                Fact("S", (2, 3)): 0.8,
            }
        )
        session = Engine().open(query, probabilistic=database)
        requests = [
            ("pqe", {"binding": {"X": 1}}),
            ("pqe", {"binding": {"X": 2}}),
        ]
        first = session.evaluate_many(requests)
        assert first[0] == pytest.approx(0.2)
        assert first[1] == pytest.approx(0.4)
        # Mutate the annotated database behind the memoized answers: the
        # version fingerprint changes, so the next batch re-evaluates with
        # freshly built columnar views.
        session._probability_annotated("pqe", False).set(
            Fact("R", (1,)), 1.0
        )
        second = session.evaluate_many(requests)
        assert second[0] == pytest.approx(0.4)
        assert second[1] == pytest.approx(0.4)

    def test_unseen_binding_value_is_zero(self):
        query, database, _hubs = _session_workload()
        session = Engine().open(query, probabilistic=database)
        assert session.pqe(binding={"X": "never-seen"}) == 0.0
        assert session.expected_count(binding={"X": "never-seen"}) == 0.0

    def test_binding_on_unmentioned_variable_raises(self):
        query, database, _hubs = _session_workload()
        session = Engine().open(query, probabilistic=database)
        with pytest.raises(ReproError, match="Z"):
            session.pqe(binding={"Z": 1})

    def test_evaluate_many_rejects_malformed_items(self):
        query, database, _hubs = _session_workload()
        session = Engine().open(query, probabilistic=database)
        with pytest.raises(ReproError, match="cannot interpret"):
            session.evaluate_many(["pqe"])
        with pytest.raises(ReproError, match="unknown request family"):
            session.evaluate_many([("nonsense", {})])


class TestCanonicalBinding:
    def test_spellings_collapse(self):
        as_dict = canonical_binding({"X": 1, "A": 2})
        as_pairs = canonical_binding([("A", 2), ("X", 1)])
        as_tuple = canonical_binding((("X", 1), ("A", 2)))
        assert as_dict == as_pairs == as_tuple == (("A", 2), ("X", 1))

    def test_empty_and_none_mean_unbound(self):
        assert canonical_binding(None) is None
        assert canonical_binding({}) is None
        assert canonical_binding(()) is None

    def test_request_objects_canonicalize_bindings(self):
        first = Request.make("pqe", binding={"X": 1, "A": 2})
        second = Request.make("pqe", binding=[("A", 2), ("X", 1)])
        assert first == second
        assert first.kwargs["binding"] == (("A", 2), ("X", 1))


# ----------------------------------------------------------------------
# JSON streams: the `bindings` sweep spelling
# ----------------------------------------------------------------------
class TestBindingsStream:
    def test_expansion_preserves_shared_parameters(self):
        requests = requests_from_dict(
            {
                "family": "pqe",
                "exact": True,
                "bindings": [{"X": 1}, [["X", 2]]],
            }
        )
        assert [r.kwargs for r in requests] == [
            {"exact": True, "binding": (("X", 1),)},
            {"exact": True, "binding": (("X", 2),)},
        ]

    def test_entry_without_bindings_is_unchanged(self):
        assert len(requests_from_dict({"family": "pqe"})) == 1

    @pytest.mark.parametrize(
        "payload,match",
        [
            ({"family": "pqe", "bindings": []}, "non-empty list"),
            ({"family": "pqe", "bindings": {"X": 1}}, "non-empty list"),
            (
                {
                    "family": "pqe",
                    "binding": {"X": 1},
                    "bindings": [{"X": 2}],
                },
                "not both",
            ),
        ],
    )
    def test_malformed_bindings_rejected(self, payload, match):
        with pytest.raises(SchemaError, match=match):
            requests_from_dict(payload)

    def test_stream_round_trip_serves_expanded_sweep(self, tmp_path):
        query, database, hubs = _session_workload(size=60)
        facts = [
            {
                "relation": fact.relation,
                "values": list(fact.values),
                "probability": probability,
            }
            for fact, probability in (
                (fact, database.probability(fact))
                for fact in database.facts()
            )
        ]
        document = {
            "query": "Q() :- R1(X, Y1), R2(X, Y2)",
            "data": {"probabilistic": {"facts": facts}},
            "requests": [
                {"family": "pqe", "bindings": [{"X": hub} for hub in hubs]}
            ],
        }
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        loaded_query, data, requests = load_request_stream(path)
        assert len(requests) == len(hubs)
        serial = Engine().open(query, probabilistic=database)
        expected = [serial.pqe(binding={"X": hub}) for hub in hubs]
        with Server(loaded_query, workers=2, **data) as server:
            assert server.map(requests) == expected


# ----------------------------------------------------------------------
# Scheduler and server
# ----------------------------------------------------------------------
@pytest.fixture
def custom_family():
    registered = []

    def register(name, handler):
        register_request_family(name, handler)
        registered.append(name)

    yield register
    for name in registered:
        REQUEST_FAMILIES.pop(name, None)


class TestScheduledFusion:
    def test_stats_expose_batching_with_flat_aliases(self):
        scheduler = Scheduler(workers=1)
        try:
            stats = scheduler.stats()
            batching = stats["batching"]
            assert set(batching) == {
                "sweeps", "swept_requests", "sweep_failures",
                "fused_batches", "fused_queries", "fused_failures",
            }
            for key in (
                "sweeps", "swept_requests", "sweep_failures",
                "fused_batches", "fused_queries",
            ):
                assert stats[key] == batching[key]
        finally:
            scheduler.close()

    def test_gated_queue_drains_as_one_fused_batch(self, custom_family):
        """Hold the sole worker, queue a binding sweep, release: the claim
        takes every compatible sibling and answers bit-identically."""
        gate = threading.Event()
        custom_family("gate", lambda session: gate.wait(10))
        query, database, hubs = _session_workload()
        serial = Engine().open(query, probabilistic=database)
        expected = [serial.pqe(binding={"X": hub}) for hub in hubs]
        session = Engine().open(query, probabilistic=database)
        scheduler = Scheduler(workers=1)
        try:
            blocker = scheduler.submit(session, Request.make("gate"))
            futures = [
                scheduler.submit(
                    session, Request.make("pqe", binding={"X": hub})
                )
                for hub in hubs
            ]
            gate.set()
            blocker.result(10)
            assert [future.result(10) for future in futures] == expected
            batching = scheduler.stats()["batching"]
            kernel = _array_kernel_if_selected(
                session.kernel_mode, ProbabilityMonoid()
            )
            assert batching["fused_batches"] == 1
            assert batching["fused_queries"] == len(hubs)
            assert batching["fused_failures"] == 0
            if stack_token(kernel) is not None:
                assert session.stats()["fused_batches"] >= 1
        finally:
            gate.set()
            scheduler.close()

    def test_eight_worker_stress_is_bit_identical(self):
        """The headline serve leg: 8 workers × an expanded binding sweep ×
        mixed families answers exactly like a serial one-shot loop."""
        query, database, hubs = _session_workload(size=150, seed=13)
        entries = [
            {"family": "pqe", "bindings": [{"X": hub} for hub in hubs]},
            {
                "family": "expected_count",
                "bindings": [{"X": hub} for hub in hubs],
            },
            {"family": "pqe"},
        ]
        requests = [
            request
            for entry in entries
            for request in requests_from_dict(entry)
        ] * 2
        serial_session = Engine().open(query, probabilistic=database)
        serial = [
            serial_session.request(request.family, **request.kwargs)
            for request in requests
        ]
        with Server(query, workers=8, probabilistic=database) as server:
            served = server.map(requests)
            stats = server.stats()
        assert served == serial  # bit-identical, not approximately equal
        assert "batching" in stats["scheduler"]
