"""Tests for database JSON serialization."""

import pytest

from repro.db.database import Database
from repro.db.io import (
    database_from_dict,
    database_to_dict,
    load_database,
    save_database,
)
from repro.exceptions import SchemaError


class TestRoundTrip:
    def test_dict_round_trip(self):
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        assert database_from_dict(database_to_dict(database)) == database

    def test_file_round_trip(self, tmp_path):
        database = Database.from_relations({"R": [(1, "x")], "S": [(2.5, None)]})
        path = tmp_path / "db.json"
        save_database(database, path)
        assert load_database(path) == database

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.json"
        save_database(Database(), path)
        assert len(load_database(path)) == 0

    def test_deterministic_output(self, tmp_path):
        database = Database.from_relations({"B": [(2,), (1,)], "A": [(3,)]})
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        save_database(database, first)
        save_database(database, second)
        assert first.read_text() == second.read_text()


class TestErrors:
    def test_missing_relations_key(self):
        with pytest.raises(SchemaError):
            database_from_dict({})

    def test_wrong_relations_type(self):
        with pytest.raises(SchemaError):
            database_from_dict({"relations": [1, 2]})
