"""Tests for the auxiliary genuine semirings (counting, boolean, tropical,
polynomial) — these DO distribute, unlike the problem 2-monoids."""

import math

import pytest

from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.laws import (
    check_two_monoid_laws,
    find_annihilation_violation,
    find_distributivity_violation,
)
from repro.algebra.polynomial import (
    PolynomialSemiring,
    constant,
    monomial_supports,
    total_degree_one_count,
    variable,
)
from repro.algebra.tropical import (
    MaxPlusSemiring,
    MaxTimesSemiring,
    MinPlusSemiring,
)
from repro.exceptions import AlgebraError


class TestCounting:
    def test_operations(self):
        semiring = CountingSemiring()
        assert semiring.add(2, 3) == 5
        assert semiring.mul(2, 3) == 6
        assert semiring.zero == 0
        assert semiring.one == 1

    def test_laws_and_distributivity(self):
        semiring = CountingSemiring()
        samples = [0, 1, 2, 5]
        assert check_two_monoid_laws(semiring, samples) == []
        assert find_distributivity_violation(semiring, samples) is None
        assert find_annihilation_violation(semiring, samples) is None

    def test_validate(self):
        with pytest.raises(AlgebraError):
            CountingSemiring().validate(-1)


class TestBoolean:
    def test_operations(self):
        semiring = BooleanSemiring()
        assert semiring.add(False, True) is True
        assert semiring.mul(False, True) is False
        assert semiring.annihilates

    def test_laws(self):
        semiring = BooleanSemiring()
        assert check_two_monoid_laws(semiring, [False, True]) == []
        assert find_distributivity_violation(semiring, [False, True]) is None


class TestTropical:
    def test_min_plus(self):
        semiring = MinPlusSemiring()
        assert semiring.add(3, 5) == 3
        assert semiring.mul(3, 5) == 8
        assert semiring.zero == math.inf
        assert semiring.one == 0
        samples = [0, 1, 3, math.inf]
        assert check_two_monoid_laws(semiring, samples) == []
        assert find_distributivity_violation(semiring, samples) is None

    def test_max_times(self):
        semiring = MaxTimesSemiring()
        assert semiring.add(3, 5) == 5
        assert semiring.mul(3, 5) == 15
        samples = [0, 1, 2, 5]
        assert check_two_monoid_laws(semiring, samples) == []
        assert find_distributivity_violation(semiring, samples) is None

    def test_max_plus(self):
        semiring = MaxPlusSemiring()
        assert semiring.add(3, 5) == 5
        assert semiring.mul(3, 5) == 8
        samples = [-math.inf, 0, 1, 4]
        assert check_two_monoid_laws(semiring, samples) == []
        assert find_distributivity_violation(semiring, samples) is None


class TestPolynomial:
    def test_variable_and_constant(self):
        x = variable("x")
        assert total_degree_one_count(x) == 1
        assert constant(0) == frozenset()
        assert total_degree_one_count(constant(3)) == 3

    def test_addition_merges_coefficients(self):
        semiring = PolynomialSemiring()
        x = variable("x")
        two_x = semiring.add(x, x)
        assert total_degree_one_count(two_x) == 2
        assert monomial_supports(two_x) == {frozenset({"x"})}

    def test_multiplication_merges_monomials(self):
        semiring = PolynomialSemiring()
        x, y = variable("x"), variable("y")
        xy = semiring.mul(x, y)
        assert monomial_supports(xy) == {frozenset({"x", "y"})}

    def test_squares_track_exponents(self):
        semiring = PolynomialSemiring()
        x = variable("x")
        x_squared = semiring.mul(x, x)
        [(monomial, coefficient)] = list(x_squared)
        assert monomial == (("x", 2),)
        assert coefficient == 1

    def test_distributivity_and_laws(self):
        semiring = PolynomialSemiring()
        samples = [
            semiring.zero, semiring.one, variable("x"), variable("y"),
            semiring.add(variable("x"), variable("y")),
        ]
        assert check_two_monoid_laws(semiring, samples) == []
        assert find_distributivity_violation(semiring, samples) is None

    def test_binomial_expansion(self):
        semiring = PolynomialSemiring()
        x, y = variable("x"), variable("y")
        x_plus_y = semiring.add(x, y)
        square = semiring.mul(x_plus_y, x_plus_y)
        coefficients = dict(square)
        assert coefficients[(("x", 2),)] == 1
        assert coefficients[(("y", 2),)] == 1
        assert coefficients[(("x", 1), ("y", 1))] == 2
