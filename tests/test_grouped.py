"""Tests for free-variable (grouped) evaluation — per-answer K-annotations."""

import random
from collections import Counter
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid
from repro.core.grouped import (
    compile_grouped_plan,
    evaluate_grouped,
)
from repro.db.database import Database
from repro.db.evaluation import satisfying_assignments
from repro.exceptions import NotHierarchicalError, QueryError
from repro.query.families import q_eq1, q_h, star_query
from repro.workloads.generators import (
    random_database,
    random_probabilistic_database,
)


class TestCompilation:
    def test_root_variable_is_free(self):
        plan = compile_grouped_plan(q_eq1(), {"A"})
        assert plan.free_variables == {"A"}
        assert "A" not in {
            getattr(step, "variable", None) for step in plan.steps
        }

    def test_empty_free_set_matches_boolean_plan(self):
        plan = compile_grouped_plan(q_eq1(), set())
        from repro.core.plan import compile_plan

        boolean = compile_plan(q_eq1())
        assert len(plan.steps) == len(boolean.steps)

    def test_unknown_free_variable_rejected(self):
        with pytest.raises(QueryError):
            compile_grouped_plan(q_eq1(), {"Z"})

    def test_non_upward_closed_free_set_rejected(self):
        # C sits below A in the hierarchy; freeing C alone strands A.
        with pytest.raises(NotHierarchicalError):
            compile_grouped_plan(q_eq1(), {"C"})

    def test_upward_closed_pair_accepted(self):
        plan = compile_grouped_plan(q_eq1(), {"A", "C"})
        assert plan.free_variables == {"A", "C"}

    def test_rendering(self):
        plan = compile_grouped_plan(q_eq1(), {"A"})
        assert "free variables (A)" in str(plan)


class TestGroupedCounting:
    """Counting semiring → GROUP BY COUNT of satisfying assignments."""

    def _grouped_counts(self, query, free, database):
        result = evaluate_grouped(
            query, free, CountingSemiring(), database.facts(), lambda _f: 1
        )
        order = result.atom.variables
        return {values: count for values, count in result.items()}, order

    def test_fig1_grouped_by_a(self):
        database = Database.from_relations(
            {
                "R": [(1, 5), (2, 6)],
                "S": [(1, 1), (1, 2), (2, 3)],
                "T": [(1, 2, 4), (2, 3, 7), (2, 3, 8)],
            }
        )
        counts, order = self._grouped_counts(q_eq1(), {"A"}, database)
        assert order == ("A",)
        assert counts == {(1,): 1, (2,): 2}

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_assignment_grouping(self, seed):
        rng = random.Random(seed)
        query = star_query(rng.randint(1, 3))
        database = random_database(
            query, facts_per_relation=4, domain_size=3, seed=rng
        )
        counts, order = self._grouped_counts(query, {"X"}, database)
        expected = Counter(
            tuple(assignment[v] for v in order)
            for assignment in satisfying_assignments(query, database)
        )
        assert counts == dict(expected)

    def test_two_free_variables(self):
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4), (1, 2, 9)]}
        )
        counts, order = self._grouped_counts(q_eq1(), {"A", "C"}, database)
        expected = Counter(
            tuple(assignment[v] for v in order)
            for assignment in satisfying_assignments(q_eq1(), database)
        )
        assert counts == dict(expected)


class TestGroupedProbability:
    """Probability 2-monoid → per-answer marginal probability."""

    def test_against_possible_worlds(self):
        query = q_h()
        pdb = random_probabilistic_database(
            query, facts_per_relation=2, domain_size=2, seed=3, exact=True
        )
        result = evaluate_grouped(
            query, {"Y"}, ExactProbabilityMonoid(), pdb.facts(),
            lambda fact: pdb.probability(fact),
        )
        order = result.atom.variables
        # Reference: enumerate worlds, accumulate probability per Y-answer.
        from repro.problems.possible_worlds import ProbabilisticDatabase

        reference: dict[tuple, Fraction] = {}
        for world, probability in pdb.possible_worlds():
            answers = {
                tuple(assignment[v] for v in order)
                for assignment in satisfying_assignments(query, world)
            }
            for answer in answers:
                reference[answer] = reference.get(answer, Fraction(0)) + probability
        computed = {values: p for values, p in result.items()}
        assert computed == reference

    def test_probabilities_bounded(self):
        query = star_query(2)
        pdb = random_probabilistic_database(
            query, facts_per_relation=6, domain_size=3, seed=9
        )
        result = evaluate_grouped(
            query, {"X"}, ExactProbabilityMonoid().__class__(), pdb.facts(),
            lambda fact: Fraction(pdb.probability(fact)).limit_denominator(10**6),
        )
        for _values, probability in result.items():
            assert 0 <= probability <= 1
