"""Tests for the #Sat 2-monoid (Definition 5.14)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.laws import (
    check_two_monoid_laws,
    find_annihilation_violation,
    find_distributivity_violation,
)
from repro.algebra.shapley import SatVector, ShapleyMonoid
from repro.exceptions import AlgebraError


def sat_vectors(length: int, max_value: int = 4):
    counts = st.lists(
        st.integers(min_value=0, max_value=max_value),
        min_size=length, max_size=length,
    ).map(tuple)
    return st.builds(SatVector, false_counts=counts, true_counts=counts)


class TestDistinguishedElements:
    def test_zero(self):
        monoid = ShapleyMonoid(3)
        assert monoid.zero == SatVector((1, 0, 0), (0, 0, 0))

    def test_one(self):
        monoid = ShapleyMonoid(3)
        assert monoid.one == SatVector((0, 0, 0), (1, 0, 0))

    def test_star(self):
        """★: excluded (size 0) → false; included (size 1) → true."""
        monoid = ShapleyMonoid(3)
        assert monoid.star == SatVector((1, 0, 0), (0, 1, 0))

    def test_star_length_one(self):
        monoid = ShapleyMonoid(1)
        assert monoid.star == SatVector((1,), (0,))

    def test_invalid_length(self):
        with pytest.raises(AlgebraError):
            ShapleyMonoid(0)

    def test_mismatched_slices_rejected(self):
        with pytest.raises(AlgebraError):
            SatVector((1, 0), (0,))


class TestSemantics:
    """Hand-checkable subset counts for tiny formulas."""

    def test_disjunction_of_two_endogenous(self):
        """f1 ∨ f2, both endogenous: subsets of {f1, f2} by size and value."""
        monoid = ShapleyMonoid(3)
        result = monoid.add(monoid.star, monoid.star)
        # size 0: {} → false. size 1: {f1}, {f2} → both true.
        # size 2: {f1, f2} → true.
        assert result == SatVector((1, 0, 0), (0, 2, 1))

    def test_conjunction_of_two_endogenous(self):
        """f1 ∧ f2: only the full subset of size 2 is true."""
        monoid = ShapleyMonoid(3)
        result = monoid.mul(monoid.star, monoid.star)
        assert result == SatVector((1, 2, 0), (0, 0, 1))

    def test_conjunction_with_exogenous(self):
        """1 ⊗ ★ = ★: an always-true conjunct changes nothing."""
        monoid = ShapleyMonoid(3)
        assert monoid.mul(monoid.one, monoid.star) == monoid.star

    def test_disjunction_with_exogenous(self):
        """1 ⊕ ★: already true; the endogenous fact only shifts sizes."""
        monoid = ShapleyMonoid(3)
        result = monoid.add(monoid.one, monoid.star)
        # size 0: {} → true (exogenous side). size 1: {f} → true.
        assert result == SatVector((0, 0, 0), (1, 1, 0))

    def test_total_counts_are_binomial(self):
        """Summing true+false over a k-fact formula gives C(k, size)."""
        monoid = ShapleyMonoid(4)
        three = monoid.mul(monoid.star, monoid.mul(monoid.star, monoid.star))
        totals = [
            three.false_counts[i] + three.true_counts[i] for i in range(4)
        ]
        assert totals == [1, 3, 3, 1]

    def test_sat_count_accessor(self):
        monoid = ShapleyMonoid(3)
        v = monoid.add(monoid.star, monoid.star)
        assert v.sat_count(1) == 2


class TestNoAnnihilation:
    def test_mul_by_zero_is_not_zero(self):
        """The property the paper flags right after Definition 5.14."""
        monoid = ShapleyMonoid(3)
        product = monoid.mul(monoid.star, monoid.zero)
        assert product != monoid.zero
        # f ∧ false over endogenous {f}: false at size 0 and size 1.
        assert product == SatVector((1, 1, 0), (0, 0, 0))

    def test_census_finds_violation(self):
        monoid = ShapleyMonoid(3)
        samples = [monoid.zero, monoid.one, monoid.star]
        assert find_annihilation_violation(monoid, samples) is not None
        assert not monoid.annihilates

    def test_zero_times_zero_is_zero(self):
        """The weaker 2-monoid requirement 0 ⊗ 0 = 0 does hold."""
        monoid = ShapleyMonoid(3)
        assert monoid.mul(monoid.zero, monoid.zero) == monoid.zero


class TestLaws:
    @given(x=sat_vectors(3), y=sat_vectors(3), z=sat_vectors(3))
    @settings(max_examples=100, deadline=None)
    def test_axioms_hold(self, x, y, z):
        monoid = ShapleyMonoid(3)
        assert monoid.add(x, y) == monoid.add(y, x)
        assert monoid.mul(x, y) == monoid.mul(y, x)
        assert monoid.add(monoid.add(x, y), z) == monoid.add(x, monoid.add(y, z))
        assert monoid.mul(monoid.mul(x, y), z) == monoid.mul(x, monoid.mul(y, z))
        assert monoid.add(x, monoid.zero) == x
        assert monoid.mul(x, monoid.one) == x

    def test_law_census(self):
        monoid = ShapleyMonoid(3)
        samples = [
            monoid.zero, monoid.one, monoid.star,
            monoid.add(monoid.star, monoid.star),
        ]
        assert check_two_monoid_laws(monoid, samples) == []

    def test_not_distributive(self):
        monoid = ShapleyMonoid(3)
        samples = [monoid.zero, monoid.one, monoid.star]
        assert find_distributivity_violation(monoid, samples) is not None

    def test_length_mismatch_rejected(self):
        monoid = ShapleyMonoid(3)
        with pytest.raises(AlgebraError):
            monoid.add(ShapleyMonoid(2).star, monoid.star)

    def test_validate_rejects_negative(self):
        monoid = ShapleyMonoid(2)
        with pytest.raises(AlgebraError):
            monoid.validate(SatVector((1, -1), (0, 0)))
