"""Tests for Bag-Set Maximization (Definition 4.1, Theorem 5.11)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bagset import is_monotone
from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import NotHierarchicalError, ReproError
from repro.problems.bagset_max import (
    BagSetInstance,
    decide,
    maximize,
    maximize_brute_force,
    maximize_greedy,
    maximize_profile,
    maximize_via_lineage,
)
from repro.query.families import q_eq1, q_h, q_nh, random_hierarchical_query
from repro.workloads.generators import random_bagset_instance


class TestFigure1:
    """The paper's worked example, end to end."""

    def test_optimum_is_four(self, fig1_query, fig1_instance):
        assert maximize(fig1_query, fig1_instance) == 4

    def test_brute_force_agrees(self, fig1_query, fig1_instance):
        assert maximize_brute_force(fig1_query, fig1_instance) == 4

    def test_profile(self, fig1_query, fig1_instance):
        """Budget 0 → 1 (no repair), budget 1 → 2, budget 2 → 4."""
        assert maximize_profile(fig1_query, fig1_instance) == (1, 2, 4)

    def test_lineage_route_agrees(self, fig1_query, fig1_instance):
        assert maximize_via_lineage(fig1_query, fig1_instance) == 4

    def test_decision_version(self, fig1_query, fig1_instance):
        assert decide(fig1_query, fig1_instance, 4)
        assert not decide(fig1_query, fig1_instance, 5)

    def test_naive_r_only_repair_is_suboptimal(self, fig1_query, fig1_instance):
        """The paper's discussion: adding R(1,6), R(1,7) only reaches 3."""
        from repro.db.evaluation import count_satisfying_assignments

        naive = fig1_instance.database.with_facts(
            [Fact("R", (1, 6)), Fact("R", (1, 7))]
        )
        assert count_satisfying_assignments(fig1_query, naive) == 3


class TestInstanceModel:
    def test_negative_budget_rejected(self):
        with pytest.raises(ReproError):
            BagSetInstance(Database(), Database(), budget=-1)

    def test_addable_facts_excludes_present(self):
        base = Database.from_relations({"E": [(1, 2)]})
        repair = Database.from_relations({"E": [(1, 2), (1, 3)]})
        instance = BagSetInstance(base, repair, budget=1)
        assert instance.addable_facts() == (Fact("E", (1, 3)),)

    def test_budget_zero_means_no_repair(self, fig1_query, fig1_instance):
        instance = BagSetInstance(
            fig1_instance.database, fig1_instance.repair_database, budget=0
        )
        assert maximize(fig1_query, instance) == 1
        assert maximize_brute_force(fig1_query, instance) == 1

    def test_budget_beyond_repair_size_saturates(self, fig1_query, fig1_instance):
        huge = BagSetInstance(
            fig1_instance.database, fig1_instance.repair_database, budget=100
        )
        all_in = BagSetInstance(
            fig1_instance.database,
            fig1_instance.repair_database,
            budget=len(fig1_instance.repair_database),
        )
        assert maximize(fig1_query, huge) == maximize(fig1_query, all_in)

    def test_empty_repair_database(self, fig1_query, fig1_instance):
        instance = BagSetInstance(fig1_instance.database, Database(), budget=3)
        assert maximize(fig1_query, instance) == 1

    def test_non_hierarchical_rejected(self):
        instance = BagSetInstance(Database(), Database(), budget=1)
        with pytest.raises(NotHierarchicalError):
            maximize(q_nh(), instance)


class TestProfileProperties:
    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_profile_is_monotone(self, seed):
        instance = random_bagset_instance(
            q_eq1(), base_facts_per_relation=3, repair_facts_per_relation=3,
            budget=4, domain_size=3, seed=seed,
        )
        profile = maximize_profile(q_eq1(), instance)
        assert is_monotone(profile)

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_profile_entries_match_smaller_budgets(self, seed):
        """q(i) of the θ-profile equals the optimum of the budget-i instance."""
        instance = random_bagset_instance(
            q_h(), base_facts_per_relation=2, repair_facts_per_relation=3,
            budget=3, domain_size=3, seed=seed,
        )
        profile = maximize_profile(q_h(), instance)
        for budget in range(instance.budget + 1):
            smaller = BagSetInstance(
                instance.database, instance.repair_database, budget
            )
            assert profile[budget] == maximize_brute_force(q_h(), smaller)


class TestAgainstBruteForce:
    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_exact_agreement_on_eq1(self, seed):
        instance = random_bagset_instance(
            q_eq1(), base_facts_per_relation=3, repair_facts_per_relation=4,
            budget=3, domain_size=3, seed=seed,
        )
        assert maximize(q_eq1(), instance) == maximize_brute_force(q_eq1(), instance)

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=30, deadline=None)
    def test_exact_agreement_on_random_hierarchical_queries(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_bagset_instance(
            query, base_facts_per_relation=2, repair_facts_per_relation=3,
            budget=2, domain_size=2, seed=rng,
        )
        if len(instance.addable_facts()) > 10:
            return
        assert maximize(query, instance) == maximize_brute_force(query, instance)

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=30, deadline=None)
    def test_greedy_is_a_lower_bound(self, seed):
        instance = random_bagset_instance(
            q_eq1(), base_facts_per_relation=3, repair_facts_per_relation=4,
            budget=3, domain_size=3, seed=seed,
        )
        assert maximize_greedy(q_eq1(), instance) <= maximize(q_eq1(), instance)

    def test_greedy_strictly_suboptimal_example(self):
        """A conjunctive trap: greedy spends budget on the branch with
        immediate gain and misses the paired S+T repair."""
        query = q_h()  # E(X,Y) ∧ F(Y,Z)
        base = Database.from_relations({"E": [(0, 1)], "F": [(1, 10)]})
        repair = Database.from_relations(
            {"E": [(0, 2), (9, 1)], "F": [(2, 20), (2, 21), (2, 22)]}
        )
        instance = BagSetInstance(base, repair, budget=4)
        optimum = maximize(query, instance)
        brute = maximize_brute_force(query, instance)
        assert optimum == brute
        assert maximize_greedy(query, instance) <= optimum
