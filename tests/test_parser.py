"""Unit tests for the query parser."""

import pytest

from repro.exceptions import ParseError
from repro.query.atoms import Atom
from repro.query.parser import parse_query


class TestBasicParsing:
    def test_full_form(self):
        q = parse_query("Q() :- R(A, B), S(A, C), T(A, C, D)")
        assert q.relation_symbols == ("R", "S", "T")
        assert q.atom_for("T") == Atom("T", ("A", "C", "D"))

    def test_head_without_parens(self):
        q = parse_query("Q :- R(A)")
        assert q.name == "Q"

    def test_headless_form(self):
        q = parse_query("R(A,B), S(A,C)")
        assert q.name == "Q"
        assert len(q) == 2

    def test_custom_head_name(self):
        q = parse_query("MyQuery() :- R(A)")
        assert q.name == "MyQuery"

    def test_name_override(self):
        q = parse_query("Q() :- R(A)", name="Override")
        assert q.name == "Override"

    def test_nullary_atom(self):
        q = parse_query("Q() :- R(), S(A)")
        assert q.atom_for("R").is_nullary


class TestSeparators:
    @pytest.mark.parametrize(
        "text",
        [
            "R(A,B), S(B,C)",
            "R(A,B) & S(B,C)",
            "R(A,B) && S(B,C)",
            "R(A,B) ∧ S(B,C)",
            "R(A,B) and S(B,C)",
        ],
    )
    def test_all_separators(self, text):
        q = parse_query(text)
        assert q.relation_symbols == ("R", "S")


class TestWhitespace:
    def test_whitespace_insensitive(self):
        a = parse_query("Q() :- R(A,B),S(A,C)")
        b = parse_query("  Q()   :-   R( A , B ) ,  S( A , C )  ")
        assert a.atoms == b.atoms

    def test_primed_names(self):
        q = parse_query("Q() :- R'(A), S''(B)")
        assert q.relation_symbols == ("R'", "S''")


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "Q() :-",
            "Q() :- R(A,,B)",
            "Q() :- R(A) S(B)",
            "Q() :- R(A),",
            "() :- R(A)",
            "R(A,B) extra",
            "Q() :- R(A B)",
        ],
    )
    def test_malformed_inputs(self, text):
        with pytest.raises(ParseError):
            parse_query(text)

    def test_roundtrip_through_str(self):
        q = parse_query("Q() :- R(A, B), S(A, C)")
        assert parse_query(str(q)).atoms == q.atoms
