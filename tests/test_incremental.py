"""Tests for incremental maintenance under updates (core.incremental).

Strategy: apply random sequences of annotation updates (inserts, changes,
deletes) and after every step compare the maintained result with a fresh
Algorithm 1 run over the current annotations — for all four problem
2-monoids.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.core.algorithm import run_algorithm
from repro.core.incremental import IncrementalEvaluator, incremental_evaluator
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import SchemaError
from repro.query.families import q_eq1, q_h, random_hierarchical_query
from repro.workloads.generators import random_database


def _random_fact(query, rng, domain_size=2):
    atom = rng.choice(query.atoms)
    values = tuple(rng.randrange(domain_size) for _ in range(atom.arity))
    return Fact(atom.relation, values)


def _fresh_result(query, monoid, annotations):
    annotated = KDatabase(query, monoid)
    for fact, annotation in annotations.items():
        annotated.set(fact, annotation)
    return run_algorithm(query, annotated)


class TestBasics:
    def test_empty_start_matches_fresh(self):
        evaluator = incremental_evaluator(q_h(), CountingSemiring())
        assert evaluator.result == 0

    def test_insert_then_delete_roundtrip(self):
        evaluator = incremental_evaluator(q_h(), CountingSemiring())
        e_fact, f_fact = Fact("E", (1, 2)), Fact("F", (2, 3))
        assert evaluator.update(e_fact, 1) == 0
        assert evaluator.update(f_fact, 1) == 1
        assert evaluator.delete(e_fact) == 0
        assert evaluator.update(e_fact, 1) == 1

    def test_annotation_read_back(self):
        evaluator = incremental_evaluator(q_h(), CountingSemiring())
        fact = Fact("E", (1, 2))
        evaluator.update(fact, 7)
        assert evaluator.annotation(fact) == 7
        assert evaluator.annotation(Fact("E", (9, 9))) == 0

    def test_unknown_relation_rejected(self):
        evaluator = incremental_evaluator(q_h(), CountingSemiring())
        with pytest.raises(SchemaError):
            evaluator.update(Fact("Nope", (1,)), 1)

    def test_arity_mismatch_rejected(self):
        evaluator = incremental_evaluator(q_h(), CountingSemiring())
        with pytest.raises(SchemaError):
            evaluator.update(Fact("E", (1,)), 1)

    def test_initial_database_respected(self):
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        annotated = KDatabase.from_database(q_eq1(), CountingSemiring(), database)
        evaluator = IncrementalEvaluator(q_eq1(), annotated)
        assert evaluator.result == 1
        # The input KDatabase must not be mutated by later updates.
        evaluator.update(Fact("T", (1, 2, 9)), 1)
        assert annotated.annotation(Fact("T", (1, 2, 9))) == 0

    def test_fig1_repair_sequence(self):
        """Replaying the Figure 1 repairs as updates."""
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        annotated = KDatabase.from_database(q_eq1(), CountingSemiring(), database)
        evaluator = IncrementalEvaluator(q_eq1(), annotated)
        assert evaluator.result == 1
        assert evaluator.update(Fact("R", (1, 6)), 1) == 2
        assert evaluator.update(Fact("R", (1, 7)), 1) == 3
        assert evaluator.delete(Fact("R", (1, 7))) == 2
        assert evaluator.update(Fact("T", (1, 2, 9)), 1) == 4


class _MonoidCase:
    """One 2-monoid plus a random-annotation sampler for the update tests."""

    def __init__(self, name, monoid, sampler, eq):
        self.name = name
        self.monoid = monoid
        self.sampler = sampler
        self.eq = eq


def _cases():
    counting = CountingSemiring()
    probability = ExactProbabilityMonoid()
    bagset = BagSetMonoid(3)
    shapley = ShapleyMonoid(3)
    resilience = ResilienceMonoid()
    return [
        _MonoidCase(
            "counting", counting,
            lambda rng: rng.randrange(0, 3),
            lambda a, b: a == b,
        ),
        _MonoidCase(
            "probability", probability,
            lambda rng: Fraction(rng.randrange(0, 4), 4),
            lambda a, b: a == b,
        ),
        _MonoidCase(
            "bagset", bagset,
            lambda rng: rng.choice(
                [bagset.zero, bagset.one, bagset.star, (0, 1, 2)]
            ),
            lambda a, b: a == b,
        ),
        _MonoidCase(
            "shapley", shapley,
            lambda rng: rng.choice([shapley.zero, shapley.one, shapley.star]),
            lambda a, b: a == b,
        ),
        _MonoidCase(
            "resilience", resilience,
            lambda rng: rng.choice([0, 1, 2, resilience.one]),
            lambda a, b: a == b,
        ),
    ]


class TestAgainstFreshRuns:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_update_sequences_match_recomputation(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        for case in _cases():
            evaluator = incremental_evaluator(query, case.monoid)
            annotations: dict[Fact, object] = {}
            for _step in range(12):
                fact = _random_fact(query, rng)
                annotation = case.sampler(rng)
                annotations[fact] = annotation
                maintained = evaluator.update(fact, annotation)
                fresh = _fresh_result(query, case.monoid, annotations)
                assert case.eq(maintained, fresh), (
                    f"{case.name} diverged at seed {seed}: "
                    f"{maintained} != {fresh}"
                )

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=15, deadline=None)
    def test_delete_everything_returns_to_zero(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        monoid = CountingSemiring()
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        annotated = KDatabase.from_database(query, monoid, database)
        evaluator = IncrementalEvaluator(query, annotated)
        for fact in database.facts():
            evaluator.delete(fact)
        assert evaluator.result == 0


class TestUpdateCost:
    def test_updates_touch_few_operations(self):
        """An update refolds one group per Rule 1 stage — far less than |D|."""
        from repro.core.instrument import CountingMonoid

        query = q_eq1()
        database = random_database(
            query, facts_per_relation=500, domain_size=400, seed=3
        )
        counting = CountingMonoid(CountingSemiring())
        annotated = KDatabase.from_database(query, counting, database)
        evaluator = IncrementalEvaluator(query, annotated)
        counting.reset()
        evaluator.update(Fact("R", (9_999, 1)), 1)
        # Full re-evaluation costs Θ(|D|) ≈ 1000+ operations; the incremental
        # chain should touch orders of magnitude fewer on sparse groups.
        assert counting.operation_count < 100
