"""Tests for the command-line interface."""

import json
from fractions import Fraction

import pytest

from repro.cli import main
from repro.db.io import (
    load_probabilistic,
    probabilistic_from_dict,
    probabilistic_to_dict,
    save_probabilistic,
)
from repro.db.fact import Fact
from repro.exceptions import SchemaError
from repro.problems.possible_worlds import ProbabilisticDatabase

FIG1_QUERY = "Q() :- R(A,B), S(A,C), T(A,C,D)"


@pytest.fixture
def fig1_files(tmp_path):
    db = tmp_path / "d.json"
    dr = tmp_path / "dr.json"
    pdb = tmp_path / "pdb.json"
    exo = tmp_path / "exo.json"
    endo = tmp_path / "endo.json"
    db.write_text(json.dumps(
        {"relations": {"R": [[1, 5]], "S": [[1, 1], [1, 2]], "T": [[1, 2, 4]]}}
    ))
    dr.write_text(json.dumps(
        {"relations": {"R": [[1, 6], [1, 7]], "T": [[1, 1, 4], [1, 2, 9]]}}
    ))
    pdb.write_text(json.dumps({"facts": [
        {"relation": "R", "values": [1, 5], "probability": "1/2"},
        {"relation": "S", "values": [1, 1], "probability": "1/2"},
        {"relation": "S", "values": [1, 2], "probability": "1/2"},
        {"relation": "T", "values": [1, 2, 4], "probability": "1/2"},
    ]}))
    exo.write_text(json.dumps({"relations": {"S": [[1, 1], [1, 2]]}}))
    endo.write_text(json.dumps({"relations": {"R": [[1, 5]], "T": [[1, 2, 4]]}}))
    return {"db": db, "dr": dr, "pdb": pdb, "exo": exo, "endo": endo}


class TestCheckCommand:
    def test_hierarchical_query(self, capsys):
        assert main(["check", FIG1_QUERY]) == 0
        out = capsys.readouterr().out
        assert "hierarchical: True" in out
        assert "(Done!)" in out
        assert "plan for" in out

    def test_non_hierarchical_query(self, capsys):
        assert main(["check", "Q() :- R(X), S(X,Y), T(Y)"]) == 0
        out = capsys.readouterr().out
        assert "hierarchical: False" in out
        assert "(Stuck!)" in out
        assert "plan for" not in out


class TestEvaluationCommands:
    def test_count(self, capsys, fig1_files):
        assert main(["count", FIG1_QUERY, "--db", str(fig1_files["db"])]) == 0
        assert capsys.readouterr().out.strip() == "1"

    def test_pqe_exact(self, capsys, fig1_files):
        assert main(
            ["pqe", FIG1_QUERY, "--db", str(fig1_files["pdb"]), "--exact"]
        ) == 0
        assert "1/8" in capsys.readouterr().out

    def test_pqe_float(self, capsys, fig1_files):
        assert main(["pqe", FIG1_QUERY, "--db", str(fig1_files["pdb"])]) == 0
        assert "0.125" in capsys.readouterr().out

    def test_bsm_with_witness(self, capsys, fig1_files):
        assert main([
            "bsm", FIG1_QUERY, "--db", str(fig1_files["db"]),
            "--repair", str(fig1_files["dr"]), "--budget", "2", "--witness",
        ]) == 0
        out = capsys.readouterr().out
        assert "optimal Q(D') at budget θ=2: 4" in out
        assert "(1, 2, 4)" in out
        assert "+ T(1, 2, 9)" in out

    def test_shapley_with_banzhaf(self, capsys, fig1_files):
        assert main([
            "shapley", FIG1_QUERY, "--exogenous", str(fig1_files["exo"]),
            "--endogenous", str(fig1_files["endo"]), "--banzhaf",
        ]) == 0
        out = capsys.readouterr().out
        assert "shapley=1/2" in out
        assert "banzhaf=1/2" in out

    def test_resilience_with_witness(self, capsys, fig1_files):
        assert main([
            "resilience", FIG1_QUERY, "--db", str(fig1_files["db"]),
            "--witness",
        ]) == 0
        out = capsys.readouterr().out
        assert "resilience: 1" in out
        assert "contingency set" in out

    def test_resilience_infinite(self, capsys, fig1_files, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"relations": {}}))
        assert main([
            "resilience", FIG1_QUERY, "--db", str(empty),
            "--exogenous", str(fig1_files["db"]),
        ]) == 0
        assert "∞" in capsys.readouterr().out


class TestExperimentsCommand:
    def test_runs_selected(self, capsys):
        assert main(["experiments", "E0"]) == 0
        assert "Figure 1 worked example" in capsys.readouterr().out

    def test_unknown_id(self, capsys):
        assert main(["experiments", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestErrorHandling:
    def test_repro_errors_become_exit_code_one(self, capsys, fig1_files):
        # Overlapping exogenous/endogenous parts raise a ReproError.
        assert main([
            "shapley", FIG1_QUERY, "--exogenous", str(fig1_files["db"]),
            "--endogenous", str(fig1_files["db"]),
        ]) == 1
        assert "error:" in capsys.readouterr().err


class TestProbabilisticIO:
    def test_round_trip(self, tmp_path):
        pdb = ProbabilisticDatabase(
            {Fact("R", (1, 5)): Fraction(1, 3), Fact("S", ("x",)): 0.25}
        )
        path = tmp_path / "pdb.json"
        save_probabilistic(pdb, path)
        loaded = load_probabilistic(path)
        assert loaded.probability(Fact("R", (1, 5))) == Fraction(1, 3)
        assert loaded.probability(Fact("S", ("x",))) == 0.25

    def test_fractions_stay_exact_in_json(self):
        pdb = ProbabilisticDatabase({Fact("R", (1,)): Fraction(1, 3)})
        payload = probabilistic_to_dict(pdb)
        assert payload["facts"][0]["probability"] == "1/3"
        assert probabilistic_from_dict(payload).probability(
            Fact("R", (1,))
        ) == Fraction(1, 3)

    def test_malformed_payloads(self):
        with pytest.raises(SchemaError):
            probabilistic_from_dict({})
        with pytest.raises(SchemaError):
            probabilistic_from_dict({"facts": [{"relation": "R"}]})


class TestCacheCommand:
    def test_reports_plan_cache_counters(self, capsys):
        from repro.core.plan import clear_plan_cache, compile_plan
        from repro.query.parser import parse_query

        clear_plan_cache()
        query = parse_query("Q() :- R(X), S(X,Y)")
        compile_plan(query)
        compile_plan(query)
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "size: 1" in out
        assert "hits: 1" in out
        assert "misses: 1" in out
        assert "hit_rate: 50.0%" in out

    def test_clear_drops_memoized_plans(self, capsys):
        from repro.core.plan import compile_plan, plan_cache_info
        from repro.query.parser import parse_query

        compile_plan(parse_query("Q() :- R(X)"))
        assert plan_cache_info()["size"] >= 1
        assert main(["cache", "--clear"]) == 0
        out = capsys.readouterr().out
        assert "plan cache cleared" in out
        assert plan_cache_info() == {
            "hits": 0, "misses": 0, "size": 0, "max_size": 256,
        }
