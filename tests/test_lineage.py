"""Tests for lineage construction: Lemma 6.3 (decomposability) and the
logical equivalence of read-once vs naive DNF lineage (Theorem 6.4's engine).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lineage import (
    equivalent_boolean_functions,
    naive_lineage,
    powerset,
    read_once_lineage,
)
from repro.db.database import Database
from repro.query.families import (
    q_eq1,
    q_h,
    random_hierarchical_query,
)
from repro.workloads.generators import random_database


class TestNaiveLineage:
    def test_empty_database_is_false(self):
        assert naive_lineage(q_h(), Database()).is_false

    def test_single_assignment(self):
        database = Database.from_relations({"E": [(1, 2)], "F": [(2, 3)]})
        lineage = naive_lineage(q_h(), database)
        assert len(lineage.support) == 2

    def test_shared_fact_breaks_decomposability(self):
        # E(1,2) joins with two F facts: the DNF repeats the E fact.
        database = Database.from_relations({"E": [(1, 2)], "F": [(2, 3), (2, 4)]})
        lineage = naive_lineage(q_h(), database)
        assert not lineage.is_decomposable


class TestReadOnceLineage:
    def test_fig1_lineage_is_decomposable(self):
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        lineage = read_once_lineage(q_eq1(), database)
        assert lineage.is_decomposable
        assert len(lineage.support) == len(database) - 1  # S(1,1) is dangling

    def test_empty_database_is_false(self):
        assert read_once_lineage(q_h(), Database()).is_false

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=50, deadline=None)
    def test_lemma_6_3_decomposability(self, seed):
        """Lemma 6.3: Algorithm 1 over the provenance 2-monoid always
        produces decomposable trees on hierarchical queries."""
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=3, domain_size=3, seed=rng
        )
        lineage = read_once_lineage(query, database)
        assert lineage.is_decomposable

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=30, deadline=None)
    def test_read_once_equivalent_to_naive(self, seed):
        """The two lineage constructions define the same Boolean function."""
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        database = random_database(
            query, facts_per_relation=2, domain_size=2, seed=rng
        )
        read_once = read_once_lineage(query, database)
        naive = naive_lineage(query, database)
        symbols = read_once.support | naive.support
        if len(symbols) <= 10:
            assert equivalent_boolean_functions(read_once, naive, symbols)


class TestHelpers:
    def test_equivalent_boolean_functions_detects_difference(self):
        from repro.algebra.provenance import conjoin, disjoin, leaf

        left = conjoin(leaf("a"), leaf("b"))
        right = disjoin(leaf("a"), leaf("b"))
        assert not equivalent_boolean_functions(left, right)
        assert equivalent_boolean_functions(left, left)

    def test_powerset(self):
        subsets = list(powerset([1, 2]))
        assert len(subsets) == 4
        assert () in subsets and (1, 2) in subsets
