"""Tests for Probabilistic Query Evaluation (Theorem 5.8).

The unified algorithm must agree exactly (over rationals) with possible-world
enumeration, and with the φ-evaluation of the read-once lineage — three
independent code paths for the same quantity.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.fact import Fact
from repro.exceptions import NotHierarchicalError
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.pqe import (
    marginal_probability,
    marginal_probability_brute_force,
    marginal_probability_via_lineage,
)
from repro.query.families import q_eq1, q_h, q_nh, random_hierarchical_query
from repro.workloads.generators import random_probabilistic_database


class TestClosedForms:
    def test_single_fact_query(self):
        from repro.query.bcq import make_query

        query = make_query([("R", "A")])
        pdb = ProbabilisticDatabase({Fact("R", (1,)): Fraction(1, 3)})
        assert marginal_probability(query, pdb, exact=True) == Fraction(1, 3)

    def test_two_independent_facts_disjunction(self):
        from repro.query.bcq import make_query

        query = make_query([("R", "A")])
        pdb = ProbabilisticDatabase(
            {Fact("R", (1,)): Fraction(1, 2), Fact("R", (2,)): Fraction(1, 2)}
        )
        # P[∃A R(A)] = 1 - (1/2)² = 3/4.
        assert marginal_probability(query, pdb, exact=True) == Fraction(3, 4)

    def test_conjunction_of_independent_relations(self):
        from repro.query.bcq import make_query

        query = make_query([("R", "A"), ("S", "B")])
        pdb = ProbabilisticDatabase(
            {Fact("R", (1,)): Fraction(1, 2), Fact("S", (1,)): Fraction(1, 3)}
        )
        assert marginal_probability(query, pdb, exact=True) == Fraction(1, 6)

    def test_qh_hand_computed(self):
        """E(X,Y) ∧ F(Y,Z) with one E and two F facts on the same Y."""
        pdb = ProbabilisticDatabase(
            {
                Fact("E", (1, 2)): Fraction(1, 2),
                Fact("F", (2, 5)): Fraction(1, 2),
                Fact("F", (2, 6)): Fraction(1, 2),
            }
        )
        # P = P[E] · (1 - (1-1/2)²) = 1/2 · 3/4.
        assert marginal_probability(q_h(), pdb, exact=True) == Fraction(3, 8)

    def test_empty_database_probability_zero(self):
        assert marginal_probability(q_h(), ProbabilisticDatabase({})) == 0.0

    def test_certain_facts_probability_one(self):
        pdb = ProbabilisticDatabase(
            {Fact("E", (1, 2)): Fraction(1), Fact("F", (2, 3)): Fraction(1)}
        )
        assert marginal_probability(q_h(), pdb, exact=True) == 1


class TestDichotomySide:
    def test_non_hierarchical_rejected(self):
        pdb = ProbabilisticDatabase({Fact("R", (1,)): 0.5})
        with pytest.raises(NotHierarchicalError):
            marginal_probability(q_nh(), pdb)


class TestAgainstBruteForce:
    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=40, deadline=None)
    def test_exact_agreement_on_eq1(self, seed):
        pdb = random_probabilistic_database(
            q_eq1(), facts_per_relation=2, domain_size=2, seed=seed, exact=True
        )
        unified = marginal_probability(q_eq1(), pdb, exact=True)
        brute = marginal_probability_brute_force(q_eq1(), pdb, exact=True)
        assert unified == brute

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=30, deadline=None)
    def test_exact_agreement_on_random_hierarchical_queries(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        pdb = random_probabilistic_database(
            query, facts_per_relation=2, domain_size=2, seed=rng, exact=True
        )
        if len(pdb) > 12:
            return
        unified = marginal_probability(query, pdb, exact=True)
        brute = marginal_probability_brute_force(query, pdb, exact=True)
        assert unified == brute

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_lineage_route_agrees(self, seed):
        """Theorem 6.4: φ(provenance tree) equals the direct instantiation."""
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        pdb = random_probabilistic_database(
            query, facts_per_relation=2, domain_size=2, seed=rng, exact=True
        )
        direct = marginal_probability(query, pdb, exact=True)
        via_lineage = marginal_probability_via_lineage(query, pdb, exact=True)
        assert direct == via_lineage

    def test_float_mode_close_to_exact(self):
        pdb = random_probabilistic_database(
            q_eq1(), facts_per_relation=3, domain_size=2, seed=5, exact=True
        )
        exact = marginal_probability(q_eq1(), pdb, exact=True)
        as_float = marginal_probability(
            q_eq1(),
            ProbabilisticDatabase(
                {f: float(pdb.probability(f)) for f in pdb.facts()}
            ),
        )
        assert as_float == pytest.approx(float(exact), abs=1e-9)


class TestMonotonicity:
    def test_probability_in_unit_interval(self):
        for seed in range(10):
            pdb = random_probabilistic_database(
                q_eq1(), facts_per_relation=4, domain_size=3, seed=seed
            )
            p = marginal_probability(q_eq1(), pdb)
            assert 0.0 <= p <= 1.0

    def test_raising_a_probability_cannot_lower_the_answer(self):
        pdb = random_probabilistic_database(
            q_eq1(), facts_per_relation=3, domain_size=2, seed=11
        )
        base = marginal_probability(q_eq1(), pdb)
        target = pdb.facts()[0]
        raised = ProbabilisticDatabase(
            {
                fact: (1.0 if fact == target else pdb.probability(fact))
                for fact in pdb.facts()
            }
        )
        assert marginal_probability(q_eq1(), raised) >= base - 1e-12
