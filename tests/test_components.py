"""Tests for connected components of queries."""

from repro.query.bcq import make_query
from repro.query.components import connected_components, is_connected
from repro.query.families import forest_query, q_disconnected, q_eq1, q_h


class TestConnectivity:
    def test_eq1_is_connected(self):
        assert is_connected(q_eq1())
        assert len(connected_components(q_eq1())) == 1

    def test_qh_is_connected(self):
        assert is_connected(q_h())

    def test_disconnected_example(self):
        components = connected_components(q_disconnected())
        assert len(components) == 2
        assert not is_connected(q_disconnected())

    def test_components_partition_atoms(self):
        q = forest_query(3, 2)
        components = connected_components(q)
        assert len(components) == 3
        all_atoms = [atom for c in components for atom in c.atoms]
        assert sorted(all_atoms) == sorted(q.atoms)

    def test_components_have_disjoint_variables(self):
        components = connected_components(forest_query(3, 2))
        seen = set()
        for component in components:
            assert not (component.variables & seen)
            seen |= component.variables

    def test_nullary_atoms_are_singletons(self):
        q = make_query([("R", "A"), ("N1", ""), ("N2", "")])
        components = connected_components(q)
        assert len(components) == 3

    def test_transitive_connection(self):
        # R-S share A, S-T share B: all one component though R,T share nothing.
        q = make_query([("R", "A"), ("S", "AB"), ("T", "B")])
        assert is_connected(q)

    def test_component_order_is_stable(self):
        q = make_query([("R", "A"), ("S", "B"), ("T", "A")])
        components = connected_components(q)
        assert [c.atoms[0].relation for c in components] == ["R", "S"]
        assert {a.relation for a in components[0].atoms} == {"R", "T"}
