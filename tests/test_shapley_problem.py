"""Tests for Shapley value computation (Theorem 5.16)."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import NotHierarchicalError, ReproError
from repro.problems.shapley import (
    ShapleyInstance,
    efficiency_gap,
    sat_counts,
    sat_counts_brute_force,
    sat_counts_via_lineage,
    shapley_value,
    shapley_value_by_permutations,
    shapley_value_monte_carlo,
    shapley_values,
)
from repro.query.families import q_eq1, q_h, q_nh, random_hierarchical_query
from repro.workloads.generators import random_shapley_instance


class TestInstanceModel:
    def test_overlap_rejected(self):
        fact = Fact("E", (1, 2))
        with pytest.raises(ReproError):
            ShapleyInstance(Database([fact]), Database([fact]))

    def test_non_hierarchical_rejected(self):
        instance = ShapleyInstance(
            Database(),
            Database.from_relations({"R": [(1,)], "S": [(1, 2)], "T": [(2,)]}),
        )
        with pytest.raises(NotHierarchicalError):
            sat_counts(q_nh(), instance)

    def test_value_of_non_endogenous_fact_rejected(self, fig1_query):
        instance = ShapleyInstance(
            Database.from_relations({"R": [(1, 5)]}),
            Database.from_relations({"S": [(1, 1)]}),
        )
        with pytest.raises(ReproError):
            shapley_value(fig1_query, instance, Fact("R", (1, 5)))


class TestSatCounts:
    def test_fig1_counts(self, fig1_query, small_shapley_instance):
        """Dx = S facts, Dn = {R(1,5), T(1,2,4)}: Q needs both → only the
        full size-2 subset satisfies."""
        assert sat_counts(fig1_query, small_shapley_instance) == (0, 0, 1)

    def test_all_exogenous_true(self):
        instance = ShapleyInstance(
            Database.from_relations({"E": [(1, 2)], "F": [(2, 3)]}),
            Database.from_relations({"E": [(9, 9)]}),
        )
        counts = sat_counts(q_h(), instance)
        # Already true with the empty endogenous subset; true for all sizes.
        assert counts == (1, 1)

    def test_never_true(self):
        instance = ShapleyInstance(
            Database(),
            Database.from_relations({"E": [(1, 2)]}),
        )
        assert sat_counts(q_h(), instance) == (0, 0)

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=30, deadline=None)
    def test_agreement_with_brute_force(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng,
        )
        if instance.endogenous_count > 10:
            return
        assert sat_counts(query, instance) == (
            sat_counts_brute_force(query, instance)
        )

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=20, deadline=None)
    def test_lineage_route_agrees(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng,
        )
        assert sat_counts(query, instance) == (
            sat_counts_via_lineage(query, instance)
        )

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=25, deadline=None)
    def test_total_counts_are_binomials(self, seed):
        """true + false counts at size k must equal C(|Dn|, k)."""
        import math

        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng,
        )
        from repro.problems.shapley import sat_vector

        vector = sat_vector(query, instance)
        n = instance.endogenous_count
        for k in range(n + 1):
            total = vector.false_counts[k] + vector.true_counts[k]
            assert total == math.comb(n, k)


class TestShapleyValues:
    def test_fig1_values(self, fig1_query, small_shapley_instance):
        """Two symmetric endogenous facts, both needed: each gets 1/2."""
        values = shapley_values(fig1_query, small_shapley_instance)
        assert set(values.values()) == {Fraction(1, 2)}

    def test_symmetry_axiom(self):
        """Interchangeable facts receive equal Shapley values."""
        instance = ShapleyInstance(
            Database.from_relations({"F": [(2, 3)]}),
            Database.from_relations({"E": [(1, 2), (5, 2)]}),
        )
        values = shapley_values(q_h(), instance)
        assert len(set(values.values())) == 1

    def test_null_player_axiom(self):
        """A fact that never helps (dangling E) has Shapley value 0."""
        instance = ShapleyInstance(
            Database.from_relations({"E": [(1, 2)], "F": [(2, 3)]}),
            Database.from_relations({"E": [(9, 99)]}),  # F(99, ·) never exists
        )
        value = shapley_value(q_h(), instance, Fact("E", (9, 99)))
        assert value == 0

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=20, deadline=None)
    def test_efficiency_axiom(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng,
        )
        if instance.endogenous_count > 8:
            return
        assert efficiency_gap(query, instance) == 0

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=12, deadline=None)
    def test_agreement_with_permutation_definition(self, seed):
        """The #Sat reduction equals Definition 5.12 verbatim."""
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng,
        )
        if instance.endogenous_count > 5:
            return
        for fact in instance.endogenous.facts():
            exact = shapley_value(query, instance, fact)
            by_permutations = shapley_value_by_permutations(query, instance, fact)
            assert exact == by_permutations

    def test_values_in_unit_interval(self, fig1_query):
        instance = random_shapley_instance(
            fig1_query, facts_per_relation=3, domain_size=2, seed=3,
        )
        for value in shapley_values(fig1_query, instance).values():
            assert 0 <= value <= 1


class TestMonteCarlo:
    def test_converges_to_exact(self, fig1_query, small_shapley_instance):
        fact = Fact("R", (1, 5))
        exact = float(shapley_value(fig1_query, small_shapley_instance, fact))
        estimate = shapley_value_monte_carlo(
            fig1_query, small_shapley_instance, fact, samples=4000, seed=2
        )
        assert estimate == pytest.approx(exact, abs=0.05)

    def test_requires_positive_samples(self, fig1_query, small_shapley_instance):
        with pytest.raises(ReproError):
            shapley_value_monte_carlo(
                fig1_query, small_shapley_instance, Fact("R", (1, 5)), samples=0
            )

    def test_requires_endogenous_fact(self, fig1_query, small_shapley_instance):
        with pytest.raises(ReproError):
            shapley_value_monte_carlo(
                fig1_query, small_shapley_instance, Fact("S", (1, 1)), samples=10
            )
