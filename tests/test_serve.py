"""Tests for the concurrent serving subsystem (`repro.serve`).

Covers the serving stack bottom-up — request canonicalization and stream
io, session-level result memoization with version-keyed invalidation, the
SessionPool's shared state and eviction hooks, the Scheduler's
single-flight/batching guarantees — plus the headline concurrency property:
N worker threads × mixed families produce **bit-identical** answers to
serial one-shot evaluation under every kernel tier (including the
numpy-blocked leg), and the shared caches (plan cache, columnar views)
survive concurrent hammering with the locks added alongside this
subsystem.
"""

from __future__ import annotations

import json
import random
import sys
import threading

import pytest

import repro.core.kernels as kernels_module
from repro.algebra.probability import ProbabilityMonoid
from repro.core.kernels import array_kernel_for, numpy_or_none
from repro.core.plan import (
    clear_plan_cache,
    compile_plan,
    plan_cache_info,
    set_plan_cache_size,
)
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.db.fact import Fact
from repro.engine import Engine
from repro.engine.session import REQUEST_FAMILIES, register_request_family
from repro.exceptions import ReproError, SchemaError
from repro.query.families import star_query
from repro.query.parser import parse_query
from repro.serve import (
    Request,
    Scheduler,
    Server,
    SessionPool,
    load_request_stream,
    request_from_dict,
    serve_requests,
)
from repro.workloads.generators import random_probabilistic_database


# ----------------------------------------------------------------------
# Shared workload builders
# ----------------------------------------------------------------------
def _workload(size: int = 90, endo: int = 6, seed: int = 11):
    """One probabilistic database + endo/exo split over the 2-branch star."""
    query = star_query(2)
    database = random_probabilistic_database(
        query, facts_per_relation=size // 3,
        domain_size=max(4, size // 6), seed=seed,
    )
    facts = list(database.support_database().facts())
    random.Random(seed).shuffle(facts)
    endogenous = Database(facts[:endo])
    exogenous = Database(facts[endo:])
    data = {
        "probabilistic": database,
        "exogenous": exogenous,
        "endogenous": endogenous,
    }
    return query, data


def _mixed_stream(data, rounds: int = 4) -> list[Request]:
    endo_facts = list(data["endogenous"].facts())
    requests = []
    for index in range(rounds):
        requests.extend([
            Request.make("pqe"),
            Request.make("expected_count"),
            Request.make("sat_vector"),
            Request.make("resilience"),
            Request.make(
                "shapley_value", fact=endo_facts[index % len(endo_facts)]
            ),
            Request.make(
                "banzhaf_value",
                fact=endo_facts[(index + 1) % len(endo_facts)],
            ),
            Request.make("sat_counts"),
            Request.make("pqe", exact=True),
        ])
    return requests


def _serial_answers(query, data, requests, kernel_mode="auto"):
    """The one-shot baseline: a throwaway session per request."""
    answers = []
    for request in requests:
        session = Engine(kernel_mode=kernel_mode).open(query, **data)
        handler = REQUEST_FAMILIES[request.family]
        answers.append(handler(session, **request.kwargs))
    return answers


@pytest.fixture
def plan_cache_guard():
    """Restore the plan-cache size and contents after a test resizes it."""
    yield
    set_plan_cache_size(256)
    clear_plan_cache()


@pytest.fixture
def custom_family():
    """Register a throwaway request family; unregister on exit."""
    registered = []

    def register(name, handler):
        register_request_family(name, handler)
        registered.append(name)

    yield register
    for name in registered:
        REQUEST_FAMILIES.pop(name, None)


# ----------------------------------------------------------------------
# Request objects and stream io
# ----------------------------------------------------------------------
class TestRequest:
    def test_make_canonicalizes_parameter_order(self):
        left = Request.make("bagset_profile", budget=3, vector_length=5)
        right = Request.make("bagset_profile", vector_length=5, budget=3)
        assert left == right
        assert left.signature == right.signature
        assert left.kwargs == {"budget": 3, "vector_length": 5}

    def test_unknown_family_rejected_on_validate(self):
        with pytest.raises(ReproError, match="unknown request family"):
            Request.make("nonsense").validate()

    def test_str_shows_family_and_params(self):
        rendered = str(Request.make("pqe", exact=True))
        assert "pqe" in rendered and "exact=True" in rendered

    def test_requests_are_hashable_keys(self):
        assert len({Request.make("pqe"), Request.make("pqe")}) == 1

    def test_explicit_defaults_share_the_signature(self):
        """pqe(exact=False) must coalesce/memo-hit with the bare pqe()."""
        assert Request.make("pqe") == Request.make("pqe", exact=False)
        assert Request.make("pqe") != Request.make("pqe", exact=True)
        assert (
            Request.make("bagset_profile", budget=3)
            == Request.make("bagset_profile", budget=3, vector_length=None)
        )


class TestStreamIO:
    def _stream_payload(self):
        return {
            "query": "Q() :- R(X), S(X, Y)",
            "data": {
                "probabilistic": {"facts": [
                    {"relation": "R", "values": [1], "probability": 0.5},
                    {"relation": "S", "values": [1, 2], "probability": "1/2"},
                ]},
                "endogenous": {"relations": {"R": [[1]]}},
                "exogenous": {"relations": {"S": [[1, 2]]}},
            },
            "requests": [
                {"family": "pqe"},
                {"family": "pqe", "exact": True},
                {"family": "shapley_value",
                 "fact": {"relation": "R", "values": [1]}},
            ],
        }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(self._stream_payload()))
        query, data, requests = load_request_stream(path)
        assert str(query.atoms[0].relation) == "R"
        assert set(data) == {"probabilistic", "endogenous", "exogenous"}
        assert requests[1].kwargs == {"exact": True}
        assert requests[2].kwargs == {"fact": Fact("R", (1,))}

    def test_unknown_data_source_rejected(self, tmp_path):
        payload = self._stream_payload()
        payload["data"]["mystery"] = {"relations": {}}
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(SchemaError, match="unknown data source"):
            load_request_stream(path)

    def test_malformed_fact_rejected(self):
        with pytest.raises(SchemaError, match="'fact' parameter"):
            request_from_dict({"family": "shapley_value", "fact": [1, 2]})

    def test_missing_family_rejected(self):
        with pytest.raises(SchemaError, match="'family'"):
            request_from_dict({"fact": {"relation": "R", "values": [1]}})


# ----------------------------------------------------------------------
# Session-level result memoization
# ----------------------------------------------------------------------
class TestSessionMemo:
    def test_repeat_requests_hit_the_memo(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        first = session.request("pqe")
        evaluations = session.stats()["evaluations"]
        assert session.request("pqe") == first
        # An explicitly-spelled default is the same signature.
        assert session.request("pqe", exact=False) == first
        stats = session.stats()
        assert stats["evaluations"] == evaluations  # no extra run
        assert stats["memo"]["hits"] == 2
        assert stats["memo"]["misses"] == 1

    def test_sat_counts_derive_from_sat_vector(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        vector = session.request("sat_vector")
        evaluations = session.stats()["evaluations"]
        assert session.request("sat_counts") == vector.true_counts
        assert session.stats()["evaluations"] == evaluations

    def test_banzhaf_free_after_shapley(self):
        """Both attributions of one fact consume the same two #Sat runs."""
        query, data = _workload()
        session = Engine().open(query, **data)
        fact = next(iter(data["endogenous"].facts()))
        session.request("shapley_value", fact=fact)
        evaluations = session.stats()["evaluations"]
        session.request("banzhaf_value", fact=fact)
        assert session.stats()["evaluations"] == evaluations

    def test_per_fact_values_derive_from_memoized_sweep(self):
        query, data = _workload(endo=4)
        session = Engine().open(query, **data)
        sweep = session.request("shapley_values")
        evaluations = session.stats()["evaluations"]
        for fact in data["endogenous"].facts():
            assert session.request("shapley_value", fact=fact) == sweep[fact]
        assert session.stats()["evaluations"] == evaluations

    def test_explicit_invalidate_forces_recompute(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        session.request("pqe")
        session.request("pqe")
        session.invalidate("pqe")
        session.request("pqe")
        assert session.stats()["memo"]["misses"] == 2

    def test_version_change_evicts_automatically(self):
        query = parse_query("Q() :- R(X), S(X, Y)")
        monoid = ProbabilityMonoid()
        annotated = KDatabase.annotate(
            query, monoid,
            [Fact("R", (1,)), Fact("S", (1, 2))],
            lambda fact: 0.5,
        )
        session = Engine().open(query, annotated=annotated)
        assert session.request("run") == pytest.approx(0.25)
        annotated.set(Fact("R", (1,)), 1.0)
        assert session.request("run") == pytest.approx(0.5)
        assert session.stats()["memo"]["misses"] == 2

    def test_shapley_flips_do_not_poison_other_memo_entries(self):
        """The mutate-restore cycle restores the version fingerprint, so a
        memoized sat_vector stays valid across shapley_value calls."""
        query, data = _workload()
        session = Engine().open(query, **data)
        vector = session.request("sat_vector")
        fact = next(iter(data["endogenous"].facts()))
        session.request("shapley_value", fact=fact)
        evaluations = session.stats()["evaluations"]
        assert session.request("sat_vector") == vector
        assert session.stats()["evaluations"] == evaluations

    def test_mutation_during_execution_is_not_memoized_stale(
        self, custom_family
    ):
        """A mutation landing while a handler runs must not pin the stale
        answer under the post-mutation fingerprint."""
        query = parse_query("Q() :- R(X), S(X, Y)")
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(),
            [Fact("R", (1,)), Fact("S", (1, 2))],
            lambda fact: 0.5,
        )

        def racy(session):
            value = session.run()
            # Simulate a concurrent writer sneaking in mid-execution.
            annotated.set(Fact("R", (1,)), 1.0)
            return value

        custom_family("racy_run", racy)
        session = Engine().open(query, annotated=annotated)
        assert session.request("racy_run") == pytest.approx(0.25)
        # The stale 0.25 was not stored under the new fingerprint: the next
        # plain run sees the mutated database.
        assert session.request("run") == pytest.approx(0.5)
        assert session.stats()["memo"]["entries"] == 1  # only "run"

    def test_unknown_family_raises(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        with pytest.raises(ReproError, match="unknown request family"):
            session.request("nonsense")

    def test_custom_family_memoized(self, custom_family):
        calls = []

        def handler(session, tag="x"):
            calls.append(tag)
            return f"handled-{tag}"

        custom_family("custom", handler)
        query, data = _workload()
        session = Engine().open(query, **data)
        assert session.request("custom", tag="a") == "handled-a"
        assert session.request("custom", tag="a") == "handled-a"
        assert calls == ["a"]


# ----------------------------------------------------------------------
# SessionPool: shared state + invalidation hooks
# ----------------------------------------------------------------------
class TestSessionPool:
    def test_same_sources_share_annotated_state(self):
        query, data = _workload()
        pool = SessionPool()
        first = pool.session(query, **data)
        second = pool.session(query, **data)
        assert first is not second
        assert first._annotated is second._annotated
        first.pqe()
        # The sibling session serves from the shared annotation build.
        second.pqe()
        assert second.stats()["annotation_builds"] == 1
        assert second.stats()["evaluations"] == 2

    def test_different_source_objects_get_fresh_state(self):
        query, data = _workload()
        other = dict(data)
        other["probabilistic"] = random_probabilistic_database(
            query, facts_per_relation=20, domain_size=8, seed=99
        )
        pool = SessionPool()
        first = pool.session(query, probabilistic=data["probabilistic"])
        second = pool.session(query, probabilistic=other["probabilistic"])
        assert first._annotated is not second._annotated
        assert pool.stats()["entries"] == 2

    def test_mutation_hook_evicts_memoized_results(self):
        query = parse_query("Q() :- R(X), S(X, Y)")
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(),
            [Fact("R", (1,)), Fact("S", (1, 2))],
            lambda fact: 0.5,
        )
        pool = SessionPool()
        session = pool.session(query, annotated=annotated)
        session.request("run")
        assert session.stats()["memo"]["entries"] == 1
        annotated.set(Fact("S", (1, 2)), 0.75)
        # Eager eviction through the version-keyed invalidation hook.
        assert session.stats()["memo"]["entries"] == 0
        assert session.request("run") == pytest.approx(0.375)
        pool.close()

    def test_close_removes_hooks(self):
        query = parse_query("Q() :- R(X), S(X, Y)")
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(), [Fact("R", (1,))], lambda fact: 0.5
        )
        pool = SessionPool()
        pool.session(query, annotated=annotated)
        assert annotated._invalidation_hooks
        pool.close()
        assert not annotated._invalidation_hooks
        assert all(
            relation._on_mutate is None for relation in annotated.relations()
        )

    def test_pool_stats_shape(self):
        query, data = _workload()
        with SessionPool() as pool:
            pool.session(query, **data)
            stats = pool.stats()
            assert stats["entries"] == 1
            assert stats["sessions"] == 1
            assert stats["keys"][0]["sources"] == [
                "endogenous", "exogenous", "probabilistic"
            ]


# ----------------------------------------------------------------------
# Scheduler: single-flight and sweep batching
# ----------------------------------------------------------------------
class TestScheduler:
    def test_duplicate_in_flight_requests_execute_once(self, custom_family):
        """The single-flight guarantee: 8 concurrent identical requests,
        one execution, one shared answer."""
        calls = []
        started = threading.Event()
        release = threading.Event()

        def gated(session):
            calls.append(1)
            started.set()
            assert release.wait(10)
            return 42

        custom_family("gated", gated)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=2)
        try:
            futures = [
                scheduler.submit(session, Request.make("gated"))
                for _ in range(8)
            ]
            assert started.wait(10)
            release.set()
            assert [future.result(10) for future in futures] == [42] * 8
            assert len(calls) == 1
            stats = scheduler.stats()
            assert stats["coalesced"] == 7
            assert stats["executed"] == 1
        finally:
            release.set()
            scheduler.close()

    def test_pending_shapley_requests_batch_into_one_sweep(
        self, custom_family
    ):
        gate = threading.Event()
        custom_family("gate", lambda session: gate.wait(10))
        query, data = _workload(endo=4)
        facts = list(data["endogenous"].facts())
        serial = {
            fact: _serial_answers(
                query, data, [Request.make("shapley_value", fact=fact)]
            )[0]
            for fact in facts
        }
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=1)
        try:
            blocker = scheduler.submit(session, Request.make("gate"))
            futures = {
                fact: scheduler.submit(
                    session, Request.make("shapley_value", fact=fact)
                )
                for fact in facts
            }
            gate.set()
            blocker.result(10)
            for fact, future in futures.items():
                assert future.result(10) == serial[fact]
            assert scheduler.stats()["sweeps"] == 1
            assert scheduler.stats()["swept_requests"] == len(facts)
        finally:
            gate.set()
            scheduler.close()

    def test_per_request_errors_do_not_poison_the_batch(self):
        query, data = _workload()
        stranger = Fact("R", ("not", "present"))
        with Server(query, workers=2, **data) as server:
            good = server.submit(Request.make("pqe"))
            bad = server.submit(Request.make("shapley_value", fact=stranger))
            assert 0.0 <= good.result(10) <= 1.0
            with pytest.raises(ReproError, match="not an endogenous fact"):
                bad.result(10)

    def test_cancelled_future_does_not_kill_the_worker(self, custom_family):
        """Cancelling a queued future must not strand the worker thread —
        later requests on the same (sole) worker must still be served."""
        release = threading.Event()
        started = threading.Event()

        def gated(session):
            started.set()
            assert release.wait(10)
            return "gated"

        custom_family("gated", gated)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=1)
        try:
            blocker = scheduler.submit(session, Request.make("gated"))
            assert started.wait(10)
            victim = scheduler.submit(session, Request.make("pqe"))
            assert victim.cancel()
            survivor = scheduler.submit(session, Request.make("resilience"))
            release.set()
            assert blocker.result(10) == "gated"
            assert survivor.result(10) == session.resilience()
            assert victim.cancelled()
        finally:
            release.set()
            scheduler.close()

    def test_submit_after_close_raises(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=1)
        scheduler.close()
        with pytest.raises(ReproError, match="closed"):
            scheduler.submit(session, Request.make("pqe"))

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ReproError, match="worker count"):
            Scheduler(workers=0)


# ----------------------------------------------------------------------
# Server front-end
# ----------------------------------------------------------------------
class TestServer:
    def test_map_preserves_input_order(self):
        query, data = _workload()
        requests = _mixed_stream(data, rounds=2)
        serial = _serial_answers(query, data, requests)
        with Server(query, workers=4, **data) as server:
            assert server.map(requests) == serial

    def test_serve_requests_convenience(self):
        query, data = _workload()
        requests = [Request.make("pqe"), Request.make("resilience")]
        assert serve_requests(query, requests, **data) == _serial_answers(
            query, data, requests
        )

    def test_engine_and_pool_are_mutually_exclusive(self):
        query, data = _workload()
        with SessionPool() as pool:
            with pytest.raises(ReproError, match="either engine= or pool="):
                Server(query, engine=Engine(), pool=pool, **data)

    def test_shared_pool_reuses_annotated_state(self):
        query, data = _workload()
        with SessionPool() as pool:
            with Server(query, pool=pool, workers=2, **data) as first:
                first.map([Request.make("pqe")])
            with Server(query, pool=pool, workers=2, **data) as second:
                second.map([Request.make("pqe")])
                assert second.session.stats()["annotation_builds"] == 1
                assert second.session.stats()["memo"]["hits"] >= 1

    def test_stats_shape(self):
        query, data = _workload()
        with Server(query, workers=2, **data) as server:
            server.map([Request.make("pqe")])
            stats = server.stats()
            assert {"scheduler", "session", "pool"} <= set(stats)
            assert stats["scheduler"]["executed"] == 1

    def test_failed_construction_leaves_no_hooks_behind(self):
        query = parse_query("Q() :- R(X), S(X, Y)")
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(), [Fact("R", (1,))], lambda fact: 0.5
        )
        with pytest.raises(ReproError, match="worker count"):
            Server(query, annotated=annotated, workers=0)
        assert not annotated._invalidation_hooks
        assert all(
            relation._on_mutate is None for relation in annotated.relations()
        )


# ----------------------------------------------------------------------
# Concurrency stress: bit-identical to serial, on every tier
# ----------------------------------------------------------------------
class TestConcurrencyStress:
    @pytest.mark.parametrize("kernel_mode", ["auto", "batched", "scalar"])
    def test_workers_match_serial_one_shot_bit_identically(self, kernel_mode):
        query, data = _workload(size=120, endo=6)
        requests = _mixed_stream(data, rounds=4)
        serial = _serial_answers(query, data, requests, kernel_mode)
        with Server(
            query, engine=Engine(kernel_mode=kernel_mode), workers=8, **data
        ) as server:
            served = server.map(requests)
        assert served == serial  # bit-identical, not approximately equal

    def test_numpy_blocked_leg_matches_serial(self, monkeypatch):
        monkeypatch.setitem(sys.modules, "numpy", None)
        kernels_module._reset_numpy_probe()
        try:
            assert numpy_or_none() is None
            query, data = _workload(size=90, endo=4)
            requests = _mixed_stream(data, rounds=3)
            serial = _serial_answers(query, data, requests, "auto")
            with Server(
                query, engine=Engine(kernel_mode="auto"), workers=8, **data
            ) as server:
                assert server.map(requests) == serial
        finally:
            monkeypatch.undo()
            kernels_module._reset_numpy_probe()

    def test_concurrent_sessions_over_shared_pool_state(self):
        """Many threads × sibling pooled sessions: answers stay correct
        while every cache build is shared."""
        query, data = _workload(size=120, endo=6)
        expected = _serial_answers(
            query, data,
            [Request.make("pqe"), Request.make("resilience"),
             Request.make("sat_counts")],
        )
        pool = SessionPool()
        errors = []

        def hammer():
            try:
                session = pool.session(query, **data)
                assert session.pqe() == expected[0]
                assert session.resilience() == expected[1]
                assert session.sat_counts() == expected[2]
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        canonical = pool.session(query, **data)
        # One shared annotation build per family, not one per thread.
        assert canonical.stats()["annotation_builds"] == 3
        pool.close()


# ----------------------------------------------------------------------
# Locked shared caches under concurrency
# ----------------------------------------------------------------------
class TestLockedCaches:
    def test_plan_cache_survives_concurrent_compiles_and_resizes(
        self, plan_cache_guard
    ):
        clear_plan_cache()
        errors = []
        stop = threading.Event()

        def compiler(index):
            try:
                for step in range(40):
                    query = parse_query(
                        f"Q() :- R{index}x{step}(X), S{index}x{step}(X, Y)"
                    )
                    plan = compile_plan(query)
                    assert plan.final_relation
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        def resizer():
            try:
                while not stop.is_set():
                    set_plan_cache_size(2)
                    set_plan_cache_size(64)
            except BaseException as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=compiler, args=(index,))
            for index in range(6)
        ]
        shrinker = threading.Thread(target=resizer)
        shrinker.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        shrinker.join()
        assert not errors
        info = plan_cache_info()
        assert info["size"] <= info["max_size"]

    @pytest.mark.skipif(
        numpy_or_none() is None, reason="columnar tier needs numpy"
    )
    def test_concurrent_columnar_materialization_builds_one_view(self):
        query, data = _workload()
        monoid = ProbabilityMonoid()
        source = data["probabilistic"]
        annotated = KDatabase.annotate(
            query, monoid, source.facts(), source.probability
        )
        kernel = array_kernel_for(monoid)
        name = query.atoms[0].relation
        views = []
        barrier = threading.Barrier(8)

        def materialize():
            barrier.wait(5)
            views.append(annotated.columnar_relation(name, kernel))

        threads = [threading.Thread(target=materialize) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(view) for view in views}) == 1
        assert annotated.columnar_cache_info()["relations"] == 1


# ----------------------------------------------------------------------
# Columnar bulk ψ-annotation (array-mode seeding)
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    numpy_or_none() is None, reason="columnar tier needs numpy"
)
class TestColumnarSeeding:
    def test_bulk_annotate_seeds_views_from_the_fact_stream(self):
        query, data = _workload()
        monoid = ProbabilityMonoid()
        source = data["probabilistic"]
        seeded = KDatabase.annotate(
            query, monoid, source.facts(), source.probability, columnar=True
        )
        # Views exist before any plan execution touched the database.
        assert seeded.columnar_cache_info()["relations"] == len(query.atoms)
        lazy = KDatabase.annotate(
            query, monoid, source.facts(), source.probability
        )
        assert lazy.columnar_cache_info()["relations"] == 0
        from repro.core.algorithm import execute_plan
        from repro.core.plan import compile_plan as compile_q

        plan = compile_q(query)
        assert (
            execute_plan(plan, seeded, kernel_mode="array").result
            == execute_plan(plan, lazy, kernel_mode="array").result
        )

    def test_seeded_views_match_lazy_materialization(self):
        query, data = _workload()
        monoid = ProbabilityMonoid()
        source = data["probabilistic"]
        seeded = KDatabase.annotate(
            query, monoid, source.facts(), source.probability, columnar=True
        )
        lazy = KDatabase.annotate(
            query, monoid, source.facts(), source.probability
        )
        kernel = array_kernel_for(monoid)
        np = kernel.np
        for atom in query.atoms:
            mine = seeded.columnar_relation(atom.relation, kernel)
            theirs = lazy.columnar_relation(atom.relation, kernel)
            assert np.array_equal(mine.annotations, theirs.annotations)
            for left, right in zip(mine.columns, theirs.columns):
                assert np.array_equal(left, right)

    def test_duplicate_and_zero_facts_fall_back_to_lazy(self):
        query = parse_query("Q() :- R(X), S(X, Y)")
        monoid = ProbabilityMonoid()
        facts = [
            Fact("R", (1,)), Fact("R", (1,)),  # duplicate key
            Fact("S", (1, 2)), Fact("S", (2, 2)),
        ]
        psi = {
            Fact("R", (1,)): 0.5,
            Fact("S", (1, 2)): 0.8,
            Fact("S", (2, 2)): 0.0,  # ⊕-identity: dropped from the support
        }
        annotated = KDatabase.annotate(
            query, monoid, facts, psi.__getitem__, columnar=True
        )
        # Neither relation batch landed one-to-one, so no view was seeded…
        assert annotated.columnar_cache_info()["relations"] == 0
        # …and the support is exactly the per-fact semantics.
        assert annotated.relation("R").annotation((1,)) == 0.5
        assert annotated.relation("S").support() == {(1, 2)}

    def test_array_sessions_seed_during_annotation(self):
        query, data = _workload()
        session = Engine(kernel_mode="array").open(query, **data)
        session.pqe()
        annotated = session._annotated[("pqe", False)]
        # All views present and tagged with the untouched relation versions.
        assert (
            annotated.columnar_cache_info()["relations"] == len(query.atoms)
        )


# ----------------------------------------------------------------------
# CLI + bench integration
# ----------------------------------------------------------------------
class TestServeCLI:
    def _write_stream(self, tmp_path, requests):
        payload = {
            "query": "Q() :- R(X), S(X, Y)",
            "data": {
                "probabilistic": {"facts": [
                    {"relation": "R", "values": [1], "probability": 0.5},
                    {"relation": "S", "values": [1, 2], "probability": 0.8},
                ]},
                "endogenous": {"relations": {"R": [[1]]}},
                "exogenous": {"relations": {"S": [[1, 2]]}},
            },
            "requests": requests,
        }
        path = tmp_path / "stream.json"
        path.write_text(json.dumps(payload))
        return path

    def test_cli_serves_stream(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_stream(tmp_path, [
            {"family": "pqe"},
            {"family": "pqe"},
            {"family": "sat_counts"},
            {"family": "shapley_value",
             "fact": {"relation": "R", "values": [1]}},
        ])
        code = main([
            "serve", "--requests", str(path), "--workers", "2", "--stats",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "[0] pqe() = 0.4" in out
        assert "served 4 requests" in out
        assert "coalesced:" in out

    def test_cli_reports_request_failures(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_stream(tmp_path, [
            {"family": "pqe"},
            {"family": "shapley_value",
             "fact": {"relation": "R", "values": [999]}},
        ])
        code = main(["serve", "--requests", str(path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "failed: " in out


class TestServeBench:
    def test_quick_scenario_agrees_and_reports_latency(self):
        from repro.bench.perf import perf_serve

        result = perf_serve(quick=True, repeats=1)
        assert result["agree"]
        for run in result["runs"]:
            assert run["identical"]
            for entry in run["workers"].values():
                assert entry["throughput_rps"] > 0
                assert entry["p95_ms"] >= entry["p50_ms"] >= 0

    def test_suite_includes_serve(self):
        from repro.bench.perf import PERF_EXPERIMENTS, SCHEMA_VERSION

        assert "serve" in PERF_EXPERIMENTS
        assert SCHEMA_VERSION >= 4  # the serve scenario landed in v4
