"""Tests for tuple-independent probabilistic databases."""

from fractions import Fraction

import pytest

from repro.db.fact import Fact
from repro.exceptions import AlgebraError
from repro.problems.possible_worlds import ProbabilisticDatabase


class TestConstruction:
    def test_probabilities_stored(self):
        pdb = ProbabilisticDatabase({Fact("R", (1,)): 0.5})
        assert pdb.probability(Fact("R", (1,))) == 0.5
        assert pdb.probability(Fact("R", (2,))) == 0
        assert len(pdb) == 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(AlgebraError):
            ProbabilisticDatabase({Fact("R", (1,)): 1.5})
        with pytest.raises(AlgebraError):
            ProbabilisticDatabase({Fact("R", (1,)): -0.2})

    def test_uniform(self):
        facts = [Fact("R", (i,)) for i in range(3)]
        pdb = ProbabilisticDatabase.uniform(facts, 0.25)
        assert all(pdb.probability(f) == 0.25 for f in facts)

    def test_support_database(self):
        pdb = ProbabilisticDatabase({Fact("R", (1,)): 0.5, Fact("S", (2,)): 0.1})
        assert len(pdb.support_database()) == 2

    def test_as_exact(self):
        pdb = ProbabilisticDatabase({Fact("R", (1,)): 0.5}).as_exact()
        assert pdb.probability(Fact("R", (1,))) == Fraction(1, 2)


class TestPossibleWorlds:
    def test_world_count(self):
        facts = {Fact("R", (i,)): Fraction(1, 2) for i in range(3)}
        worlds = list(ProbabilisticDatabase(facts).possible_worlds())
        assert len(worlds) == 8

    def test_probabilities_sum_to_one(self):
        facts = {
            Fact("R", (1,)): Fraction(1, 3),
            Fact("R", (2,)): Fraction(2, 5),
            Fact("S", (1,)): Fraction(9, 10),
        }
        total = sum(p for _, p in ProbabilisticDatabase(facts).possible_worlds())
        assert total == 1

    def test_certain_fact_always_present(self):
        facts = {Fact("R", (1,)): Fraction(1), Fact("R", (2,)): Fraction(1, 2)}
        for world, _p in ProbabilisticDatabase(facts).possible_worlds():
            assert Fact("R", (1,)) in world

    def test_impossible_fact_never_present(self):
        facts = {Fact("R", (1,)): Fraction(0), Fact("R", (2,)): Fraction(1, 2)}
        worlds = list(ProbabilisticDatabase(facts).possible_worlds())
        assert len(worlds) == 2
        for world, _p in worlds:
            assert Fact("R", (1,)) not in world

    def test_world_probability_values(self):
        facts = {Fact("R", (1,)): Fraction(1, 4)}
        worlds = dict(
            (len(world), p)
            for world, p in ProbabilisticDatabase(facts).possible_worlds()
        )
        assert worlds[1] == Fraction(1, 4)
        assert worlds[0] == Fraction(3, 4)
