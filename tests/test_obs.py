"""The observability layer: metric primitives, traces, exposition.

Covers the dependency-free :mod:`repro.obs` package in isolation —
counters/gauges/histograms and their registry, the shared ``quantile``
definition the bench suite reports, Prometheus text rendering (and its
scrape-side inverse), request traces and the JSONL event log — plus the
integration seams: instrumented scheduler/session stats staying exactly
as they were, and every stats() key now being a view over a registry.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.exceptions import ReproError
from repro.obs import (
    DEFAULT_BUCKETS,
    EventLog,
    MetricsRegistry,
    Trace,
    global_registry,
    parse_exposition,
    quantile,
    render_prometheus,
    trace_of,
)


# ----------------------------------------------------------------------
# quantile: the one percentile definition in the repo
# ----------------------------------------------------------------------
class TestQuantile:
    def test_matches_the_historical_bench_formula(self):
        values = [5.0, 1.0, 4.0, 2.0, 3.0]
        ordered = sorted(values)
        for fraction in (0.0, 0.25, 0.5, 0.75, 0.95, 1.0):
            index = min(
                len(ordered) - 1, round(fraction * (len(ordered) - 1))
            )
            assert quantile(values, fraction) == ordered[index]

    def test_empty_input_yields_zero(self):
        assert quantile([], 0.95) == 0.0

    def test_single_value(self):
        assert quantile([7.5], 0.5) == 7.5
        assert quantile([7.5], 0.99) == 7.5

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        quantile(values, 0.5)
        assert values == [3.0, 1.0, 2.0]


# ----------------------------------------------------------------------
# Counter / Gauge / Histogram children
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self):
        child = MetricsRegistry().counter("repro_t_total", "t").labels()
        child.inc()
        child.inc(4)
        assert child.value == 5

    def test_negative_increment_rejected(self):
        child = MetricsRegistry().counter("repro_t_total", "t").labels()
        with pytest.raises(ReproError):
            child.inc(-1)

    def test_concurrent_increments_are_exact(self):
        child = MetricsRegistry().counter("repro_t_total", "t").labels()

        def bump():
            for _ in range(5000):
                child.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert child.value == 40_000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_g", "g").labels()
        gauge.set(10)
        gauge.inc(3)
        gauge.dec()
        assert gauge.value == 12

    def test_callback_wins_over_stored_value(self):
        gauge = MetricsRegistry().gauge("repro_g", "g").labels()
        gauge.set(1)
        gauge.set_function(lambda: 42)
        assert gauge.value == 42


class TestHistogram:
    def test_counts_and_sum(self):
        hist = MetricsRegistry().histogram(
            "repro_h_seconds", "h", buckets=(0.1, 1.0)
        ).labels()
        for value in (0.05, 0.5, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(3.05)
        # le-semantics: cumulative over (0.1, 1.0, +Inf)
        assert hist.cumulative_counts() == [1, 3, 4]

    def test_boundary_observation_lands_in_its_bucket(self):
        hist = MetricsRegistry().histogram(
            "repro_h_seconds", "h", buckets=(0.1, 1.0)
        ).labels()
        hist.observe(0.1)  # le="0.1" must include exactly-0.1
        assert hist.cumulative_counts()[0] == 1

    def test_quantile_within_one_bucket_width(self):
        hist = MetricsRegistry().histogram(
            "repro_h_seconds", "h", buckets=DEFAULT_BUCKETS
        ).labels()
        for _ in range(100):
            hist.observe(0.03)
        estimate = hist.quantile(0.5)
        assert 0.025 <= estimate <= 0.05

    def test_quantile_of_empty_histogram_is_zero(self):
        hist = MetricsRegistry().histogram("repro_h_seconds", "h").labels()
        assert hist.quantile(0.99) == 0.0

    def test_rejects_empty_or_infinite_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ReproError):
            registry.histogram("repro_bad_a", "h", buckets=())
        with pytest.raises(ReproError):
            registry.histogram(
                "repro_bad_b", "h", buckets=(1.0, math.inf)
            )


# ----------------------------------------------------------------------
# Families and the registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x", labels=("tier",))
        second = registry.counter("repro_x_total", "other help", labels=("tier",))
        assert first is second

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ReproError):
            registry.gauge("repro_x_total", "x")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", labels=("tier",))
        with pytest.raises(ReproError):
            registry.counter("repro_x_total", "x", labels=("family",))

    def test_labels_must_match_declared_names(self):
        family = MetricsRegistry().counter(
            "repro_x_total", "x", labels=("tier",)
        )
        with pytest.raises(ReproError):
            family.labels(family="pqe")

    def test_invalid_metric_names_rejected(self):
        registry = MetricsRegistry()
        for bad in ("", "9starts_with_digit", "has space", "has-dash"):
            with pytest.raises(ReproError):
                registry.counter(bad, "x")

    def test_same_label_values_share_one_child(self):
        family = MetricsRegistry().counter(
            "repro_x_total", "x", labels=("tier",)
        )
        family.labels(tier="array").inc(2)
        family.labels(tier="array").inc(3)
        assert family.labels(tier="array").value == 5
        assert len(family.children()) == 1

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("repro_plain_total", "p").labels().inc(7)
        registry.counter(
            "repro_labeled_total", "l", labels=("tier",)
        ).labels(tier="array").inc(2)
        snapshot = registry.snapshot()
        assert snapshot["repro_plain_total"] == 7
        assert snapshot["repro_labeled_total"][("array",)] == 2

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


# ----------------------------------------------------------------------
# Exposition rendering and parsing
# ----------------------------------------------------------------------
class TestExposition:
    def test_counter_rendering(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_req_total", "Requests.", labels=("family",)
        ).labels(family="pqe").inc(3)
        text = render_prometheus([registry])
        assert "# HELP repro_req_total Requests.\n" in text
        assert "# TYPE repro_req_total counter\n" in text
        assert 'repro_req_total{family="pqe"} 3\n' in text

    def test_histogram_rendering_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_lat_seconds", "Latency.", buckets=(0.1, 1.0)
        ).labels()
        for value in (0.05, 0.5, 2.0):
            hist.observe(value)
        text = render_prometheus([registry])
        assert 'repro_lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2\n' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "repro_lat_seconds_count 3\n" in text

    def test_merging_registries_sums_same_label_children(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry, amount in ((left, 2), (right, 5)):
            registry.counter(
                "repro_req_total", "Requests.", labels=("family",)
            ).labels(family="pqe").inc(amount)
        parsed = parse_exposition(render_prometheus([left, right]))
        assert parsed[("repro_req_total", (("family", "pqe"),))] == 7.0

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_req_total", "r", labels=("family",)
        ).labels(family='we"ird\\name').inc()
        text = render_prometheus([registry])
        assert 'family="we\\"ird\\\\name"' in text

    def test_parse_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_req_total", "r", labels=("family", "outcome")
        ).labels(family="pqe", outcome="ok").inc(9)
        registry.gauge("repro_depth", "d").labels().set(4)
        parsed = parse_exposition(render_prometheus([registry]))
        key = ("repro_req_total", (("family", "pqe"), ("outcome", "ok")))
        assert parsed[key] == 9.0
        assert parsed[("repro_depth", ())] == 4.0

    def test_callback_gauge_read_at_render_time(self):
        registry = MetricsRegistry()
        state = {"depth": 1}
        registry.gauge("repro_depth", "d").labels().set_function(
            lambda: state["depth"]
        )
        state["depth"] = 11
        parsed = parse_exposition(render_prometheus([registry]))
        assert parsed[("repro_depth", ())] == 11.0


# ----------------------------------------------------------------------
# Traces and the event log
# ----------------------------------------------------------------------
class TestTrace:
    def test_lifecycle_durations(self):
        trace = Trace("pqe")
        trace.mark("submitted")
        trace.mark("claimed")
        trace.mark("executed", kernel_mode="auto")
        trace.mark("resolved", outcome="ok")
        assert trace.queue_wait is not None and trace.queue_wait >= 0
        assert trace.total is not None and trace.total >= trace.queue_wait
        assert trace.outcome == "ok"

    def test_unresolved_trace_has_no_total(self):
        trace = Trace("pqe")
        trace.mark("submitted")
        assert trace.total is None
        assert trace.outcome is None

    def test_to_dict_uses_relative_timestamps(self):
        trace = Trace("pqe")
        trace.mark("submitted")
        trace.mark("resolved", outcome="ok")
        payload = trace.to_dict()
        assert payload["family"] == "pqe"
        assert payload["marks"][0]["t"] == 0.0
        assert payload["marks"][1]["stage"] == "resolved"
        assert payload["marks"][1]["outcome"] == "ok"
        json.dumps(payload)  # must be JSON-serializable as-is

    def test_trace_of_reads_future_attribute_and_request_field(self):
        class Stub:
            pass

        future = Stub()
        future._repro_trace = Trace("pqe")
        assert trace_of(future) is future._repro_trace
        request = Stub()
        request.trace = Trace("resilience")
        assert trace_of(request) is request.trace
        assert trace_of(object()) is None


class TestEventLog:
    def test_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            for family in ("pqe", "resilience"):
                trace = Trace(family)
                trace.mark("submitted")
                trace.mark("resolved", outcome="ok")
                log.record(trace)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["family"] for line in lines] == [
            "pqe", "resilience",
        ]

    def test_close_is_idempotent(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.close()


# ----------------------------------------------------------------------
# Integration: instrumented layers keep their stats() contracts
# ----------------------------------------------------------------------
class TestInstrumentationSeams:
    def test_scheduler_stats_keys_are_registry_views(self):
        from fractions import Fraction

        from repro import Fact, ProbabilisticDatabase, Request, Server, parse_query

        query = parse_query("Q() :- R(X), S(X)")
        pdb = ProbabilisticDatabase({
            Fact("R", (1,)): Fraction(1, 2),
            Fact("S", (1,)): Fraction(1, 2),
        })
        with Server(query, probabilistic=pdb, workers=2) as server:
            server.map([
                Request.make("pqe"),
                Request.make("pqe"),          # memo hit
                Request.make("expected_count"),
            ])
            stats = server.stats()["scheduler"]
            snapshot = server.scheduler.metrics_registry.snapshot()
        # The historical flat keys still exist and agree with the registry.
        events = snapshot["repro_scheduler_events_total"]
        assert stats["submitted"] == events[("submitted",)] == 3
        assert stats["executed"] == events[("executed",)]
        for alias in ("sweeps", "swept_requests", "fused_batches"):
            assert stats[alias] == stats["batching"][alias]

    def test_requests_total_accounts_every_submission(self):
        from fractions import Fraction

        from repro import Fact, ProbabilisticDatabase, Request, Server, parse_query

        query = parse_query("Q() :- R(X), S(X)")
        pdb = ProbabilisticDatabase({
            Fact("R", (1,)): Fraction(1, 2),
            Fact("S", (1,)): Fraction(1, 2),
        })
        with Server(query, probabilistic=pdb, workers=2) as server:
            server.map([Request.make("pqe"), Request.make("expected_count")])
            parsed = parse_exposition(server.render_metrics())
        ok = sum(
            value for (name, labels), value in parsed.items()
            if name == "repro_requests_total"
            and ("outcome", "ok") in labels
        )
        assert ok == 2
        # Latency histogram observed once per resolved request.
        count = sum(
            value for (name, labels), value in parsed.items()
            if name == "repro_request_latency_seconds_count"
        )
        assert count == 2

    def test_session_memo_metrics_match_stats(self):
        from fractions import Fraction

        from repro import Engine, Fact, ProbabilisticDatabase, parse_query

        query = parse_query("Q() :- R(X), S(X)")
        pdb = ProbabilisticDatabase({
            Fact("R", (1,)): Fraction(1, 2),
            Fact("S", (1,)): Fraction(1, 2),
        })
        session = Engine().open(query, probabilistic=pdb)
        session.request("pqe")
        session.request("pqe")
        stats = session.stats()
        snapshot = session.metrics_registry.snapshot()
        assert snapshot["repro_memo_hits_total"] == stats["memo"]["hits"] == 1
        assert (
            snapshot["repro_memo_misses_total"]
            == stats["memo"]["misses"]
            == 1
        )
        assert snapshot["repro_memo_entries"] == 1
