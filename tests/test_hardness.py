"""Tests for BCBS and the Theorem 4.4 reduction."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ReductionError
from repro.hardness.bcbs import (
    Graph,
    complete_bipartite_graph,
    find_balanced_biclique,
    has_balanced_biclique,
    max_balanced_biclique,
)
from repro.hardness.reduction import (
    decide_bcbs_via_bsm,
    decide_bsm_decision_smart,
    extract_biclique_from_repair,
    reduce_bcbs,
)
from repro.problems.bagset_max import maximize_brute_force
from repro.query.bcq import make_query
from repro.query.families import chain_query, q_eq1, q_nh
from repro.workloads.graphs import (
    cycle_graph,
    gnp_random_graph,
    path_graph,
    planted_biclique_graph,
)


class TestGraphModel:
    def test_from_edges(self):
        graph = Graph.from_edges([(1, 2), (2, 3)])
        assert graph.vertex_count == 3
        assert graph.edge_count == 2
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)
        assert not graph.has_edge(1, 3)

    def test_self_loop_rejected(self):
        with pytest.raises(ReductionError):
            Graph.from_edges([(1, 1)])

    def test_isolated_vertices(self):
        graph = Graph.from_edges([(1, 2)], vertices=[1, 2, 3])
        assert graph.vertex_count == 3
        assert graph.neighbors(3) == frozenset()

    def test_neighbors(self):
        graph = Graph.from_edges([(1, 2), (1, 3)])
        assert graph.neighbors(1) == {2, 3}
        assert graph.neighbors(2) == {1}


class TestBCBSSolver:
    def test_complete_bipartite(self):
        graph = complete_bipartite_graph(3, 3)
        assert has_balanced_biclique(graph, 3)
        assert not has_balanced_biclique(graph, 4)
        assert max_balanced_biclique(graph) == 3

    def test_unbalanced_bipartite(self):
        graph = complete_bipartite_graph(2, 5)
        assert max_balanced_biclique(graph) == 2

    def test_single_edge(self):
        graph = Graph.from_edges([(1, 2)])
        assert has_balanced_biclique(graph, 1)
        assert not has_balanced_biclique(graph, 2)

    def test_path_graph(self):
        assert max_balanced_biclique(path_graph(6)) == 1

    def test_cycle_graph_of_four_is_k22(self):
        """C4 = K_{2,2}: opposite vertex pairs form the parts."""
        assert has_balanced_biclique(cycle_graph(4), 2)
        assert not has_balanced_biclique(cycle_graph(5), 2)

    def test_edgeless_graph(self):
        graph = Graph.from_edges([], vertices=[1, 2, 3])
        assert max_balanced_biclique(graph) == 0

    def test_invalid_k(self):
        with pytest.raises(ReductionError):
            has_balanced_biclique(path_graph(3), 0)

    def test_found_biclique_is_complete(self):
        graph, part_one, part_two = planted_biclique_graph(8, 2, noise=0.2, seed=3)
        found = find_balanced_biclique(graph, 2)
        assert found is not None
        u1, u2 = found
        assert len(u1) == len(u2) == 2
        assert not (u1 & u2)
        for u in u1:
            for v in u2:
                assert graph.has_edge(u, v)

    def test_planted_biclique_found(self):
        graph, _, _ = planted_biclique_graph(10, 3, noise=0.1, seed=0)
        assert has_balanced_biclique(graph, 3)


class TestReductionConstruction:
    def test_sizes_match_theorem(self):
        graph = gnp_random_graph(5, 0.5, seed=1)
        output = reduce_bcbs(q_nh(), graph, 2)
        assert output.budget == 4
        assert output.target == 4
        # D holds only S facts (one per edge orientation); Dr one R and one
        # T fact per vertex.
        assert len(output.instance.database) == 2 * graph.edge_count
        assert len(output.instance.repair_database) == 2 * graph.vertex_count

    def test_base_has_no_r_or_t_facts(self):
        graph = gnp_random_graph(4, 0.5, seed=2)
        output = reduce_bcbs(q_nh(), graph, 1)
        witness = output.witness
        assert not output.instance.database.tuples(witness.atom_r.relation)
        assert not output.instance.database.tuples(witness.atom_t.relation)

    def test_hierarchical_query_rejected(self):
        with pytest.raises(ReductionError):
            reduce_bcbs(q_eq1(), path_graph(3), 1)

    def test_invalid_k_rejected(self):
        with pytest.raises(ReductionError):
            reduce_bcbs(q_nh(), path_graph(3), 0)

    def test_empty_graph_rejected(self):
        empty = Graph(frozenset(), frozenset())
        with pytest.raises(ReductionError):
            reduce_bcbs(q_nh(), empty, 1)


class TestReductionCorrectness:
    """The (1) ⇔ (2) equivalence of Theorem 4.4 on small graphs."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_yes_instances(self, k):
        graph = complete_bipartite_graph(k, k)
        assert decide_bcbs_via_bsm(q_nh(), graph, k)

    def test_no_instance(self):
        assert not decide_bcbs_via_bsm(q_nh(), path_graph(4), 2)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_equivalence_on_random_graphs(self, seed):
        rng = random.Random(seed)
        graph = gnp_random_graph(5, 0.5, seed=rng)
        if graph.edge_count == 0:
            return
        k = rng.randint(1, 2)
        direct = has_balanced_biclique(graph, k)
        via_reduction = decide_bcbs_via_bsm(q_nh(), graph, k)
        assert direct == via_reduction

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_smart_solver_agrees_with_blind_brute_force(self, seed):
        rng = random.Random(seed)
        graph = gnp_random_graph(4, 0.6, seed=rng)
        if graph.edge_count == 0:
            return
        output = reduce_bcbs(q_nh(), graph, 1)
        smart = decide_bsm_decision_smart(output)
        blind = maximize_brute_force(q_nh(), output.instance) >= output.target
        assert smart == blind

    def test_reduction_works_for_other_non_hierarchical_queries(self):
        """Theorem 4.4 covers every non-hierarchical query, not just q_nh."""
        for query in (
            chain_query(3),
            make_query([("R", "AX"), ("S", "ABY"), ("T", "BZ")]),
        ):
            graph = complete_bipartite_graph(2, 2)
            assert decide_bcbs_via_bsm(query, graph, 2)
            assert not decide_bcbs_via_bsm(query, path_graph(4), 2)

    def test_biclique_extraction(self):
        graph = complete_bipartite_graph(2, 2)
        output = reduce_bcbs(q_nh(), graph, 2)
        witness = output.witness
        u_side = [
            f for f in output.instance.addable_facts()
            if f.relation == witness.atom_r.relation
            and f.values[witness.atom_r.variables.index(witness.variable_a)][0] == "u"
        ]
        v_side = [
            f for f in output.instance.addable_facts()
            if f.relation == witness.atom_t.relation
            and f.values[witness.atom_t.variables.index(witness.variable_b)][0] == "v"
        ]
        repaired = output.instance.database.with_facts(u_side + v_side)
        from repro.db.evaluation import count_satisfying_assignments

        assert count_satisfying_assignments(q_nh(), repaired) >= output.target
        part_one, part_two = extract_biclique_from_repair(output, repaired)
        assert len(part_one) == 2 and len(part_two) == 2
        for u in part_one:
            for v in part_two:
                assert graph.has_edge(u, v)
