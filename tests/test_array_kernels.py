"""Array tier ≡ batched kernels ≡ scalar, and the optional-numpy policy.

Four layers of checks:

* **End-to-end tier equivalence** on randomized annotated databases for
  every flat-carrier monoid: ``execute_plan`` under ``kernel_mode`` scalar /
  batched / array must agree — bit-identically for int/bool(/int-valued
  float) carriers, within the bench tolerance (1e-9) for genuine floats —
  including empty relations and single-tuple supports.
* **Columnar relation ops** against the scalar dict layout: ``project_out``,
  ``merge`` (reordered variable orders, annihilating-zero products) and
  ``absorb``, over mixed int/str domain values (the interner is type-blind),
  plus the **non-annihilating union merge** via a custom flat 2-monoid with
  a test-registered array kernel.
* **Tier selection**: exact carriers (Fraction probability/real, Shapley,
  bag-set, instrumentation wrappers) must resolve to no array kernel; the
  counting tier must fall back to the batched engine when annotations
  exceed int64; cached columnar views must be invalidated by mutation.
* **numpy optionality**: with the import blocked (``sys.modules``
  monkeypatch, plus a subprocess leg that blocks it for a whole pytest
  subset), every ``kernel_mode`` — including ``"array"`` — keeps producing
  correct answers through the batched fallback.
"""

from __future__ import annotations

import math
import os
import random
import subprocess
import sys
from fractions import Fraction
from pathlib import Path

import pytest

from repro.algebra.base import TwoMonoid
from repro.algebra.bagset import BagSetMonoid
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.algebra.real import RealSemiring
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import SatVector, ShapleyMonoid
from repro.algebra.tropical import (
    MaxPlusSemiring,
    MaxTimesSemiring,
    MinPlusSemiring,
)
from repro.core import kernels as kernels_module
from repro.core.algorithm import execute_plan
from repro.core.instrument import CountingMonoid
from repro.core.kernels import (
    ArrayKernel,
    array_kernel_for,
    numpy_or_none,
    register_array_kernel,
    scalar_kernels,
)
from repro.core.plan import compile_plan
from repro.db.annotated import (
    ColumnarKRelation,
    KDatabase,
    KRelation,
    _ValueInterner,
)
from repro.exceptions import ReproError
from repro.query.atoms import make_atom
from repro.query.families import q_eq1, star_query

numpy = numpy_or_none()
requires_numpy = pytest.mark.skipif(numpy is None, reason="numpy not installed")

REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Samplers for every flat-carrier monoid (exact ⇒ tiers must be identical)
# ----------------------------------------------------------------------
def _flat_samplers():
    """(monoid, annotation sampler, exact) for every array-tier carrier."""
    return [
        (
            ProbabilityMonoid(),
            lambda rng: rng.choice([0.25, 0.5, 1.0, rng.random()]),
            False,
        ),
        (CountingSemiring(), lambda rng: rng.randrange(1, 6), True),
        (RealSemiring(), lambda rng: rng.choice([1.0, rng.random() * 3]), False),
        (BooleanSemiring(), lambda rng: rng.random() < 0.8, True),
        (
            MinPlusSemiring(),
            lambda rng: rng.choice([0, 1, rng.randrange(0, 9)]),
            True,
        ),
        (MaxTimesSemiring(), lambda rng: rng.randrange(1, 6), True),
        (
            MaxPlusSemiring(),
            lambda rng: rng.choice([0, rng.randrange(0, 9)]),
            True,
        ),
        (
            ResilienceMonoid(),
            lambda rng: rng.choice([math.inf, 1, rng.randrange(1, 5)]),
            True,
        ),
    ]


def _results_agree(left, right, exact: bool) -> bool:
    if exact:
        return left == right
    if isinstance(left, float) and isinstance(right, float):
        return left == right or abs(left - right) <= 1e-9
    return left == right


def _random_annotated(query, monoid, sampler, rng, tuples=40, domain=6):
    annotated = KDatabase(query, monoid)
    for relation in annotated.relations():
        for _ in range(tuples):
            values = tuple(
                rng.randrange(0, domain) for _ in range(relation.atom.arity)
            )
            relation.set(values, sampler(rng))
    return annotated


def _run_all_tiers(query, annotated):
    plan = compile_plan(query)
    return {
        mode: execute_plan(plan, annotated, kernel_mode=mode).result
        for mode in ("scalar", "batched", "array")
    }


# ----------------------------------------------------------------------
# End-to-end: scalar ≡ batched ≡ array on every flat monoid
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize(
    "monoid,sampler,exact",
    _flat_samplers(),
    ids=lambda value: getattr(value, "name", None),
)
class TestTierEquivalenceEndToEnd:
    def test_randomized_databases(self, monoid, sampler, exact):
        rng = random.Random(hash(monoid.name) & 0xFFFF)
        for query in (q_eq1(), star_query(2)):
            for trial in range(4):
                annotated = _random_annotated(query, monoid, sampler, rng)
                results = _run_all_tiers(query, annotated)
                for mode, value in results.items():
                    assert _results_agree(
                        results["scalar"], value, exact
                    ), (monoid.name, mode, results)

    def test_empty_and_singleton_relations(self, monoid, sampler, exact):
        rng = random.Random(7)
        query = q_eq1()
        # One relation empty: the answer is the ⊕-identity in every tier.
        annotated = _random_annotated(query, monoid, sampler, rng)
        empty_name = query.atoms[0].relation
        annotated._relations[empty_name] = KRelation(
            query.atoms[0], monoid
        )
        results = _run_all_tiers(query, annotated)
        assert all(
            _results_agree(results["scalar"], value, exact)
            for value in results.values()
        )
        # Single-tuple supports everywhere.
        tiny = _random_annotated(query, monoid, sampler, rng, tuples=1, domain=1)
        results = _run_all_tiers(query, tiny)
        assert all(
            _results_agree(results["scalar"], value, exact)
            for value in results.values()
        )

    def test_array_result_is_native_python_scalar(self, monoid, sampler, exact):
        rng = random.Random(3)
        annotated = _random_annotated(q_eq1(), monoid, sampler, rng)
        plan = compile_plan(q_eq1())
        array_result = execute_plan(
            plan, annotated, kernel_mode="array"
        ).result
        scalar_result = execute_plan(
            plan, annotated, kernel_mode="scalar"
        ).result
        # Native Python carrier scalars, never numpy types.  (The extended
        # int/∞ carriers may legitimately come back 24.0 vs 24 — their
        # declared carrier is float — so exact *type* identity is only
        # required where the scalar tier's type is the declared one.)
        assert not isinstance(array_result, (numpy.generic, numpy.ndarray))
        assert _results_agree(scalar_result, array_result, exact)
        if type(scalar_result) in (bool, int) and not isinstance(
            scalar_result, bool
        ) and isinstance(monoid, (CountingSemiring, MaxTimesSemiring)):
            assert type(array_result) is int
        if isinstance(monoid, BooleanSemiring):
            assert type(array_result) is bool


# ----------------------------------------------------------------------
# Columnar relation operations vs the scalar dict layout
# ----------------------------------------------------------------------
def _columnar_pair(first: KRelation, second: KRelation | None = None):
    from repro.db.annotated import columnar_relation_class

    kernel = array_kernel_for(first.monoid)
    assert kernel is not None
    cls = columnar_relation_class(kernel)
    interner = _ValueInterner()
    left = cls.from_relation(first, kernel, interner)
    if second is None:
        return left
    return left, cls.from_relation(second, kernel, interner)


def _assert_same_relation(monoid, columnar: ColumnarKRelation, expected, exact):
    decoded = columnar.to_krelation()
    assert decoded.support() == expected.support()
    for values, annotation in decoded.items():
        assert _results_agree(
            annotation, expected.annotation(values), exact
        ), (monoid.name, values)


def _mixed_key_relation(atom, monoid, sampler, rng, tuples=25):
    """Random relation over a *mixed* int/str domain (interner generality)."""
    relation = KRelation(atom, monoid)
    domain = [0, 1, 2, "a", "b", ("nested", 1)]
    for _ in range(tuples):
        values = tuple(rng.choice(domain) for _ in range(atom.arity))
        relation.set(values, sampler(rng))
    return relation


@requires_numpy
@pytest.mark.parametrize(
    "monoid,sampler,exact",
    _flat_samplers(),
    ids=lambda value: getattr(value, "name", None),
)
class TestColumnarRelationOps:
    def test_project_out(self, monoid, sampler, exact):
        rng = random.Random(11)
        atom = make_atom("R", ("X", "Y"))
        target = make_atom("R'", ("X",))
        for trial in range(4):
            relation = _mixed_key_relation(atom, monoid, sampler, rng)
            with scalar_kernels():
                expected = relation.project_out("Y", target)
            columnar = _columnar_pair(relation)
            _assert_same_relation(
                monoid, columnar.project_out("Y", target), expected, exact
            )

    def test_merge_with_reordered_variables(self, monoid, sampler, exact):
        rng = random.Random(13)
        first_atom = make_atom("R", ("X", "Y"))
        second_atom = make_atom("S", ("Y", "X"))
        target = make_atom("R'", ("X", "Y"))
        for trial in range(4):
            first = _mixed_key_relation(first_atom, monoid, sampler, rng)
            second = _mixed_key_relation(second_atom, monoid, sampler, rng)
            with scalar_kernels():
                expected = first.merge(second, target)
            left, right = _columnar_pair(first, second)
            _assert_same_relation(
                monoid, left.merge(right, target), expected, exact
            )

    def test_merge_empty_side(self, monoid, sampler, exact):
        rng = random.Random(17)
        first_atom = make_atom("R", ("X",))
        second_atom = make_atom("S", ("X",))
        target = make_atom("R'", ("X",))
        first = _mixed_key_relation(first_atom, monoid, sampler, rng)
        second = KRelation(second_atom, monoid)
        with scalar_kernels():
            expected = first.merge(second, target)
        left, right = _columnar_pair(first, second)
        _assert_same_relation(
            monoid, left.merge(right, target), expected, exact
        )


@requires_numpy
class TestColumnarSpecials:
    def test_absorb_matches_scalar(self):
        monoid = CountingSemiring()
        rng = random.Random(19)
        big_atom = make_atom("R", ("X", "Y"))
        small_atom = make_atom("S", ("X",))
        target = make_atom("R'", ("X", "Y"))
        sampler = lambda r: r.randrange(1, 5)
        big = _mixed_key_relation(big_atom, monoid, sampler, rng)
        small = _mixed_key_relation(small_atom, monoid, sampler, rng)
        with scalar_kernels():
            expected = big.absorb(small, target)
        left, right = _columnar_pair(big, small)
        _assert_same_relation(
            monoid, left.absorb(right, target), expected, True
        )

    def test_merge_drops_tolerance_zero_products(self):
        """An annotation group that ⊗-collapses below the ⊕-identity
        tolerance must vanish from the support in both layouts."""
        monoid = ProbabilityMonoid()
        atom_r = make_atom("R", ("X",))
        atom_s = make_atom("S", ("X",))
        target = make_atom("R'", ("X",))
        first = KRelation(atom_r, monoid, {(1,): 1e-7, (2,): 0.5})
        second = KRelation(atom_s, monoid, {(1,): 1e-7, (2,): 0.5})
        with scalar_kernels():
            expected = first.merge(second, target)
        assert expected.support() == frozenset({(2,)})  # 1e-14 ≤ tol dropped
        left, right = _columnar_pair(first, second)
        _assert_same_relation(
            monoid, left.merge(right, target), expected, False
        )

    def test_grouped_evaluation_decodes_to_krelation(self):
        from repro.core.grouped import evaluate_grouped
        from repro.db.fact import Fact

        query = star_query(2)
        free = [query.atoms[0].variables[0]]
        facts = [
            Fact(atom.relation, (x, y))
            for atom in query.atoms
            for x in range(4)
            for y in range(3)
        ]
        monoid = CountingSemiring()
        array_answer = evaluate_grouped(
            query, free, monoid, facts, lambda f: 1, kernel_mode="array"
        )
        scalar_answer = evaluate_grouped(
            query, free, monoid, facts, lambda f: 1, kernel_mode="scalar"
        )
        assert isinstance(array_answer, KRelation)
        assert array_answer.support() == scalar_answer.support()
        for values, annotation in array_answer.items():
            assert annotation == scalar_answer.annotation(values)


# ----------------------------------------------------------------------
# Non-annihilating union merge on a flat carrier (custom 2-monoid)
# ----------------------------------------------------------------------
class MaxPlusTwoMonoid(TwoMonoid[float]):
    """``(R≥0, ⊕=max, ⊗=+)`` with 0 as both identities.

    ``0 ⊗ 0 = 0`` holds but ``a ⊗ 0 = a ≠ 0``, so this flat-carrier
    structure does **not** annihilate: Rule 2 must walk the support union,
    which is exactly the columnar code path the bundled flat monoids (all
    annihilating) never reach.
    """

    name = "max-plus 2-monoid (non-annihilating)"

    @property
    def zero(self) -> float:
        return 0.0

    @property
    def one(self) -> float:
        return 0.0

    def add(self, left: float, right: float) -> float:
        return max(left, right)

    def mul(self, left: float, right: float) -> float:
        return left + right


class _MaxPlusTwoMonoidArrayKernel(ArrayKernel):
    def __init__(self, monoid, np):
        super().__init__(monoid, np)
        self.dtype = np.float64

    def fold_groups(self, annotations, starts):
        return self.np.maximum.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts + rights


register_array_kernel(MaxPlusTwoMonoid, _MaxPlusTwoMonoidArrayKernel)


@requires_numpy
class TestNonAnnihilatingUnionMerge:
    def test_one_sided_tuples_survive(self):
        monoid = MaxPlusTwoMonoid()
        left_rel = KRelation(
            make_atom("R", ("X",)), monoid, {(1,): 3.0, (2,): 5.0}
        )
        right_rel = KRelation(
            make_atom("S", ("X",)), monoid, {(2,): 7.0, (3,): 2.0}
        )
        target = make_atom("R'", ("X",))
        with scalar_kernels():
            expected = left_rel.merge(right_rel, target)
        assert expected.support() == frozenset({(1,), (2,), (3,)})
        left, right = _columnar_pair(left_rel, right_rel)
        merged = left.merge(right, target)
        _assert_same_relation(monoid, merged, expected, True)
        assert merged.to_krelation().annotation((2,)) == 12.0

    def test_randomized_union_merges(self):
        monoid = MaxPlusTwoMonoid()
        sampler = lambda rng: float(rng.randrange(1, 9))
        rng = random.Random(23)
        first_atom = make_atom("R", ("X", "Y"))
        second_atom = make_atom("S", ("Y", "X"))
        target = make_atom("R'", ("X", "Y"))
        for trial in range(6):
            first = _mixed_key_relation(first_atom, monoid, sampler, rng)
            second = _mixed_key_relation(second_atom, monoid, sampler, rng)
            with scalar_kernels():
                expected = first.merge(second, target)
            left, right = _columnar_pair(first, second)
            _assert_same_relation(
                monoid, left.merge(right, target), expected, True
            )

    def test_end_to_end_tiers_agree(self):
        monoid = MaxPlusTwoMonoid()
        sampler = lambda rng: float(rng.randrange(1, 9))
        rng = random.Random(29)
        for trial in range(3):
            annotated = _random_annotated(
                q_eq1(), monoid, sampler, rng, tuples=30
            )
            results = _run_all_tiers(q_eq1(), annotated)
            assert results["scalar"] == results["batched"] == results["array"]


# ----------------------------------------------------------------------
# Tier selection, fallback and cache invalidation
# ----------------------------------------------------------------------
class TestTierSelection:
    @requires_numpy
    def test_flat_monoids_get_array_kernels(self):
        for monoid, _sampler, _exact in _flat_samplers():
            assert array_kernel_for(monoid) is not None, monoid.name

    @requires_numpy
    def test_exact_carriers_fall_back(self):
        for monoid in (
            ExactProbabilityMonoid(),
            RealSemiring(exact=True),
            CountingMonoid(CountingSemiring()),
        ):
            assert array_kernel_for(monoid) is None, monoid.name

    @requires_numpy
    def test_vector_carriers_get_packed_kernels(self):
        """The bag-set/Shapley monoids run the packed columnar tier (their
        kernels advertise packed rows so the db layer builds
        PackedColumnarKRelation views); instrumentation wrappers still
        decline."""
        from repro.core.kernels import VectorArrayKernel

        for monoid in (ShapleyMonoid(4), BagSetMonoid(4)):
            kernel = array_kernel_for(monoid)
            assert isinstance(kernel, VectorArrayKernel), monoid.name
            assert kernel.packed_rows
        assert array_kernel_for(CountingMonoid(ShapleyMonoid(4))) is None

    @requires_numpy
    def test_scalar_kernels_block_disables_array_tier(self):
        monoid = ProbabilityMonoid()
        assert array_kernel_for(monoid) is not None
        with scalar_kernels():
            assert array_kernel_for(monoid) is None

    def test_invalid_kernel_mode_raises(self):
        query = q_eq1()
        annotated = KDatabase(query, CountingSemiring())
        plan = compile_plan(query)
        with pytest.raises(ReproError, match="kernel mode"):
            execute_plan(plan, annotated, kernel_mode="simd")

    @requires_numpy
    def test_unbounded_int_carriers_stay_exact_on_array_tier(self):
        """Counting/(max,×) columns are object-dtype: values beyond int64
        must neither raise nor silently wrap (the int64 wraparound would
        corrupt answers under the default auto mode with no exception)."""
        for monoid in (CountingSemiring(), MaxTimesSemiring()):
            query = q_eq1()
            annotated = KDatabase(query, monoid)
            for relation in annotated.relations():
                relation.set(
                    tuple(1 for _ in range(relation.atom.arity)), 2**80
                )
            results = _run_all_tiers(query, annotated)
            assert (
                results["scalar"] == results["batched"] == results["array"]
            ), monoid.name
            assert results["array"] == 2**240  # exact big-int product

    @requires_numpy
    def test_products_beyond_int64_agree_across_tiers(self):
        """The reviewer scenario: annotations fit int64 but *products*
        don't — star join of 2^40-annotated tuples must not wrap to 0."""
        query = star_query(2)
        monoid = CountingSemiring()
        annotated = KDatabase(query, monoid)
        for relation in annotated.relations():
            for y in range(3):
                relation.set((1, y), 2**40)
        results = _run_all_tiers(query, annotated)
        assert results["scalar"] == results["batched"] == results["array"]
        assert results["array"] == (3 * 2**40) ** 2

    @requires_numpy
    def test_overflow_error_falls_back_and_is_memoized(self):
        """A kernel whose packing genuinely overflows (fixed int64 dtype)
        must fall back to the batched tier — and the failed materialization
        must not be re-attempted until the database mutates."""

        class Int64Counting(CountingSemiring):
            pass

        class _Int64Kernel(ArrayKernel):
            def __init__(self, monoid, np):
                super().__init__(monoid, np)
                self.dtype = np.int64

            def fold_groups(self, annotations, starts):
                return self.np.add.reduceat(annotations, starts)

            def mul_arrays(self, lefts, rights):
                return lefts * rights

        register_array_kernel(Int64Counting, _Int64Kernel)
        query = q_eq1()
        monoid = Int64Counting()
        annotated = KDatabase(query, monoid)
        for relation in annotated.relations():
            relation.set(
                tuple(1 for _ in range(relation.atom.arity)), 2**80
            )
        plan = compile_plan(query)
        kernel = array_kernel_for(monoid)
        assert isinstance(kernel, _Int64Kernel)
        result = execute_plan(plan, annotated, kernel_mode="array").result
        assert result == 2**240  # batched fallback, exact
        assert annotated.columnar_declined(kernel)
        # Mutation resets the verdict (the database may now fit).
        relation = next(iter(annotated.relations()))
        values = next(iter(relation.support()))
        relation.set(values, 7)
        assert not annotated.columnar_declined(kernel)
        rerun = execute_plan(plan, annotated, kernel_mode="array").result
        assert rerun == execute_plan(
            plan, annotated, kernel_mode="scalar"
        ).result

    @requires_numpy
    def test_mutation_invalidates_columnar_cache(self):
        query = q_eq1()
        monoid = CountingSemiring()
        rng = random.Random(31)
        annotated = _random_annotated(
            query, monoid, lambda r: r.randrange(1, 5), rng
        )
        plan = compile_plan(query)
        first = execute_plan(plan, annotated, kernel_mode="array").result
        info = annotated.columnar_cache_info()
        assert info["relations"] == len(query.atoms)
        # Mutate one fact and re-run: the cached view must be rebuilt.
        relation = next(iter(annotated.relations()))
        values = next(iter(relation.support()))
        relation.set(values, 1000)
        rerun = execute_plan(plan, annotated, kernel_mode="array").result
        expected = execute_plan(plan, annotated, kernel_mode="scalar").result
        assert rerun == expected
        assert isinstance(first, int)  # the pre-mutation run completed

    @requires_numpy
    def test_session_reuses_columnar_views(self):
        from repro.engine import Engine
        from repro.workloads.generators import random_probabilistic_database

        query = star_query(2)
        database = random_probabilistic_database(
            query, facts_per_relation=60, domain_size=12, seed=5
        )
        session = Engine().open(query, probabilistic=database)
        first = session.pqe()
        assert session.stats()["columnar_relations"] == len(query.atoms)
        assert session.pqe() == first


# ----------------------------------------------------------------------
# Packed vector carriers: bag-set / Shapley tier equivalence
# ----------------------------------------------------------------------
def _random_satvector(monoid, rng):
    """An arbitrary (non-spike) carrier element: dodges every fast path."""
    length = monoid.length
    return SatVector(
        tuple(rng.randrange(0, 4) for _ in range(length)),
        tuple(rng.randrange(0, 4) for _ in range(length)),
    )


def _random_bagset_vector(monoid, rng):
    return tuple(sorted(rng.randrange(0, 5) for _ in range(monoid.length)))


def _vector_samplers():
    """(monoid, sampler) pairs covering ψ-spikes and arbitrary vectors."""
    def spiky(monoid):
        def sample(rng):
            choice = rng.random()
            if choice < 0.4:
                return monoid.one
            if choice < 0.75:
                return monoid.star
            if choice < 0.85:
                return monoid.zero
            if isinstance(monoid, ShapleyMonoid):
                return _random_satvector(monoid, rng)
            return _random_bagset_vector(monoid, rng)

        return sample

    return [
        (monoid, spiky(monoid))
        for monoid in (
            BagSetMonoid(1), BagSetMonoid(5),
            ShapleyMonoid(1), ShapleyMonoid(5),
        )
    ]


@requires_numpy
@pytest.mark.parametrize(
    "monoid,sampler",
    _vector_samplers(),
    ids=lambda value: (
        f"{value.name}-{value.length}" if hasattr(value, "length") else None
    ),
)
class TestPackedVectorRelationOps:
    """Packed 2-D relation ops ≡ the scalar dict layout, bit-identically."""

    def test_views_are_packed(self, monoid, sampler):
        from repro.db.annotated import PackedColumnarKRelation

        rng = random.Random(41)
        relation = _mixed_key_relation(
            make_atom("R", ("X", "Y")), monoid, sampler, rng
        )
        view = _columnar_pair(relation)
        assert isinstance(view, PackedColumnarKRelation)
        assert view.packed_width >= 1

    def test_project_out(self, monoid, sampler):
        rng = random.Random(43)
        atom = make_atom("R", ("X", "Y"))
        target = make_atom("R'", ("X",))
        for _trial in range(4):
            relation = _mixed_key_relation(atom, monoid, sampler, rng)
            with scalar_kernels():
                expected = relation.project_out("Y", target)
            columnar = _columnar_pair(relation)
            _assert_same_relation(
                monoid, columnar.project_out("Y", target), expected, True
            )

    def test_merge_with_reordered_variables(self, monoid, sampler):
        """Bag-set merges intersect (annihilating); Shapley merges walk the
        support union — one-sided tuples must get exact ``a ⊗ 0``."""
        rng = random.Random(47)
        first_atom = make_atom("R", ("X", "Y"))
        second_atom = make_atom("S", ("Y", "X"))
        target = make_atom("R'", ("X", "Y"))
        for _trial in range(4):
            first = _mixed_key_relation(first_atom, monoid, sampler, rng)
            second = _mixed_key_relation(second_atom, monoid, sampler, rng)
            with scalar_kernels():
                expected = first.merge(second, target)
            left, right = _columnar_pair(first, second)
            _assert_same_relation(
                monoid, left.merge(right, target), expected, True
            )

    def test_end_to_end_tiers_identical(self, monoid, sampler):
        rng = random.Random(53)
        for query in (q_eq1(), star_query(2)):
            annotated = _random_annotated(
                query, monoid, sampler, rng, tuples=25, domain=5
            )
            results = _run_all_tiers(query, annotated)
            assert (
                results["scalar"] == results["batched"] == results["array"]
            ), monoid.name


@requires_numpy
class TestPackedVectorLargestConfigs:
    """The acceptance workloads: E4/E6 shapes, bit-identical across tiers."""

    def test_e6_shapley_largest_config(self):
        """The full E6 largest configuration (|Dn| = 256): array ≡ batched
        bit-for-bit.  Coefficients reach C(256, k) ≈ 2²⁵⁰, so this
        exercises the int64 → Kronecker exact-fallback leg end to end."""
        from repro.bench.experiments import _split_instance
        from repro.problems.shapley import annotation_psi

        query = star_query(2)
        instance = _split_instance(
            query, exogenous=40, endogenous=256, seed=256
        )
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, annotation_psi(instance, monoid)
        )
        plan = compile_plan(query)
        batched = execute_plan(plan, annotated, kernel_mode="batched").result
        array = execute_plan(plan, annotated, kernel_mode="array").result
        assert array == batched
        assert max(array.true_counts) > 2**63  # the exact leg really ran

    def test_e6_three_tiers_moderate_config(self):
        from repro.bench.experiments import _split_instance
        from repro.problems.shapley import annotation_psi

        query = star_query(2)
        instance = _split_instance(query, exogenous=40, endogenous=64, seed=64)
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, annotation_psi(instance, monoid)
        )
        results = _run_all_tiers(query, annotated)
        assert results["scalar"] == results["batched"] == results["array"]

    def test_e4_bagset_largest_config(self):
        """The full E4 largest configuration (|D| = 1600, θ = 16):
        scalar ≡ batched ≡ array bit-for-bit."""
        from repro.problems.bagset_max import annotation_psi
        from repro.workloads.generators import random_bagset_instance

        query = star_query(2)
        instance = random_bagset_instance(
            query, base_facts_per_relation=800, repair_facts_per_relation=16,
            budget=16, domain_size=400, seed=1600,
        )
        monoid = BagSetMonoid(instance.budget + 1)
        facts = [*instance.database.facts(), *instance.addable_facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, annotation_psi(instance, monoid)
        )
        results = _run_all_tiers(query, annotated)
        assert results["scalar"] == results["batched"] == results["array"]

    def test_bagset_overflowing_multiplicities_stay_exact(self):
        """Products beyond int64 switch the rows to exact object
        arithmetic — never a wrap, never an exception."""
        query = star_query(2)
        monoid = BagSetMonoid(4)
        annotated = KDatabase(query, monoid)
        for relation in annotated.relations():
            for y in range(3):
                relation.set((1, y), monoid.constant(2**40))
        results = _run_all_tiers(query, annotated)
        assert results["scalar"] == results["batched"] == results["array"]
        assert results["array"][0] == (3 * 2**40) ** 2

    def test_shapley_huge_input_coefficients_pack_exactly(self):
        """Annotations already beyond int64 encode as exact object rows
        (the guarded fast path never engages)."""
        query = q_eq1()
        monoid = ShapleyMonoid(3)
        huge = SatVector((2**70, 1, 0), (0, 2**70, 3))
        annotated = KDatabase(query, monoid)
        for relation in annotated.relations():
            relation.set(
                tuple(1 for _ in range(relation.atom.arity)), huge
            )
        kernel = array_kernel_for(monoid)
        packed = kernel.to_array([huge])
        assert packed.dtype == object
        results = _run_all_tiers(query, annotated)
        assert results["scalar"] == results["batched"] == results["array"]

    def test_seeded_packed_views_match_lazy(self):
        """bulk_annotate(columnar=True) seeds packed views equal to the
        lazily materialized ones (the session/pool sharing path)."""
        from repro.bench.experiments import _split_instance
        from repro.db.annotated import PackedColumnarKRelation
        from repro.problems.shapley import annotation_psi

        query = star_query(2)
        instance = _split_instance(query, exogenous=10, endogenous=12, seed=3)
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        psi = annotation_psi(instance, monoid)
        seeded = KDatabase.annotate(query, monoid, facts, psi, columnar=True)
        lazy = KDatabase.annotate(query, monoid, facts, psi)
        assert seeded.columnar_cache_info()["relations"] == len(query.atoms)
        assert lazy.columnar_cache_info()["relations"] == 0
        kernel = array_kernel_for(monoid)
        for atom in query.atoms:
            mine = seeded.columnar_relation(atom.relation, kernel)
            theirs = lazy.columnar_relation(atom.relation, kernel)
            assert isinstance(mine, PackedColumnarKRelation)
            assert (mine.annotations == theirs.annotations).all()
            for own, other in zip(mine.columns, theirs.columns):
                assert (own == other).all()

    def test_session_serves_shapley_from_packed_views(self):
        """An auto-mode session answers sat_vector/shapley_values through
        the packed tier with answers identical to the batched tier."""
        from repro.engine import Engine
        from repro.bench.experiments import _split_instance

        query = star_query(2)
        instance = _split_instance(query, exogenous=12, endogenous=8, seed=21)
        open_session = lambda mode: Engine(kernel_mode=mode).open(
            query,
            exogenous=instance.exogenous,
            endogenous=instance.endogenous,
        )
        packed, batched = open_session("auto"), open_session("batched")
        assert packed.sat_vector() == batched.sat_vector()
        assert packed.shapley_values() == batched.shapley_values()
        assert packed.stats()["columnar_relations"] > 0


# ----------------------------------------------------------------------
# numpy optionality: blocked-import fallback
# ----------------------------------------------------------------------
@pytest.fixture
def blocked_numpy(monkeypatch):
    """Make ``import numpy`` raise and re-run the probe, restoring after."""
    monkeypatch.setitem(sys.modules, "numpy", None)
    kernels_module._reset_numpy_probe()
    try:
        yield
    finally:
        monkeypatch.undo()
        kernels_module._reset_numpy_probe()


class TestNumpyBlocked:
    def test_probe_and_registry_decline(self, blocked_numpy):
        assert numpy_or_none() is None
        assert array_kernel_for(ProbabilityMonoid()) is None

    def test_every_kernel_mode_still_answers(self, blocked_numpy):
        query = q_eq1()
        monoid = ProbabilityMonoid()
        rng = random.Random(37)
        annotated = _random_annotated(
            query, monoid, lambda r: r.random(), rng
        )
        results = _run_all_tiers(query, annotated)
        # "array" silently fell back to the batched tier.
        assert results["array"] == results["batched"]
        assert abs(results["scalar"] - results["array"]) <= 1e-9

    def test_bench_reports_two_tiers(self, blocked_numpy):
        from repro.bench.perf import available_tiers, environment_metadata

        assert available_tiers() == ["scalar", "batched"]
        assert environment_metadata()["numpy"] == "absent"

    def test_vector_carriers_fall_back(self, blocked_numpy):
        """Without numpy the packed tier silently yields to the batched
        kernels for the vector carriers too."""
        assert array_kernel_for(ShapleyMonoid(4)) is None
        assert array_kernel_for(BagSetMonoid(4)) is None
        query = q_eq1()
        monoid = ShapleyMonoid(4)
        annotated = KDatabase(query, monoid)
        rng = random.Random(59)
        for relation in annotated.relations():
            for _ in range(10):
                values = tuple(
                    rng.randrange(0, 3) for _ in range(relation.atom.arity)
                )
                relation.set(
                    values, rng.choice([monoid.one, monoid.star, monoid.zero])
                )
        results = _run_all_tiers(query, annotated)
        assert results["array"] == results["batched"] == results["scalar"]

    def test_engine_session_unaffected(self, blocked_numpy):
        from repro.engine import Engine
        from repro.workloads.generators import random_probabilistic_database

        query = star_query(2)
        database = random_probabilistic_database(
            query, facts_per_relation=30, domain_size=8, seed=9
        )
        session = Engine(kernel_mode="array").open(
            query, probabilistic=database
        )
        probability = session.pqe()
        assert 0.0 <= probability <= 1.0
        assert session.stats()["columnar_relations"] == 0


@pytest.mark.skipif(
    os.environ.get("REPRO_NUMPY_BLOCKED") == "1",
    reason="already inside the numpy-blocked subprocess leg",
)
def test_suite_subset_passes_with_numpy_import_blocked(tmp_path):
    """A pytest subset (kernels + engine + this file) under a blocked numpy
    import: the whole engine must stay green without the array tier."""
    blocker = tmp_path / "numpy.py"
    blocker.write_text(
        'raise ImportError("numpy blocked by '
        'test_suite_subset_passes_with_numpy_import_blocked")\n'
    )
    env = dict(os.environ)
    env["REPRO_NUMPY_BLOCKED"] = "1"
    env["PYTHONPATH"] = os.pathsep.join(
        [str(tmp_path), str(REPO_ROOT / "src")]
    )
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "-p",
            "no:cacheprovider",
            "tests/test_kernels.py",
            "tests/test_array_kernels.py",
            "tests/test_engine.py",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stdout + completed.stderr
