"""Sharded tier ≡ array tier, bit-identically, under any shard count.

The sharded tier (``kernel_mode="sharded"``) partitions the columnar
views by contiguous ranges of the interned root-variable column, runs
Algorithm 1 per shard in a process pool over shared-memory views, and
⊕-folds the per-shard answers once in the parent.  These tests pin the
correctness contract of that decomposition:

* **Shard-count invariance** — for every registered flat *and* packed
  array kernel, the sharded answer under 1/2/3/7 shards equals the array
  tier's answer (bit-identically for exact carriers, within the bench
  tolerance for genuine floats), including empty relations, single-tuple
  supports and the all-rows-one-key skew that leaves most shards empty.
* **Eligibility** — queries without a root variable (present in every
  atom) delegate to the array tier, as do inputs below the
  auto-selection threshold; both delegations are observable in
  :func:`~repro.core.sharded.sharded_stats` and never change answers.
* **The shared worker-count validator** — one helper serves ``--workers``
  and ``--shard-workers`` (and the scheduler), with one error message.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.real import RealSemiring
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import SatVector, ShapleyMonoid
from repro.algebra.tropical import (
    MaxPlusSemiring,
    MaxTimesSemiring,
    MinPlusSemiring,
)
from repro.core.algorithm import execute_plan
from repro.core.kernels import numpy_or_none
from repro.core.plan import compile_plan, shard_root
from repro.core.sharded import (
    MAX_WORKER_COUNT,
    reset_sharded_stats,
    shard_config,
    shard_workers,
    sharded_stats,
    validate_worker_count,
)
from repro.db.annotated import KDatabase
from repro.exceptions import ReproError
from repro.query.atoms import Atom, make_atom
from repro.query.bcq import BCQ
from repro.query.families import q_eq1, star_query
from repro.query.parser import parse_query

numpy = numpy_or_none()
requires_numpy = pytest.mark.skipif(numpy is None, reason="numpy not installed")

SHARD_COUNTS = (1, 2, 3, 7)


# ----------------------------------------------------------------------
# Samplers (mirrors test_array_kernels: exact ⇒ bit-identical)
# ----------------------------------------------------------------------
def _flat_samplers():
    """(monoid, annotation sampler, exact) for every flat array carrier."""
    return [
        (
            ProbabilityMonoid(),
            lambda rng: rng.choice([0.25, 0.5, 1.0, rng.random()]),
            False,
        ),
        (CountingSemiring(), lambda rng: rng.randrange(1, 6), True),
        (RealSemiring(), lambda rng: rng.choice([1.0, rng.random() * 3]), False),
        (BooleanSemiring(), lambda rng: rng.random() < 0.8, True),
        (
            MinPlusSemiring(),
            lambda rng: rng.choice([0, 1, rng.randrange(0, 9)]),
            True,
        ),
        (MaxTimesSemiring(), lambda rng: rng.randrange(1, 6), True),
        (
            MaxPlusSemiring(),
            lambda rng: rng.choice([0, rng.randrange(0, 9)]),
            True,
        ),
        (
            ResilienceMonoid(),
            lambda rng: rng.choice([math.inf, 1, rng.randrange(1, 5)]),
            True,
        ),
    ]


def _random_satvector(monoid, rng):
    length = monoid.length
    return SatVector(
        tuple(rng.randrange(0, 4) for _ in range(length)),
        tuple(rng.randrange(0, 4) for _ in range(length)),
    )


def _random_bagset_vector(monoid, rng):
    return tuple(sorted(rng.randrange(0, 5) for _ in range(monoid.length)))


def _packed_samplers():
    """(monoid, spiky sampler) pairs for both packed vector carriers."""
    def spiky(monoid):
        def sample(rng):
            choice = rng.random()
            if choice < 0.4:
                return monoid.one
            if choice < 0.75:
                return monoid.star
            if choice < 0.85:
                return monoid.zero
            if isinstance(monoid, ShapleyMonoid):
                return _random_satvector(monoid, rng)
            return _random_bagset_vector(monoid, rng)

        return sample

    return [
        (monoid, spiky(monoid))
        for monoid in (
            BagSetMonoid(1), BagSetMonoid(6),
            ShapleyMonoid(1), ShapleyMonoid(6),
        )
    ]


def _results_agree(left, right, exact: bool) -> bool:
    if exact:
        return left == right
    if isinstance(left, float) and isinstance(right, float):
        return left == right or abs(left - right) <= 1e-9
    return left == right


def _random_annotated(query, monoid, sampler, rng, tuples=40, domain=6):
    annotated = KDatabase(query, monoid)
    for relation in annotated.relations():
        for _ in range(tuples):
            values = tuple(
                rng.randrange(0, domain) for _ in range(relation.atom.arity)
            )
            relation.set(values, sampler(rng))
    return annotated


def _array_result(query, annotated):
    plan = compile_plan(query)
    return execute_plan(plan, annotated, kernel_mode="array").result


def _sharded_result(query, annotated, shards):
    plan = compile_plan(query)
    with shard_config(shards=shards, threshold=0):
        return execute_plan(plan, annotated, kernel_mode="sharded").result


def _assert_invariant_under_shard_counts(query, annotated, exact):
    """The core property: sharded ≡ array for every shard count, no fallback."""
    expected = _array_result(query, annotated)
    for shards in SHARD_COUNTS:
        reset_sharded_stats()
        actual = _sharded_result(query, annotated, shards)
        stats = sharded_stats()
        assert stats["dispatches"] == 1, stats
        assert stats["fallbacks"] == 0, stats["last_error"]
        assert _results_agree(actual, expected, exact), (
            f"shards={shards}: {actual!r} != {expected!r}"
        )


# ----------------------------------------------------------------------
# Shard-count invariance: every flat and packed kernel
# ----------------------------------------------------------------------
@requires_numpy
@pytest.mark.parametrize(
    "monoid,sampler,exact",
    _flat_samplers(),
    ids=lambda value: getattr(value, "name", None),
)
class TestFlatShardInvariance:
    def test_star_query(self, monoid, sampler, exact):
        rng = random.Random(11)
        annotated = _random_annotated(star_query(2), monoid, sampler, rng)
        _assert_invariant_under_shard_counts(star_query(2), annotated, exact)

    def test_eq1_query(self, monoid, sampler, exact):
        rng = random.Random(13)
        annotated = _random_annotated(q_eq1(), monoid, sampler, rng)
        _assert_invariant_under_shard_counts(q_eq1(), annotated, exact)

    def test_single_tuple_support(self, monoid, sampler, exact):
        rng = random.Random(17)
        annotated = _random_annotated(
            star_query(2), monoid, sampler, rng, tuples=1, domain=1
        )
        _assert_invariant_under_shard_counts(star_query(2), annotated, exact)

    def test_all_rows_one_key_skew(self, monoid, sampler, exact):
        """Every root code identical: middle shards are empty, one shard
        carries everything — still the array answer, bit-for-bit."""
        rng = random.Random(19)
        query = star_query(2)
        annotated = KDatabase(query, monoid)
        for relation in annotated.relations():
            for suffix in range(24):
                relation.set((0, suffix), sampler(rng))
        _assert_invariant_under_shard_counts(query, annotated, exact)

    def test_empty_relations(self, monoid, sampler, exact):
        annotated = KDatabase(star_query(2), monoid)
        expected = _array_result(star_query(2), annotated)
        for shards in SHARD_COUNTS:
            actual = _sharded_result(star_query(2), annotated, shards)
            assert _results_agree(actual, expected, True)


@requires_numpy
@pytest.mark.parametrize(
    "monoid,sampler",
    _packed_samplers(),
    ids=lambda value: (
        f"{value.name}-{value.length}" if hasattr(value, "length") else None
    ),
)
class TestPackedShardInvariance:
    """The packed 2-D carriers ride the same shared-memory transport."""

    def test_star_query(self, monoid, sampler):
        rng = random.Random(23)
        annotated = _random_annotated(
            star_query(2), monoid, sampler, rng, tuples=24
        )
        _assert_invariant_under_shard_counts(star_query(2), annotated, True)

    def test_all_rows_one_key_skew(self, monoid, sampler):
        rng = random.Random(29)
        query = star_query(2)
        annotated = KDatabase(query, monoid)
        for relation in annotated.relations():
            for suffix in range(16):
                relation.set((0, suffix), sampler(rng))
        _assert_invariant_under_shard_counts(query, annotated, True)


# ----------------------------------------------------------------------
# Eligibility: root discovery and the delegation paths
# ----------------------------------------------------------------------
class TestShardRoot:
    def test_star_and_eq1_roots(self):
        assert shard_root(star_query(2)) == "X"
        assert shard_root(q_eq1()) == "A"

    def test_disconnected_query_has_no_root(self):
        assert shard_root(parse_query("Q() :- R(X), S(Y)")) is None

    def test_nullary_atom_has_no_root(self):
        query = BCQ((make_atom("R", ("X",)), Atom("S", ())))
        assert shard_root(query) is None

    def test_tie_breaks_on_first_atom_order(self):
        query = parse_query("Q() :- R(X,Y), S(Y,X)")
        assert shard_root(query) == "X"


@requires_numpy
class TestDelegation:
    def test_rootless_query_delegates_to_array(self):
        query = parse_query("Q() :- R(X), S(Y)")
        monoid = CountingSemiring()
        annotated = KDatabase(query, monoid)
        rng = random.Random(31)
        for relation in annotated.relations():
            for _ in range(8):
                relation.set((rng.randrange(0, 4),), rng.randrange(1, 4))
        expected = _array_result(query, annotated)
        reset_sharded_stats()
        actual = _sharded_result(query, annotated, 2)
        assert actual == expected
        assert sharded_stats()["delegated_root"] == 1

    def test_small_inputs_delegate_below_threshold(self):
        monoid = CountingSemiring()
        rng = random.Random(37)
        annotated = _random_annotated(star_query(2), monoid, lambda r: 1, rng)
        expected = _array_result(star_query(2), annotated)
        plan = compile_plan(star_query(2))
        reset_sharded_stats()
        with shard_config(shards=2, threshold=10**9):
            actual = execute_plan(
                plan, annotated, kernel_mode="sharded"
            ).result
        assert actual == expected
        assert sharded_stats()["delegated_threshold"] == 1
        assert sharded_stats()["shards_run"] == 0


# ----------------------------------------------------------------------
# The shared worker-count validator (--workers / --shard-workers)
# ----------------------------------------------------------------------
class TestValidateWorkerCount:
    def test_accepts_the_valid_range(self):
        for value in (1, 4, MAX_WORKER_COUNT):
            assert validate_worker_count(value) == value

    @pytest.mark.parametrize(
        "value", [0, -1, MAX_WORKER_COUNT + 1, True, False, "4", 2.5, None]
    )
    def test_rejects_everything_else(self, value):
        with pytest.raises(ReproError, match="worker count"):
            validate_worker_count(value)

    def test_message_names_the_surface(self):
        with pytest.raises(ReproError, match="shard worker count"):
            validate_worker_count(0, what="shard worker")

    def test_scheduler_and_serve_share_the_helper(self):
        from repro.serve.admission import (
            validate_worker_count as admission_validate,
        )
        from repro.serve.scheduler import (
            validate_worker_count as scheduler_validate,
        )

        assert admission_validate is validate_worker_count
        assert scheduler_validate is validate_worker_count

    def test_scheduler_rejects_bad_shard_workers(self):
        from repro.serve.scheduler import Scheduler

        with pytest.raises(ReproError, match="worker count"):
            Scheduler(workers=0)


class TestShardConfig:
    def test_overrides_are_scoped(self):
        before = shard_workers()
        with shard_config(workers=3, shards=5, threshold=7):
            assert shard_workers() == 3
            stats = sharded_stats()
            assert stats["workers"] == 3
            assert stats["threshold"] == 7
        assert shard_workers() == before

    def test_rejects_invalid_workers(self):
        with pytest.raises(ReproError, match="worker count"):
            with shard_config(workers=0):
                pass


# ----------------------------------------------------------------------
# Engine-level integration: kernel_mode="sharded" end to end
# ----------------------------------------------------------------------
@requires_numpy
class TestEngineSharded:
    def test_session_pqe_matches_array_engine(self):
        from repro.engine import Engine
        from repro.workloads.generators import random_probabilistic_database

        query = star_query(2)
        database = random_probabilistic_database(
            query, facts_per_relation=60, domain_size=12, seed=41
        )
        with shard_config(shards=3, threshold=0):
            sharded_answer = (
                Engine(kernel_mode="sharded")
                .open(query, probabilistic=database)
                .pqe()
            )
        array_answer = (
            Engine(kernel_mode="array")
            .open(query, probabilistic=database)
            .pqe()
        )
        assert _results_agree(sharded_answer, array_answer, False)

    def test_engine_accepts_the_mode(self):
        from repro.engine import Engine

        assert Engine(kernel_mode="sharded").kernel_mode == "sharded"
