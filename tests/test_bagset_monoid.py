"""Tests for the bag-set maximization 2-monoid (Definition 5.9)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bagset import BagSetMonoid, is_monotone
from repro.algebra.laws import (
    check_two_monoid_laws,
    find_annihilation_violation,
    find_distributivity_violation,
)
from repro.exceptions import AlgebraError

from conftest import monotone_vectors


class TestDistinguishedElements:
    def test_zero_one_star(self):
        monoid = BagSetMonoid(4)
        assert monoid.zero == (0, 0, 0, 0)
        assert monoid.one == (1, 1, 1, 1)
        assert monoid.star == (0, 1, 1, 1)

    def test_star_length_one(self):
        assert BagSetMonoid(1).star == (0,)

    def test_budget(self):
        assert BagSetMonoid(4).budget == 3

    def test_invalid_length(self):
        with pytest.raises(AlgebraError):
            BagSetMonoid(0)


class TestConvolutions:
    def test_add_is_max_plus_convolution(self):
        monoid = BagSetMonoid(3)
        # (0,1,1) ⊕ (0,1,1): best multiplicity at budget 2 = 1 + 1.
        assert monoid.add(monoid.star, monoid.star) == (0, 1, 2)

    def test_mul_is_max_times_convolution(self):
        monoid = BagSetMonoid(3)
        # (0,1,1) ⊗ (0,1,1): both need one unit each → first product at i=2.
        assert monoid.mul(monoid.star, monoid.star) == (0, 0, 1)

    def test_paper_semantics_of_star_and_one(self):
        """1 ⊗ ★: a present fact joined with a repairable one costs 1."""
        monoid = BagSetMonoid(3)
        assert monoid.mul(monoid.one, monoid.star) == (0, 1, 1)
        assert monoid.add(monoid.one, monoid.star) == (1, 2, 2)

    def test_identity_laws_need_monotonicity(self):
        monoid = BagSetMonoid(3)
        x = (0, 2, 5)
        assert monoid.add(x, monoid.zero) == x
        assert monoid.mul(x, monoid.one) == x

    def test_add_example_by_hand(self):
        monoid = BagSetMonoid(4)
        x = (1, 3, 3, 3)
        y = (0, 2, 2, 2)
        # i=0: 1+0; i=1: max(1+2, 3+0)=3; i=2: max(1+2,3+2,3+0)=5; i=3: 5.
        assert monoid.add(x, y) == (1, 3, 5, 5)

    def test_mul_example_by_hand(self):
        monoid = BagSetMonoid(3)
        x = (1, 2, 2)
        y = (1, 3, 3)
        # i=0: 1; i=1: max(1·3, 2·1)=3; i=2: max(1·3, 2·3, 2·1)=6.
        assert monoid.mul(x, y) == (1, 3, 6)

    def test_length_mismatch_rejected(self):
        monoid = BagSetMonoid(3)
        with pytest.raises(AlgebraError):
            monoid.add((0, 0), (0, 0, 0))


class TestCarrier:
    def test_is_monotone(self):
        assert is_monotone((0, 1, 1, 5))
        assert not is_monotone((1, 0))
        assert is_monotone(())
        assert is_monotone((3,))

    def test_validate(self):
        monoid = BagSetMonoid(3)
        assert monoid.validate([0, 1, 2]) == (0, 1, 2)
        with pytest.raises(AlgebraError):
            monoid.validate((2, 1, 0))
        with pytest.raises(AlgebraError):
            monoid.validate((-1, 0, 0))
        with pytest.raises(AlgebraError):
            monoid.validate((0, 1))

    def test_truncate_shortens(self):
        monoid = BagSetMonoid(2)
        assert monoid.truncate((0, 1, 2, 3)) == (0, 1)

    def test_truncate_extends_monotonically(self):
        monoid = BagSetMonoid(4)
        assert monoid.truncate((0, 2)) == (0, 2, 2, 2)
        assert monoid.truncate(()) == (0, 0, 0, 0)


class TestLaws:
    @given(
        x=monotone_vectors(4), y=monotone_vectors(4), z=monotone_vectors(4)
    )
    @settings(max_examples=150, deadline=None)
    def test_axioms_hold(self, x, y, z):
        monoid = BagSetMonoid(4)
        assert monoid.add(x, y) == monoid.add(y, x)
        assert monoid.mul(x, y) == monoid.mul(y, x)
        assert monoid.add(monoid.add(x, y), z) == monoid.add(x, monoid.add(y, z))
        assert monoid.mul(monoid.mul(x, y), z) == monoid.mul(x, monoid.mul(y, z))
        assert monoid.add(x, monoid.zero) == x
        assert monoid.mul(x, monoid.one) == x

    @given(x=monotone_vectors(4), y=monotone_vectors(4))
    @settings(max_examples=150, deadline=None)
    def test_operations_preserve_monotonicity(self, x, y):
        monoid = BagSetMonoid(4)
        assert is_monotone(monoid.add(x, y))
        assert is_monotone(monoid.mul(x, y))

    def test_law_census(self):
        monoid = BagSetMonoid(3)
        samples = [monoid.zero, monoid.one, monoid.star, (0, 1, 2), (1, 2, 4)]
        assert check_two_monoid_laws(monoid, samples) == []

    def test_not_distributive(self):
        monoid = BagSetMonoid(3)
        samples = [monoid.zero, monoid.one, monoid.star, (0, 1, 2)]
        assert find_distributivity_violation(monoid, samples) is not None

    def test_explicit_distributivity_counterexample(self):
        monoid = BagSetMonoid(3)
        a, b, c = monoid.star, monoid.one, monoid.one
        left = monoid.mul(a, monoid.add(b, c))
        right = monoid.add(monoid.mul(a, b), monoid.mul(a, c))
        assert left == (0, 2, 2)
        assert right == (0, 1, 2)
        assert left != right

    def test_annihilation_holds(self):
        """(max, ×)-convolution with all-zeros gives all-zeros."""
        monoid = BagSetMonoid(3)
        samples = [monoid.one, monoid.star, (2, 5, 9)]
        assert find_annihilation_violation(monoid, samples) is None
        assert monoid.annihilates
