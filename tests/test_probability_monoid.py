"""Tests for the probability 2-monoid (Definition 5.7)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.laws import (
    check_two_monoid_laws,
    find_distributivity_violation,
)
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.exceptions import AlgebraError

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestOperations:
    def test_mul_is_product(self):
        monoid = ProbabilityMonoid()
        assert monoid.mul(0.5, 0.5) == 0.25

    def test_add_is_disjunction(self):
        monoid = ProbabilityMonoid()
        assert monoid.add(0.5, 0.5) == pytest.approx(0.75)
        assert monoid.add(0.3, 0.4) == pytest.approx(0.3 + 0.4 - 0.12)

    def test_identities(self):
        monoid = ProbabilityMonoid()
        assert monoid.zero == 0.0
        assert monoid.one == 1.0
        assert monoid.add(0.7, monoid.zero) == pytest.approx(0.7)
        assert monoid.mul(0.7, monoid.one) == pytest.approx(0.7)

    def test_add_saturates_at_one(self):
        monoid = ProbabilityMonoid()
        assert monoid.add(1.0, 0.4) == pytest.approx(1.0)

    def test_annihilates(self):
        assert ProbabilityMonoid().annihilates

    def test_validate(self):
        monoid = ProbabilityMonoid()
        assert monoid.validate(0.5) == 0.5
        with pytest.raises(AlgebraError):
            monoid.validate(1.5)
        with pytest.raises(AlgebraError):
            monoid.validate(-0.1)


class TestLaws:
    @given(
        a=probabilities, b=probabilities, c=probabilities
    )
    @settings(max_examples=200)
    def test_axioms_hold_pointwise(self, a, b, c):
        monoid = ProbabilityMonoid(tolerance=1e-9)
        assert monoid.eq(monoid.add(a, b), monoid.add(b, a))
        assert monoid.eq(monoid.mul(a, b), monoid.mul(b, a))
        assert monoid.eq(
            monoid.add(monoid.add(a, b), c), monoid.add(a, monoid.add(b, c))
        )
        assert monoid.eq(
            monoid.mul(monoid.mul(a, b), c), monoid.mul(a, monoid.mul(b, c))
        )

    def test_law_census(self):
        monoid = ProbabilityMonoid(tolerance=1e-9)
        samples = [0.0, 0.25, 0.5, 0.75, 1.0]
        assert check_two_monoid_laws(monoid, samples) == []

    def test_not_distributive(self):
        """The paper's point: ⊗ does not distribute over ⊕ (Section 2)."""
        monoid = ProbabilityMonoid()
        violation = find_distributivity_violation(
            monoid, [0.3, 0.5, 0.9]
        )
        assert violation is not None

    def test_explicit_distributivity_counterexample(self):
        monoid = ProbabilityMonoid()
        left = monoid.mul(0.5, monoid.add(0.5, 0.5))      # 0.5 · 0.75
        right = monoid.add(monoid.mul(0.5, 0.5), monoid.mul(0.5, 0.5))
        assert left == pytest.approx(0.375)
        assert right == pytest.approx(0.4375)
        assert left != pytest.approx(right)


class TestExactMonoid:
    def test_exact_arithmetic(self):
        monoid = ExactProbabilityMonoid()
        half = Fraction(1, 2)
        assert monoid.add(half, half) == Fraction(3, 4)
        assert monoid.mul(half, half) == Fraction(1, 4)
        assert monoid.zero == Fraction(0)
        assert monoid.one == Fraction(1)

    def test_validate_rejects_floats(self):
        with pytest.raises(AlgebraError):
            ExactProbabilityMonoid().validate(0.5)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(AlgebraError):
            ExactProbabilityMonoid().validate(Fraction(3, 2))

    def test_exact_equality(self):
        monoid = ExactProbabilityMonoid()
        assert monoid.eq(Fraction(1, 3), Fraction(1, 3))
        assert not monoid.eq(Fraction(1, 3), Fraction(1, 3) + Fraction(1, 10**9))

    def test_folds(self):
        monoid = ExactProbabilityMonoid()
        values = [Fraction(1, 2), Fraction(1, 2), Fraction(1, 2)]
        assert monoid.add_fold(values) == Fraction(7, 8)
        assert monoid.mul_fold(values) == Fraction(1, 8)
        assert monoid.add_fold([]) == monoid.zero
        assert monoid.mul_fold([]) == monoid.one
