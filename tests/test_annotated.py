"""Tests for K-annotated relations and databases."""

import pytest

from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.db.annotated import KDatabase, KRelation
from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import AlgebraError, SchemaError
from repro.query.atoms import Atom
from repro.query.bcq import make_query
from repro.query.families import q_eq1


class TestKRelation:
    def test_absent_tuples_are_zero(self):
        rel = KRelation(Atom("R", ("A",)), CountingSemiring())
        assert rel.annotation((99,)) == 0
        assert len(rel) == 0

    def test_zero_annotations_dropped(self):
        rel = KRelation(Atom("R", ("A",)), CountingSemiring())
        rel.set((1,), 5)
        rel.set((1,), 0)
        assert len(rel) == 0
        assert (1,) not in rel.support()

    def test_arity_checked(self):
        rel = KRelation(Atom("R", ("A", "B")), CountingSemiring())
        with pytest.raises(SchemaError):
            rel.set((1,), 3)

    def test_project_out_folds_with_add(self):
        rel = KRelation(
            Atom("R", ("A", "B")), CountingSemiring(),
            {(1, 10): 2, (1, 11): 3, (2, 10): 7},
        )
        projected = rel.project_out("B", Atom("R'", ("A",)))
        assert projected.annotation((1,)) == 5
        assert projected.annotation((2,)) == 7
        assert len(projected) == 2

    def test_project_out_to_nullary(self):
        rel = KRelation(Atom("R", ("A",)), CountingSemiring(), {(1,): 2, (2,): 3})
        projected = rel.project_out("A", Atom("R'", ()))
        assert projected.annotation(()) == 5

    def test_project_out_empty_support(self):
        rel = KRelation(Atom("R", ("A",)), CountingSemiring())
        projected = rel.project_out("A", Atom("R'", ()))
        assert projected.annotation(()) == 0

    def test_project_out_missing_variable(self):
        rel = KRelation(Atom("R", ("A",)), CountingSemiring())
        with pytest.raises(AlgebraError):
            rel.project_out("Z", Atom("R'", ()))

    def test_merge_intersection_for_annihilating_monoid(self):
        monoid = CountingSemiring()
        left = KRelation(Atom("R1", ("A",)), monoid, {(1,): 2, (2,): 3})
        right = KRelation(Atom("R2", ("A",)), monoid, {(2,): 5, (3,): 7})
        merged = left.merge(right, Atom("R'", ("A",)))
        assert merged.annotation((2,)) == 15
        assert merged.annotation((1,)) == 0
        assert merged.annotation((3,)) == 0
        assert merged.support() == frozenset({(2,)})

    def test_merge_union_for_non_annihilating_monoid(self):
        """The Shapley monoid has a ⊗ 0 ≠ 0: one-sided tuples must survive."""
        monoid = ShapleyMonoid(2)
        left = KRelation(Atom("R1", ("A",)), monoid, {(1,): monoid.star})
        right = KRelation(Atom("R2", ("A",)), monoid, {(2,): monoid.star})
        merged = left.merge(right, Atom("R'", ("A",)))
        expected = monoid.mul(monoid.star, monoid.zero)
        assert merged.annotation((1,)) == expected
        assert merged.annotation((2,)) == expected
        assert not monoid.is_zero(merged.annotation((1,)))

    def test_merge_aligns_different_variable_orders(self):
        monoid = CountingSemiring()
        left = KRelation(Atom("R1", ("A", "B")), monoid, {(1, 2): 3})
        right = KRelation(Atom("R2", ("B", "A")), monoid, {(2, 1): 5})
        merged = left.merge(right, Atom("R'", ("A", "B")))
        assert merged.annotation((1, 2)) == 15

    def test_merge_different_variable_sets_rejected(self):
        monoid = CountingSemiring()
        left = KRelation(Atom("R1", ("A",)), monoid)
        right = KRelation(Atom("R2", ("B",)), monoid)
        with pytest.raises(AlgebraError):
            left.merge(right, Atom("R'", ("A",)))

    def test_merge_different_monoids_rejected(self):
        left = KRelation(Atom("R1", ("A",)), CountingSemiring())
        right = KRelation(Atom("R2", ("A",)), ProbabilityMonoid())
        with pytest.raises(AlgebraError):
            left.merge(right, Atom("R'", ("A",)))

    def test_float_zero_tolerance(self):
        monoid = ProbabilityMonoid()
        rel = KRelation(Atom("R", ("A",)), monoid)
        rel.set((1,), 1e-15)
        assert len(rel) == 0, "within-tolerance values count as zero"


class TestKDatabase:
    def test_from_database_defaults_to_one(self):
        db = Database.from_relations({"R": [(1, 5)], "S": [(1, 1)], "T": []})
        annotated = KDatabase.from_database(q_eq1(), CountingSemiring(), db)
        assert annotated.annotation(Fact("R", (1, 5))) == 1
        assert annotated.annotation(Fact("S", (9, 9))) == 0
        assert annotated.size() == 2

    def test_annotate_with_function(self):
        facts = [Fact("R", (1, 5)), Fact("S", (1, 1))]
        annotated = KDatabase.annotate(
            q_eq1(), CountingSemiring(), facts, lambda f: f.values[0] + 1
        )
        assert annotated.annotation(Fact("R", (1, 5))) == 2

    def test_unknown_relation_raises(self):
        annotated = KDatabase(q_eq1(), CountingSemiring())
        with pytest.raises(SchemaError):
            annotated.set(Fact("Nope", (1,)), 1)

    def test_non_sjf_query_rejected(self):
        q = make_query([("R", "A"), ("R", "B")])
        with pytest.raises(Exception):
            KDatabase(q, CountingSemiring())

    def test_size_counts_support_only(self):
        annotated = KDatabase(q_eq1(), CountingSemiring())
        annotated.set(Fact("R", (1, 5)), 3)
        annotated.set(Fact("S", (1, 1)), 0)
        assert annotated.size() == 1
