"""The asyncio HTTP front-end and the scrape-under-load invariant.

Endpoint tests drive a live :class:`repro.serve.http.HttpFrontend` over
a real :class:`~repro.serve.server.Server` with stdlib ``urllib`` —
query/stream semantics, error mapping, Prometheus exposition — and the
Satellite chaos test runs an 8-worker fault-injected workload while a
concurrent scraper hammers ``GET /metrics``, asserting the three
serving-stack observability invariants: answers stay bit-identical,
scrapes stay fast, counters stay monotone.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from fractions import Fraction

import pytest

from repro import Fact, ProbabilisticDatabase, Request, Server, parse_query
from repro.db.database import Database
from repro.engine import Engine
from repro.engine.session import REQUEST_FAMILIES
from repro.exceptions import (
    DeadlineExceeded,
    QueueFullError,
    TransientError,
)
from repro.obs import parse_exposition
from repro.query.families import star_query
from repro.serve import FaultInjector, RetryPolicy
from repro.serve.http import HttpFrontend, decode_body, encode_value
from repro.workloads.generators import random_probabilistic_database


def _get(url: str):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, response.read().decode("utf-8")


def _post(url: str, payload) -> tuple[int, str]:
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


@pytest.fixture(scope="module")
def frontend():
    """One live HTTP front-end over a small probabilistic workload."""
    query = parse_query("Q() :- R(X), S(X)")
    pdb = ProbabilisticDatabase({
        **{Fact("R", (i,)): Fraction(1, 2) for i in range(3)},
        **{Fact("S", (i,)): Fraction(1, 3) for i in range(3)},
    })
    with Server(query, probabilistic=pdb, workers=2) as server:
        with HttpFrontend(server).start() as frontend:
            yield frontend


class TestEncodeValue:
    def test_fractions_become_exact_strings(self):
        assert encode_value(Fraction(1, 3)) == "1/3"

    def test_infinity_becomes_a_string(self):
        assert encode_value(float("inf")) == "inf"

    def test_fact_keyed_mappings(self):
        fact = Fact("R", (1, 2))
        encoded = encode_value({fact: Fraction(1, 2)})
        assert encoded == {str(fact): "1/2"}

    def test_tuples_encode_elementwise(self):
        assert encode_value((0, 3, Fraction(1, 2))) == [0, 3, "1/2"]

    def test_plain_scalars_pass_through(self):
        assert encode_value(0.25) == 0.25
        assert encode_value(7) == 7
        assert encode_value(True) is True
        assert encode_value(None) is None


class TestDecodeBody:
    def test_single_request_object(self):
        requests = decode_body(b'{"family": "pqe", "exact": true}')
        assert [str(r) for r in requests] == ["pqe(exact=True)"]

    def test_batch_with_bindings_sweep(self):
        requests = decode_body(json.dumps({
            "requests": [{"family": "pqe", "bindings": [{"X": 1}, {"X": 2}]}]
        }).encode())
        assert len(requests) == 2

    def test_rejects_non_object_bodies(self):
        from repro.exceptions import SchemaError

        with pytest.raises(SchemaError):
            decode_body(b"[1, 2]")
        with pytest.raises(SchemaError):
            decode_body(b"not json")
        with pytest.raises(SchemaError):
            decode_body(b'{"requests": []}')

    def test_rejects_unhashable_parameters(self):
        from repro.exceptions import SchemaError

        body = json.dumps(
            {"family": "pqe", "bindings": [{"fact": ["R", [0]]}]}
        ).encode()
        with pytest.raises(SchemaError):
            decode_body(body)


class TestHealthz:
    def test_healthy_server_answers_ok(self, frontend):
        status, body = _get(frontend.url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["ok"] is True
        assert health["workers"] == 2
        assert health["breaker_open"] == 0


class TestMetricsEndpoint:
    def test_exposition_is_parseable_and_complete(self, frontend):
        # Serve something first so request counters exist.
        _post(frontend.url + "/v1/query", {"family": "pqe"})
        status, text = _get(frontend.url + "/metrics")
        assert status == 200
        parsed = parse_exposition(text)
        names = {name for name, _labels in parsed}
        for required in (
            "repro_requests_total",
            "repro_request_latency_seconds_bucket",
            "repro_request_latency_seconds_count",
            "repro_scheduler_events_total",
            "repro_memo_hits_total",
            "repro_memo_misses_total",
            "repro_queue_depth",
            "repro_pending_flights",
            "repro_scheduler_workers",
            "repro_plan_cache_hits",
            "repro_tier_executions_total",
        ):
            assert required in names, f"missing family {required}"

    def test_help_and_type_headers_present(self, frontend):
        _status, text = _get(frontend.url + "/metrics")
        assert "# HELP repro_requests_total" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_request_latency_seconds histogram" in text


class TestQueryEndpoint:
    def test_single_request(self, frontend):
        status, body = _post(
            frontend.url + "/v1/query", {"family": "pqe", "exact": True}
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["failed"] == 0
        assert payload["results"][0]["value"] == "91/216"

    def test_batch_keeps_input_order(self, frontend):
        status, body = _post(frontend.url + "/v1/query", {"requests": [
            {"family": "expected_count", "exact": True},
            {"family": "pqe", "exact": True},
        ]})
        assert status == 200
        results = json.loads(body)["results"]
        assert [r["request"] for r in results] == [
            "expected_count(exact=True)", "pqe(exact=True)",
        ]

    def test_failed_requests_ride_in_slot(self, frontend):
        # sat_counts needs an endogenous database this server lacks.
        status, body = _post(frontend.url + "/v1/query", {"requests": [
            {"family": "pqe", "exact": True},
            {"family": "sat_counts"},
        ]})
        assert status == 200
        payload = json.loads(body)
        assert payload["failed"] == 1
        assert "value" in payload["results"][0]
        assert payload["results"][1]["error"]["type"] == "ReproError"

    def test_bad_json_is_400(self, frontend):
        request = urllib.request.Request(
            frontend.url + "/v1/query", data=b"{nope"
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request, timeout=30)
        assert caught.value.code == 400

    def test_unknown_family_is_400(self, frontend):
        status, body = _post(frontend.url + "/v1/query", {"family": "nope"})
        assert status == 400
        assert "unknown request family" in json.loads(body)["error"]["message"]

    def test_unknown_route_is_404(self, frontend):
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(frontend.url + "/nothing", timeout=30)
        assert caught.value.code == 404


class TestStreamEndpoint:
    def test_ndjson_lines_cover_every_request(self, frontend):
        status, body = _post(frontend.url + "/v1/stream", {"requests": [
            {"family": "pqe", "exact": True},
            {"family": "expected_count", "exact": True},
            {"family": "pqe", "bindings": [{"X": 0}, {"X": 1}]},
        ]})
        assert status == 200
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert sorted(entry["index"] for entry in lines) == [0, 1, 2, 3]
        by_index = {entry["index"]: entry for entry in lines}
        assert by_index[0]["value"] == "91/216"
        assert by_index[0]["request"] == "pqe(exact=True)"


class TestLifecycle:
    def test_double_start_raises(self, frontend):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            frontend.start()

    def test_bind_failure_surfaces(self):
        query = parse_query("Q() :- R(X)")
        pdb = ProbabilisticDatabase({Fact("R", (1,)): Fraction(1, 2)})
        with Server(query, probabilistic=pdb, workers=1) as server:
            with pytest.raises(OSError):
                HttpFrontend(server, host="256.1.1.1", port=1).start()


# ----------------------------------------------------------------------
# Satellite: the scrape-under-load chaos invariant
# ----------------------------------------------------------------------
class TestScrapeUnderLoad:
    """8 workers + fault injection + a concurrent /metrics scraper."""

    _ALLOWED = (DeadlineExceeded, TransientError, QueueFullError)

    #: Sample names that must be monotone between consecutive scrapes:
    #: counters, histogram buckets and their count/sum series.
    _MONOTONE_SUFFIXES = ("_total", "_bucket", "_count", "_sum")

    def _workload(self, size: int = 90, endo: int = 4, seed: int = 11):
        query = star_query(2)
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=seed,
        )
        facts = list(database.support_database().facts())
        random.Random(seed).shuffle(facts)
        data = {
            "probabilistic": database,
            "exogenous": Database(facts[endo:]),
            "endogenous": Database(facts[:endo]),
        }
        return query, data

    def _stream(self, data, rounds: int) -> list[Request]:
        endo = list(data["endogenous"].facts())
        requests = []
        for index in range(rounds):
            requests.extend([
                Request.make("pqe"),
                Request.make("expected_count"),
                Request.make("sat_counts"),
                Request.make("resilience"),
                Request.make("shapley_value", fact=endo[index % len(endo)]),
                Request.make("pqe", exact=True),
            ])
        return requests

    def test_bit_identical_answers_fast_scrapes_monotone_counters(self):
        query, data = self._workload()
        requests = self._stream(data, rounds=4)
        unique = {request.signature: request for request in requests}
        serial = {}
        for signature, request in unique.items():
            session = Engine(kernel_mode="auto").open(query, **data)
            handler = REQUEST_FAMILIES[request.family]
            serial[signature] = handler(session, **request.kwargs)

        faults = FaultInjector(
            seed=11,
            kernel_failure_rate=0.15,
            slow_rate=0.10,
            slow_seconds=0.001,
        )
        scrapes: list[dict] = []
        latencies: list[float] = []
        errors: list[BaseException] = []
        stop = threading.Event()

        with Server(
            query,
            engine=Engine(kernel_mode="auto"),
            workers=8,
            retry=RetryPolicy(max_retries=2, base_delay=0.001),
            faults=faults,
            **data,
        ) as server:
            with HttpFrontend(server).start() as frontend:
                url = frontend.url + "/metrics"

                def scrape_loop():
                    try:
                        while not stop.is_set():
                            started = time.perf_counter()
                            _status, text = _get(url)
                            latencies.append(
                                time.perf_counter() - started
                            )
                            scrapes.append(parse_exposition(text))
                    except BaseException as error:  # surface in main thread
                        errors.append(error)

                scraper = threading.Thread(target=scrape_loop, daemon=True)
                scraper.start()
                futures = [
                    (request, server.submit(request))
                    for request in requests
                ]
                for request, future in futures:
                    try:
                        value = future.result(60)
                    except self._ALLOWED:
                        pass
                    else:
                        assert value == serial[request.signature], (
                            f"corrupted answer for {request}"
                        )
                # One final scrape with the workload fully drained.
                _status, text = _get(url)
                scrapes.append(parse_exposition(text))
                stop.set()
                scraper.join(timeout=30)

        assert not errors, f"scraper failed: {errors[0]!r}"
        assert len(scrapes) >= 2
        # Every scrape answered promptly even while 8 workers were busy.
        assert max(latencies, default=0.0) < 5.0
        # Counter-style series never move backwards between scrapes.
        for earlier, later in zip(scrapes, scrapes[1:]):
            for key, value in earlier.items():
                name, _labels = key
                if not name.endswith(self._MONOTONE_SUFFIXES):
                    continue
                if key in later:
                    assert later[key] >= value, (
                        f"counter went backwards: {key}"
                    )
        # The drained exposition accounts for every submitted request.
        final = scrapes[-1]
        served = sum(
            value for (name, _labels), value in final.items()
            if name == "repro_requests_total"
        )
        assert served >= len(requests)
