"""Chaos suite: the serving stack under seeded fault injection.

The headline invariant, asserted under every kernel tier and a mix of
injected kernel failures, worker deaths, slow executions and expired
deadlines: **every submitted future resolves** (no request is ever
stranded), and every future that resolves with a value is **bit-identical**
to serial one-shot evaluation.  Failures may only be the declared
robustness errors (DeadlineExceeded, TransientError, QueueFullError,
CircuitOpenError) — never a stuck future or a corrupted answer.

The injection seed comes from ``REPRO_FAULT_SEED`` (CI runs two fixed
seeds), defaulting to 11.  Single-knob tests pin exact injection counts
via the plan's ``max_*`` caps, so they are deterministic regardless of
thread interleaving; the mixed chaos test asserts invariants only.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.db.database import Database
from repro.engine import Engine
from repro.engine.session import (
    REQUEST_FAMILIES,
    ResultMemo,
    register_request_family,
)
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    QueueFullError,
    RateLimitedError,
    ReproError,
    TransientError,
)
from repro.query.families import star_query
from repro.serve import (
    AdmissionControl,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    Request,
    RetryPolicy,
    Scheduler,
    Server,
    TokenBucket,
    WorkerKilled,
    request_from_dict,
)
from repro.workloads.generators import random_probabilistic_database

SEED = int(os.environ.get("REPRO_FAULT_SEED", "11"))


def _workload(size: int = 90, endo: int = 5, seed: int = 11):
    query = star_query(2)
    database = random_probabilistic_database(
        query, facts_per_relation=size // 3,
        domain_size=max(4, size // 6), seed=seed,
    )
    facts = list(database.support_database().facts())
    random.Random(seed).shuffle(facts)
    data = {
        "probabilistic": database,
        "exogenous": Database(facts[endo:]),
        "endogenous": Database(facts[:endo]),
    }
    return query, data


def _serial_answers(query, data, requests, kernel_mode="auto"):
    answers = []
    for request in requests:
        session = Engine(kernel_mode=kernel_mode).open(query, **data)
        handler = REQUEST_FAMILIES[request.family]
        answers.append(handler(session, **request.kwargs))
    return answers


@pytest.fixture
def family_override():
    """Register/override request families; restore the originals on exit."""
    saved: dict[str, object] = {}

    def install(name, handler):
        if name not in saved:
            saved[name] = REQUEST_FAMILIES.get(name)
        register_request_family(name, handler)

    yield install
    for name, original in saved.items():
        if original is None:
            REQUEST_FAMILIES.pop(name, None)
        else:
            REQUEST_FAMILIES[name] = original


# ----------------------------------------------------------------------
# Policy units: token bucket, admission, retry policy, fault plan
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=2.0, burst=2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.5)  # 0.5s × 2/s = 1 token back

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate=100.0, burst=1.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(1000.0)
        assert not bucket.try_acquire(1000.0)

    def test_time_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_acquire(10.0)
        assert not bucket.try_acquire(5.0)  # no refill from the past
        assert bucket.try_acquire(11.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError, match="rate must be positive"):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ReproError, match="burst must be"):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionControl:
    def test_per_family_buckets_are_independent(self):
        control = AdmissionControl(rate_limit=1.0, rate_burst=1.0)
        control.admit("pqe", now=0.0)
        with pytest.raises(RateLimitedError, match="pqe"):
            control.admit("pqe", now=0.0)
        control.admit("resilience", now=0.0)  # separate bucket
        control.admit("pqe", now=1.0)  # refilled
        assert control.stats()["rate_limited"] == 1

    def test_request_deadline_overrides_the_default(self):
        control = AdmissionControl(default_deadline=2.0)
        assert control.expiry_for(Request.make("pqe"), now=10.0) == 12.0
        assert control.expiry_for(
            Request.make("pqe", deadline=0.5), now=10.0
        ) == 10.5
        assert AdmissionControl().expiry_for(
            Request.make("pqe"), now=10.0
        ) is None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ReproError, match="queue_limit"):
            AdmissionControl(queue_limit=0)
        with pytest.raises(ReproError, match="shed policy"):
            AdmissionControl(shed_policy="panic")
        with pytest.raises(ReproError, match="rate_limit"):
            AdmissionControl(rate_limit=-1)
        with pytest.raises(ReproError, match="default_deadline"):
            AdmissionControl(default_deadline=-0.1)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_retries=5, base_delay=0.1, max_delay=0.25)
        assert policy.delay_for(0) == pytest.approx(0.1)
        assert policy.delay_for(1) == pytest.approx(0.2)
        assert policy.delay_for(4) == pytest.approx(0.25)  # capped

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(max_retries=1, base_delay=0.1, jitter=0.5)
        delays = {
            policy.delay_for(0, random.Random(SEED)) for _ in range(3)
        }
        assert len(delays) == 1  # same seed, same jitter
        delay = delays.pop()
        assert 0.1 <= delay <= 0.15

    def test_only_transient_errors_are_retriable(self):
        policy = RetryPolicy(max_retries=1)
        assert policy.retriable(TransientError("x"))
        assert not policy.retriable(ReproError("x"))
        assert not policy.retriable(ValueError("x"))


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ReproError, match="kernel_failure_rate"):
            FaultPlan(kernel_failure_rate=1.5)
        with pytest.raises(ReproError, match="slow_seconds"):
            FaultPlan(slow_seconds=-1)

    def test_worker_killed_escapes_repro_error_handling(self):
        assert issubclass(WorkerKilled, BaseException)
        assert not issubclass(WorkerKilled, Exception)
        assert not issubclass(WorkerKilled, ReproError)

    def test_injection_caps_pin_exact_counts(self):
        injector = FaultInjector(
            seed=SEED, kernel_failure_rate=1.0, max_kernel_failures=2
        )
        for _ in range(2):
            with pytest.raises(TransientError, match="injected"):
                injector.before_attempt()
        injector.before_attempt()  # cap reached: silent
        assert injector.stats()["kernel_failures"] == 2

    def test_clock_carries_the_skew(self):
        injector = FaultInjector(seed=SEED, clock_skew=100.0)
        assert injector.clock() - time.monotonic() >= 99.0


# ----------------------------------------------------------------------
# Deadlines (checked at claim time)
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_expired_request_fails_before_execution(self, family_override):
        started = threading.Event()
        release = threading.Event()

        def gated(session):
            started.set()
            assert release.wait(10)
            return "gated"

        family_override("gated", gated)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=1)
        try:
            blocker = scheduler.submit(session, Request.make("gated"))
            assert started.wait(10)
            doomed = scheduler.submit(
                session, Request.make("pqe", deadline=0.0)
            )
            release.set()
            assert blocker.result(10) == "gated"
            with pytest.raises(DeadlineExceeded, match="before execution"):
                doomed.result(10)
            stats = scheduler.stats()
            assert stats["timeouts"] == 1
            assert stats["executed"] == 1  # only the blocker ran
        finally:
            release.set()
            scheduler.close()

    def test_default_deadline_applies_to_bare_requests(self, family_override):
        started = threading.Event()
        release = threading.Event()

        def gated(session):
            started.set()
            assert release.wait(10)
            return "gated"

        family_override("gated", gated)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(
            workers=1, admission=AdmissionControl(default_deadline=0.0)
        )
        try:
            # The blocker itself carries an explicit generous deadline so
            # only the bare request inherits the instant default.
            blocker = scheduler.submit(
                session, Request.make("gated", deadline=60.0)
            )
            assert started.wait(10)
            doomed = scheduler.submit(session, Request.make("pqe"))
            release.set()
            assert blocker.result(10) == "gated"
            with pytest.raises(DeadlineExceeded):
                doomed.result(10)
        finally:
            release.set()
            scheduler.close()

    def test_deadline_ms_decodes_from_stream_payloads(self):
        request = request_from_dict({"family": "pqe", "deadline_ms": 1500})
        assert request.deadline == pytest.approx(1.5)
        assert request.kwargs == {}  # not a handler parameter
        with pytest.raises(ReproError, match="deadline_ms"):
            request_from_dict({"family": "pqe", "deadline_ms": -5})
        with pytest.raises(ReproError, match="deadline_ms"):
            request_from_dict({"family": "pqe", "deadline_ms": True})

    def test_deadline_excluded_from_coalescing_identity(self):
        assert Request.make("pqe", deadline=0.5) == Request.make("pqe")
        assert hash(Request.make("pqe", deadline=0.5)) == hash(
            Request.make("pqe")
        )


# ----------------------------------------------------------------------
# Bounded queue: reject and shed-oldest
# ----------------------------------------------------------------------
class TestBoundedQueue:
    def _gate(self, family_override):
        started = threading.Event()
        release = threading.Event()

        def gated(session):
            started.set()
            assert release.wait(10)
            return "gated"

        family_override("gated", gated)
        return started, release

    def test_full_queue_rejects_new_submissions(self, family_override):
        started, release = self._gate(family_override)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(
            workers=1, admission=AdmissionControl(queue_limit=1)
        )
        try:
            blocker = scheduler.submit(session, Request.make("gated"))
            assert started.wait(10)  # claimed: does not occupy the queue
            queued = scheduler.submit(session, Request.make("pqe"))
            with pytest.raises(QueueFullError, match="full"):
                scheduler.submit(session, Request.make("resilience"))
            release.set()
            assert blocker.result(10) == "gated"
            assert queued.result(10) == session.pqe()
            stats = scheduler.stats()
            assert stats["rejected"] == 1
            assert stats["shed"] == 0
        finally:
            release.set()
            scheduler.close()

    def test_shed_oldest_fails_the_oldest_queued_request(
        self, family_override
    ):
        started, release = self._gate(family_override)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(
            workers=1,
            admission=AdmissionControl(
                queue_limit=1, shed_policy="shed_oldest"
            ),
        )
        try:
            blocker = scheduler.submit(session, Request.make("gated"))
            assert started.wait(10)
            victim = scheduler.submit(session, Request.make("pqe"))
            survivor = scheduler.submit(session, Request.make("resilience"))
            with pytest.raises(QueueFullError, match="shed"):
                victim.result(10)
            release.set()
            assert blocker.result(10) == "gated"
            assert survivor.result(10) == session.resilience()
            stats = scheduler.stats()
            assert stats["shed"] == 1
            assert stats["rejected"] == 0
        finally:
            release.set()
            scheduler.close()

    def test_rate_limited_submission_raises(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(
            workers=1,
            admission=AdmissionControl(rate_limit=0.001, rate_burst=1.0),
        )
        try:
            first = scheduler.submit(session, Request.make("pqe"))
            # Buckets are per-family: a second pqe admission finds the
            # bucket dry (rate limiting runs before coalescing).
            with pytest.raises(RateLimitedError, match="rate limit"):
                scheduler.submit(session, Request.make("pqe", exact=True))
            assert first.result(10) == session.pqe()
            assert scheduler.stats()["rate_limited"] == 1
        finally:
            scheduler.close()


# ----------------------------------------------------------------------
# Retries with backoff
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_failures_retry_to_success(self):
        query, data = _workload()
        requests = [Request.make("pqe"), Request.make("resilience")]
        serial = _serial_answers(query, data, requests)
        faults = FaultInjector(
            seed=SEED, kernel_failure_rate=1.0, max_kernel_failures=2
        )
        with Server(
            query,
            workers=1,
            retry=RetryPolicy(max_retries=3, base_delay=0.001),
            faults=faults,
            **data,
        ) as server:
            assert server.map(requests) == serial
            stats = server.stats()["scheduler"]
            assert stats["retries"] == 2
            assert stats["faults"]["kernel_failures"] == 2

    def test_exhausted_retry_budget_surfaces_the_error(self):
        query, data = _workload()
        faults = FaultInjector(seed=SEED, kernel_failure_rate=1.0)
        with Server(
            query,
            workers=1,
            retry=RetryPolicy(max_retries=1, base_delay=0.001),
            faults=faults,
            **data,
        ) as server:
            future = server.submit(Request.make("pqe"))
            with pytest.raises(TransientError, match="injected"):
                future.result(10)
            assert server.stats()["scheduler"]["retries"] == 1

    def test_no_retries_by_default(self):
        query, data = _workload()
        faults = FaultInjector(
            seed=SEED, kernel_failure_rate=1.0, max_kernel_failures=1
        )
        with Server(query, workers=1, faults=faults, **data) as server:
            with pytest.raises(TransientError):
                server.submit(Request.make("pqe")).result(10)
            assert server.stats()["scheduler"]["retries"] == 0


# ----------------------------------------------------------------------
# Worker supervision: deaths, respawns, re-queues
# ----------------------------------------------------------------------
class TestWorkerSupervision:
    def test_killed_workers_are_respawned_and_requests_survive(self):
        query, data = _workload()
        requests = [
            Request.make("pqe"),
            Request.make("pqe", exact=True),
            Request.make("expected_count"),
            Request.make("expected_count", exact=True),
            Request.make("resilience"),
            Request.make("sat_counts"),
        ]
        serial = _serial_answers(query, data, requests)
        faults = FaultInjector(
            seed=SEED, worker_death_rate=1.0, max_worker_deaths=3
        )
        with Server(query, workers=2, faults=faults, **data) as server:
            assert server.map(requests) == serial
            stats = server.stats()["scheduler"]
            assert stats["worker_deaths"] == 3
            assert stats["worker_respawns"] == 3
            assert stats["requeued"] == 3
            assert stats["faults"]["worker_deaths"] == 3

    def test_requeue_budget_exhaustion_fails_with_transient_error(self):
        query, data = _workload()
        faults = FaultInjector(seed=SEED, worker_death_rate=1.0)
        scheduler = Scheduler(workers=1, faults=faults, requeue_limit=2)
        session = Engine().open(query, **data)
        try:
            future = scheduler.submit(session, Request.make("pqe"))
            with pytest.raises(TransientError, match="worker thread died"):
                future.result(30)
            stats = scheduler.stats()
            assert stats["worker_deaths"] == 3  # initial claim + 2 re-queues
            assert stats["requeued"] == 2
        finally:
            scheduler.close()


# ----------------------------------------------------------------------
# Circuit breaker: degrade → open → half-open → recover
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_full_lifecycle(self, family_override):
        family_override("noop", lambda session, tag: tag)
        query, data = _workload()
        session = Engine(kernel_mode="auto").open(query, **data)
        faults = FaultInjector(
            seed=SEED, kernel_failure_rate=1.0, max_kernel_failures=4
        )
        breaker = CircuitBreaker(failure_threshold=2, cooldown=0.4)
        scheduler = Scheduler(workers=1, breaker=breaker, faults=faults)
        try:
            def ask(tag):
                return scheduler.submit(
                    session, Request.make("noop", tag=tag)
                )

            # Two failures trip the breaker: the session degrades to the
            # batched tier (bit-identical results) instead of failing fast.
            for tag in ("a", "b"):
                with pytest.raises(TransientError):
                    ask(tag).result(10)
            assert session.kernel_mode == "batched"
            assert breaker.stats()["trips"] == 1
            # Two more failures on the degraded tier open the circuit …
            for tag in ("c", "d"):
                with pytest.raises(TransientError):
                    ask(tag).result(10)
            # … and submissions now fail fast.
            with pytest.raises(CircuitOpenError, match="circuit open"):
                ask("e")
            assert breaker.stats()["open"] == 1
            assert scheduler.stats()["breaker_open_rejections"] >= 1
            # After the cool-down a probe is admitted (half-open, still on
            # the degraded tier); the injection cap is spent, so it succeeds.
            time.sleep(0.5)
            assert ask("f").result(10) == "f"
            assert session.kernel_mode == "batched"
            # A success after another cool-down closes the breaker and
            # restores the engine-configured tier.
            time.sleep(0.5)
            assert ask("g").result(10) == "g"
            assert session.kernel_mode == "auto"
            stats = breaker.stats()
            assert stats["recoveries"] == 1
            assert stats["open"] == 0 and stats["degraded"] == 0
        finally:
            scheduler.close()

    def test_semantic_errors_do_not_trip_the_breaker(self, family_override):
        def bad(session):
            raise ReproError("semantic, not transient")

        family_override("bad", bad)
        query, data = _workload()
        session = Engine().open(query, **data)
        breaker = CircuitBreaker(failure_threshold=1)
        scheduler = Scheduler(workers=1, breaker=breaker)
        try:
            with pytest.raises(ReproError, match="semantic"):
                scheduler.submit(session, Request.make("bad")).result(10)
            assert breaker.stats()["trips"] == 0
            assert session.kernel_mode == session.engine.kernel_mode
        finally:
            scheduler.close()

    def test_degraded_tier_answers_stay_bit_identical(self, family_override):
        query, data = _workload()
        serial = _serial_answers(query, data, [Request.make("pqe")])
        session = Engine(kernel_mode="auto").open(query, **data)
        faults = FaultInjector(
            seed=SEED, kernel_failure_rate=1.0, max_kernel_failures=1
        )
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30.0)
        scheduler = Scheduler(workers=1, breaker=breaker, faults=faults)
        try:
            with pytest.raises(TransientError):
                scheduler.submit(session, Request.make("pqe")).result(10)
            assert session.kernel_mode == "batched"
            future = scheduler.submit(session, Request.make("pqe"))
            assert future.result(10) == serial[0]  # degraded ≡ configured
        finally:
            scheduler.close()


# ----------------------------------------------------------------------
# Sweep failures: counted, never silently swallowed
# ----------------------------------------------------------------------
class TestSweepFailures:
    def test_failed_sweep_is_counted_and_falls_back_per_flight(
        self, family_override
    ):
        started = threading.Event()
        release = threading.Event()

        def gated(session):
            started.set()
            assert release.wait(10)
            return "gated"

        def exploding_sweep(session):
            raise TransientError("sweep exploded")

        family_override("gated", gated)
        family_override("shapley_values", exploding_sweep)
        query, data = _workload(endo=4)
        facts = list(data["endogenous"].facts())
        serial = {
            fact: _serial_answers(
                query, data, [Request.make("shapley_value", fact=fact)]
            )[0]
            for fact in facts
        }
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=1)
        try:
            blocker = scheduler.submit(session, Request.make("gated"))
            assert started.wait(10)
            futures = {
                fact: scheduler.submit(
                    session, Request.make("shapley_value", fact=fact)
                )
                for fact in facts
            }
            release.set()
            assert blocker.result(10) == "gated"
            # The batched sweep failed, but every per-fact request still
            # resolved correctly through its own handler.
            for fact, future in futures.items():
                assert future.result(10) == serial[fact]
            stats = scheduler.stats()
            assert stats["sweep_failures"] == 1
            assert stats["sweeps"] == 0
        finally:
            release.set()
            scheduler.close()


# ----------------------------------------------------------------------
# Deadline-aware close: no future left pending
# ----------------------------------------------------------------------
class TestClose:
    def test_close_timeout_fails_stuck_requests_instead_of_stranding(
        self, family_override
    ):
        release = threading.Event()
        started = threading.Event()

        def wedged(session):
            started.set()
            assert release.wait(30)
            return "late"

        family_override("wedged", wedged)
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=1)
        stuck = scheduler.submit(session, Request.make("wedged"))
        queued = scheduler.submit(session, Request.make("pqe"))
        assert started.wait(10)
        scheduler.close(wait=True, timeout=0.3)
        try:
            with pytest.raises(ReproError, match="closed before"):
                queued.result(1)
            with pytest.raises(ReproError, match="closed before"):
                stuck.result(1)
            assert scheduler.stats()["unresolved_at_close"] == 2
        finally:
            release.set()

    def test_clean_close_resolves_everything_without_timeouts(self):
        query, data = _workload()
        session = Engine().open(query, **data)
        scheduler = Scheduler(workers=2)
        futures = [
            scheduler.submit(session, Request.make("pqe")),
            scheduler.submit(session, Request.make("resilience")),
        ]
        scheduler.close(wait=True)
        assert all(future.done() for future in futures)
        assert scheduler.stats()["unresolved_at_close"] == 0


# ----------------------------------------------------------------------
# Memo pressure: LRU eviction on capped sessions
# ----------------------------------------------------------------------
class TestMemoPressure:
    def test_lru_eviction_counts_and_recomputes_correctly(self):
        query, data = _workload()
        session = Engine(memo_limit=2).open(query, **data)
        first = session.request("pqe")
        session.request("expected_count")
        session.request("resilience")  # evicts the LRU entry (pqe)
        stats = session.stats()["memo"]
        assert stats["limit"] == 2
        assert stats["entries"] == 2
        assert stats["evictions"] >= 1
        # The evicted answer is recomputed, not lost or corrupted.
        assert session.request("pqe") == first

    def test_get_refreshes_recency(self):
        memo = ResultMemo(limit=2)
        memo["a"] = 1
        memo["b"] = 2
        assert memo.get("a") == 1  # refresh: "b" is now the LRU entry
        memo["c"] = 3
        assert set(memo) == {"a", "c"}
        assert memo.evictions == 1

    def test_unbounded_by_default(self):
        memo = ResultMemo()
        for index in range(100):
            memo[index] = index
        assert len(memo) == 100
        assert memo.evictions == 0

    def test_invalid_limits_rejected(self):
        with pytest.raises(ReproError, match="memo limit"):
            ResultMemo(limit=0)
        with pytest.raises(ReproError, match="memo_limit"):
            Engine(memo_limit=0)

    def test_pool_stats_surface_evictions(self):
        from repro.serve import SessionPool

        query, data = _workload()
        with SessionPool(Engine(memo_limit=1)) as pool:
            session = pool.session(query, **data)
            session.request("pqe")
            session.request("resilience")
            stats = pool.stats()
            assert stats["keys"][0]["memo_evictions"] >= 1


# ----------------------------------------------------------------------
# The chaos invariant: everything resolves, survivors are bit-identical
# ----------------------------------------------------------------------
class TestChaosInvariant:
    _ALLOWED = (DeadlineExceeded, TransientError, QueueFullError)

    def _stream(self, data, rounds: int) -> list[Request]:
        endo = list(data["endogenous"].facts())
        requests = []
        for index in range(rounds):
            requests.extend([
                Request.make("pqe"),
                Request.make("expected_count"),
                Request.make("sat_counts"),
                Request.make("resilience"),
                Request.make("shapley_value", fact=endo[index % len(endo)]),
                Request.make(
                    "banzhaf_value", fact=endo[(index + 1) % len(endo)]
                ),
                Request.make("pqe", exact=True),
            ])
        return requests

    @pytest.mark.parametrize("kernel_mode", ["auto", "batched", "scalar"])
    def test_no_future_stranded_and_survivors_bit_identical(
        self, kernel_mode
    ):
        query, data = _workload(size=90, endo=4)
        requests = self._stream(data, rounds=3)
        doomed = [
            Request.make("banzhaf_value", fact=fact, deadline=0.0)
            for fact in data["endogenous"].facts()
        ]
        unique = {
            request.signature: request for request in requests + doomed
        }
        serial = dict(zip(
            unique.keys(),
            _serial_answers(query, data, list(unique.values()), kernel_mode),
        ))
        faults = FaultInjector(
            seed=SEED,
            kernel_failure_rate=0.15,
            worker_death_rate=0.05,
            slow_rate=0.10,
            slow_seconds=0.001,
        )
        with Server(
            query,
            engine=Engine(kernel_mode=kernel_mode),
            workers=4,
            retry=RetryPolicy(max_retries=2, base_delay=0.001),
            faults=faults,
            **data,
        ) as server:
            futures = [
                (request, server.submit(request)) for request in requests
            ]
            # Doomed stragglers with an already-expired deadline must
            # resolve too — with DeadlineExceeded or, if they coalesced
            # onto a live execution, the correct answer.
            for request in doomed:
                futures.append((request, server.submit(request)))
            failures = 0
            for request, future in futures:
                try:
                    value = future.result(60)
                except self._ALLOWED:
                    failures += 1
                else:
                    assert value == serial[request.signature], (
                        f"corrupted answer for {request}"
                    )
            stats = server.stats()["scheduler"]
        # Every accepted future resolved before close — nothing stranded.
        assert all(future.done() for _request, future in futures)
        assert stats["pending"] == 0
        assert stats["unresolved_at_close"] == 0
        assert stats["worker_deaths"] == stats["worker_respawns"]

    def test_seeded_runs_are_reproducible_single_worker(self):
        """One worker consumes the seeded stream in one global order, so
        two identical runs inject identical faults."""
        query, data = _workload(size=60, endo=3)
        requests = self._stream(data, rounds=2)

        def run():
            outcomes = []
            faults = FaultInjector(
                seed=SEED, kernel_failure_rate=0.3, slow_rate=0.0
            )
            with Server(query, workers=1, faults=faults, **data) as server:
                for request in requests:
                    try:
                        outcomes.append(
                            ("ok", server.submit(request).result(30))
                        )
                    except TransientError:
                        outcomes.append(("transient", None))
                return outcomes, server.stats()["scheduler"]["faults"]

        first_outcomes, first_faults = run()
        second_outcomes, second_faults = run()
        assert first_outcomes == second_outcomes
        assert first_faults == second_faults


# ----------------------------------------------------------------------
# Shard-worker deaths: SIGKILLed pool processes must not change answers
# ----------------------------------------------------------------------
class TestShardWorkerDeaths:
    def test_killed_pool_process_is_respawned_and_answers_survive(self):
        """The process-level analogue of worker supervision: the injector
        SIGKILLs a live process of the shard pool before dispatch, the
        sharded tier rebuilds the pool and resubmits the whole shard
        batch, and every future still resolves bit-identically to serial
        evaluation under the same shard configuration."""
        numpy = pytest.importorskip("numpy")  # noqa: F841 — sharded needs it
        from repro.core.sharded import (
            reset_sharded_stats,
            shard_config,
            sharded_stats,
        )

        query, data = _workload(size=150, endo=4)
        requests = [
            Request.make("pqe"),
            Request.make("expected_count"),
            Request.make("resilience"),
            Request.make("pqe"),
            Request.make("resilience"),
        ]
        with shard_config(shards=2, threshold=0):
            serial = _serial_answers(query, data, requests, "sharded")
            faults = FaultInjector(
                seed=SEED, shard_death_rate=1.0, max_shard_deaths=2
            )
            reset_sharded_stats()
            with Server(
                query,
                engine=Engine(kernel_mode="sharded"),
                workers=2,
                faults=faults,
                **data,
            ) as server:
                answers = server.map(requests)
                stats = sharded_stats()
                scheduler_stats = server.stats()["scheduler"]
        assert answers == serial
        assert faults.stats()["shard_deaths"] == 2
        assert stats["worker_kills"] == 2
        assert stats["pool_rebuilds"] >= 1  # SIGKILL → BrokenProcessPool
        assert stats["fallbacks"] == 0      # answers came from the shards
        assert scheduler_stats["sharded"]["worker_kills"] == 2
        # The resilience answers are exact carriers: also bit-identical
        # to the array tier, kills or not.
        array_serial = _serial_answers(query, data, requests, "array")
        assert answers[2] == array_serial[2]
        assert answers[4] == array_serial[4]

    def test_hook_is_cleared_on_close(self):
        from repro.core import sharded

        faults = FaultInjector(seed=SEED, shard_death_rate=1.0)
        query, data = _workload(size=30, endo=2)
        with Server(query, workers=1, faults=faults, **data):
            assert sharded._fault_hook is not None
        assert sharded._fault_hook is None
