"""Tests for the benchmark harness and (fast) experiment runners."""

import math

import pytest

from repro.bench.harness import doubling_ratios, loglog_slope, time_callable
from repro.bench.reporting import ExperimentResult, format_table
from repro.bench.experiments import (
    figure1_instance,
    run_e0_figure1,
    run_e1_elimination_examples,
    run_e5_bsm_vs_baselines,
    run_e7_shapley_vs_baselines,
    run_e11_law_census,
)


class TestHarness:
    def test_time_callable_returns_result(self):
        elapsed, result = time_callable(lambda: 42, repeats=2)
        assert result == 42
        assert elapsed >= 0

    def test_loglog_slope_recovers_exponent(self):
        xs = [10, 20, 40, 80]
        for exponent in (1.0, 2.0, 0.5):
            ys = [x**exponent for x in xs]
            assert loglog_slope(xs, ys) == pytest.approx(exponent, abs=1e-9)

    def test_loglog_slope_input_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [1, 2])

    def test_doubling_ratios(self):
        assert doubling_ratios([1, 2, 4]) == [2, 2]
        assert doubling_ratios([0, 5]) == [math.inf]


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_experiment_result_render(self):
        result = ExperimentResult("EX", "demo", ("x",))
        result.add_row(1)
        result.add_note("a note")
        rendered = result.render()
        assert "EX" in rendered and "demo" in rendered and "a note" in rendered

    def test_float_formatting(self):
        table = format_table(("v",), [(0.5,), (1e-9,), (0.0,)])
        assert "0.5000" in table
        assert "e-09" in table


class TestFastExperiments:
    def test_figure1_instance_matches_paper(self):
        query, instance = figure1_instance()
        assert len(instance.database) == 4
        assert len(instance.repair_database) == 4
        assert instance.budget == 2

    def test_e0(self):
        result = run_e0_figure1()
        values = {row[0]: row[1] for row in result.rows}
        assert values["no repair (paper: 1)"] == 1
        assert values["add R(1,6), R(1,7) (paper: 3)"] == 3
        assert values["unified algorithm optimum (paper: 4)"] == 4
        assert values["brute-force optimum (paper: 4)"] == 4

    def test_e1(self):
        result = run_e1_elimination_examples()
        outcomes = {row[3]: row[2] for row in result.rows}
        # measured outcome equals the paper's expectation for every example
        for row in result.rows:
            assert row[2] == row[3]
        assert "Stuck" in outcomes

    def test_e5(self):
        result = run_e5_bsm_vs_baselines(seeds=(0, 1))
        for row in result.rows:
            _seed, _d, _dr, _theta, unified, brute, greedy, gap = row
            assert unified == brute
            assert greedy <= unified
            assert gap == unified - greedy

    def test_e7(self):
        result = run_e7_shapley_vs_baselines(sample_counts=(50,))
        rows = {row[0]: row for row in result.rows}
        assert rows["unified (#Sat)"][3] == 0
        assert rows["permutations (Def. 5.12)"][3] == 0

    def test_e11(self):
        result = run_e11_law_census()
        by_name = {row[0]: row for row in result.rows}
        for name in ("probability", "bag-set maximization", "#Sat / Shapley"):
            assert by_name[name][1] == "ok"
            assert by_name[name][2] == "NO", f"{name} must not distribute"
        assert by_name["#Sat / Shapley"][3] == "NO"
        assert by_name["counting (N, +, ×)"][2] == "yes"
