"""Tests for the benchmark harness and (fast) experiment runners."""

import math

import pytest

from repro.bench.harness import doubling_ratios, loglog_slope, time_callable
from repro.bench.reporting import ExperimentResult, format_table
from repro.bench.experiments import (
    figure1_instance,
    run_e0_figure1,
    run_e1_elimination_examples,
    run_e5_bsm_vs_baselines,
    run_e7_shapley_vs_baselines,
    run_e11_law_census,
)


class TestHarness:
    def test_time_callable_returns_result(self):
        elapsed, result = time_callable(lambda: 42, repeats=2)
        assert result == 42
        assert elapsed >= 0

    def test_loglog_slope_recovers_exponent(self):
        xs = [10, 20, 40, 80]
        for exponent in (1.0, 2.0, 0.5):
            ys = [x**exponent for x in xs]
            assert loglog_slope(xs, ys) == pytest.approx(exponent, abs=1e-9)

    def test_loglog_slope_input_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [1, 2])

    def test_doubling_ratios(self):
        assert doubling_ratios([1, 2, 4]) == [2, 2]
        assert doubling_ratios([0, 5]) == [math.inf]


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("a", "bbb"), [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_experiment_result_render(self):
        result = ExperimentResult("EX", "demo", ("x",))
        result.add_row(1)
        result.add_note("a note")
        rendered = result.render()
        assert "EX" in rendered and "demo" in rendered and "a note" in rendered

    def test_float_formatting(self):
        table = format_table(("v",), [(0.5,), (1e-9,), (0.0,)])
        assert "0.5000" in table
        assert "e-09" in table


class TestPerfSuiteDocument:
    def test_single_experiment_document_only_claims_itself(self, tmp_path):
        """`repro bench E4 --json out.json` must not write a summary
        claiming the whole suite ran: experiments and summary carry exactly
        the executed ids (regression guard for the single-experiment run)."""
        from repro.bench.perf import run_perf_suite

        document = run_perf_suite(["E4"], quick=True, repeats=1)
        assert set(document["experiments"]) == {"E4"}
        assert set(document["summary"]) == {"E4"}

    def test_schema_v7_fields(self):
        from repro.bench.perf import (
            SCHEMA_VERSION,
            available_tiers,
            run_perf_suite,
        )

        document = run_perf_suite(["res"], quick=True, repeats=1)
        assert document["schema_version"] == SCHEMA_VERSION == 7
        assert document["tiers"] == available_tiers()
        environment = document["environment"]
        assert environment["python"] and environment["platform"]
        assert environment["numpy"]  # a version string or "absent"
        assert environment["cpu_count"] >= 1
        summary = document["summary"]["res"]
        assert summary["agree"] is True
        if "array" in document["tiers"]:
            run = document["experiments"]["res"]["runs"][-1]
            assert "array_s" in run and "array_vs_kernel" in run
            assert "largest_config_array_vs_kernel" in summary
            assert "sharded_s" in run and "sharded_vs_array" in run
            assert "largest_config_sharded_speedup" in summary
            scaling = document["experiments"]["res"]["shard_scaling"]
            assert set(scaling["workers"]) == {"1", "2"}  # quick sweep

    def test_compare_tolerates_one_sided_tiers(self):
        """Satellite: a v5 artifact (no sharded timings, no sharded serve
        leg) diffed against a v6 one must render ``n/a`` for the one-sided
        columns/tiers instead of raising (both directions)."""
        from repro.bench.perf import compare_perf_documents

        v5 = {
            "schema_version": 5,
            "environment": {"numpy": "2.4.6"},
            "experiments": {
                "E2": {"runs": [{
                    "params": {"|D|": 900}, "scalar_s": 1.0,
                    "kernel_s": 0.5, "speedup": 2.0,
                }]},
                "serve": {"runs": [
                    {"params": {"tier": "scalar"}, "oneshot_s": 1.0,
                     "speedup": 1.5},
                    {"params": {"tier": "array"}, "oneshot_s": 0.7,
                     "speedup": 2.0},
                ]},
            },
        }
        v6 = {
            "schema_version": 6,
            "environment": {"numpy": "2.4.6"},
            "experiments": {
                "E2": {"runs": [{
                    "params": {"|D|": 900}, "scalar_s": 1.0,
                    "sharded_s": 0.4, "sharded_speedup": 2.5,
                }]},
                "serve": {"runs": [
                    {"params": {"tier": "scalar"}, "oneshot_s": 0.9,
                     "speedup": 1.6},
                    {"params": {"tier": "array"}, "oneshot_s": 0.6,
                     "speedup": 2.1},
                    {"params": {"tier": "sharded"}, "oneshot_s": 0.6,
                     "speedup": 2.2},
                ]},
            },
        }
        forward = compare_perf_documents(v5, v6)
        assert "n/a (not in OLD)" in forward
        assert "tier sharded: n/a (only in NEW)" in forward
        backward = compare_perf_documents(v6, v5)
        assert "n/a (not in NEW)" in backward
        assert "tier sharded: n/a (only in OLD)" in backward

    def test_compare_documents_renders_deltas(self):
        from repro.bench.perf import compare_perf_documents, run_perf_suite

        old = run_perf_suite(["E4"], quick=True, repeats=1)
        new = run_perf_suite(["E4", "res"], quick=True, repeats=1)
        rendered = compare_perf_documents(old, new)
        assert "== E4 ==" in rendered
        assert "== res: only in NEW ==" in rendered
        assert "scalar" in rendered and "kernel" in rendered
        assert "speedup" in rendered

    def test_cli_bench_compare(self, tmp_path, capsys):
        from repro.cli import main

        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        assert main(["bench", "E4", "--quick", "--json", str(old_path)]) == 0
        assert main(["bench", "E4", "--quick", "--json", str(new_path)]) == 0
        capsys.readouterr()
        code = main(["bench", "--compare", str(old_path), str(new_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "perf comparison" in out and "== E4 ==" in out

    def test_cli_bench_compare_rejects_run_arguments(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["bench", "E4", "--compare", "old.json", "new.json"]
        )
        assert code == 2


class TestFastExperiments:
    def test_figure1_instance_matches_paper(self):
        query, instance = figure1_instance()
        assert len(instance.database) == 4
        assert len(instance.repair_database) == 4
        assert instance.budget == 2

    def test_e0(self):
        result = run_e0_figure1()
        values = {row[0]: row[1] for row in result.rows}
        assert values["no repair (paper: 1)"] == 1
        assert values["add R(1,6), R(1,7) (paper: 3)"] == 3
        assert values["unified algorithm optimum (paper: 4)"] == 4
        assert values["brute-force optimum (paper: 4)"] == 4

    def test_e1(self):
        result = run_e1_elimination_examples()
        outcomes = {row[3]: row[2] for row in result.rows}
        # measured outcome equals the paper's expectation for every example
        for row in result.rows:
            assert row[2] == row[3]
        assert "Stuck" in outcomes

    def test_e5(self):
        result = run_e5_bsm_vs_baselines(seeds=(0, 1))
        for row in result.rows:
            _seed, _d, _dr, _theta, unified, brute, greedy, gap = row
            assert unified == brute
            assert greedy <= unified
            assert gap == unified - greedy

    def test_e7(self):
        result = run_e7_shapley_vs_baselines(sample_counts=(50,))
        rows = {row[0]: row for row in result.rows}
        assert rows["unified (#Sat)"][3] == 0
        assert rows["permutations (Def. 5.12)"][3] == 0

    def test_e11(self):
        result = run_e11_law_census()
        by_name = {row[0]: row for row in result.rows}
        for name in ("probability", "bag-set maximization", "#Sat / Shapley"):
            assert by_name[name][1] == "ok"
            assert by_name[name][2] == "NO", f"{name} must not distribute"
        assert by_name["#Sat / Shapley"][3] == "NO"
        assert by_name["counting (N, +, ×)"][2] == "yes"
