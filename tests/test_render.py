"""Tests for the paper-style rule rendering of plans."""

from repro.core.plan import compile_plan
from repro.core.render import render_rules
from repro.query.families import q_disconnected, q_eq1, q_h


class TestRenderRules:
    def test_eq1_rules_match_section_2(self):
        """The rendered plan matches the shape of Eqs. (4)–(9)."""
        rendered = render_rules(compile_plan(q_eq1()))
        lines = rendered.splitlines()
        assert len(lines) == 7  # six steps + the head rule
        assert lines[0].startswith("R'(a)")
        assert "⊕_{b ∈ Dom} R(a, b)" in lines[0]
        assert any("⊗" in line for line in lines)
        assert lines[-1].startswith("Q()")

    def test_projection_renders_domain_fold(self):
        rendered = render_rules(compile_plan(q_h()))
        assert "⊕_{" in rendered
        assert "∈ Dom}" in rendered

    def test_nullary_atoms_render(self):
        rendered = render_rules(compile_plan(q_disconnected()))
        assert "R'()" in rendered or "S'()" in rendered

    def test_custom_head(self):
        rendered = render_rules(compile_plan(q_h()), head="Answer")
        assert rendered.splitlines()[-1].startswith("Answer()")

    def test_alignment(self):
        rendered = render_rules(compile_plan(q_eq1()))
        arrow_columns = {line.index("←") for line in rendered.splitlines()}
        assert len(arrow_columns) == 1
