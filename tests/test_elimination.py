"""Tests for the elimination procedure (Proposition 5.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotHierarchicalError, QueryError
from repro.query.bcq import make_query
from repro.query.elimination import (
    Rule1Step,
    Rule2Step,
    applicable_rule1_steps,
    applicable_rule2_steps,
    apply_step,
    eliminate,
    make_random_policy,
)
from repro.query.elimination import _FreshNames
from repro.query.families import (
    q_disconnected,
    q_eq1,
    q_example_53,
    q_nh,
    random_query,
    star_query,
    telescope_query,
)
from repro.query.hierarchy import is_hierarchical


class TestExample52:
    """The paper's Example 5.2 trace on the Eq. (1) query."""

    def test_succeeds(self):
        trace = eliminate(q_eq1())
        assert trace.success
        assert trace.final_query.is_boolean_true_form

    def test_step_count(self):
        # The Example 5.2 trace uses 4 Rule 1 and 2 Rule 2 applications:
        # one per variable (A, B, C, D) and one per duplicate-atom merge.
        trace = eliminate(q_eq1())
        rule1 = [s for s in trace.steps if isinstance(s, Rule1Step)]
        rule2 = [s for s in trace.steps if isinstance(s, Rule2Step)]
        assert len(rule1) == 4
        assert len(rule2) == 2

    def test_eliminated_variables(self):
        trace = eliminate(q_eq1())
        eliminated = {s.variable for s in trace.steps if isinstance(s, Rule1Step)}
        assert eliminated == {"A", "B", "C", "D"}

    def test_intermediate_queries_stay_hierarchical(self):
        """Proposition 5.1: the rules preserve the hierarchical property."""
        for query in eliminate(q_eq1()).intermediate_queries():
            assert is_hierarchical(query)


class TestExample53:
    """The non-hierarchical chain gets stuck (Example 5.3)."""

    def test_gets_stuck(self):
        trace = eliminate(q_example_53())
        assert not trace.success
        assert not trace.final_query.is_boolean_true_form

    def test_stuck_query_has_three_atoms(self):
        # As in the paper: R'(B) ∧ S(B,C) ∧ T'(C) — private vars gone.
        trace = eliminate(q_example_53())
        assert len(trace.final_query) == 3
        assert trace.final_query.variables == {"B", "C"}

    def test_final_relation_raises_on_failure(self):
        trace = eliminate(q_example_53())
        with pytest.raises(NotHierarchicalError):
            _ = trace.final_relation

    def test_intermediate_queries_stay_non_hierarchical(self):
        for query in eliminate(q_example_53()).intermediate_queries():
            assert not is_hierarchical(query)


class TestExample54:
    """Disconnected hierarchical queries reduce to a single nullary atom."""

    def test_succeeds(self):
        trace = eliminate(q_disconnected())
        assert trace.success

    def test_uses_a_nullary_rule2(self):
        trace = eliminate(q_disconnected())
        rule2 = [s for s in trace.steps if isinstance(s, Rule2Step)]
        assert len(rule2) == 1
        assert rule2[0].first.is_nullary


class TestRuleApplicability:
    def test_rule1_finds_private_variables(self):
        fresh = _FreshNames({"R", "S", "T"})
        steps = applicable_rule1_steps(q_eq1(), fresh)
        assert {s.variable for s in steps} == {"B", "D"}

    def test_rule2_requires_equal_variable_sets(self):
        fresh = _FreshNames({"R", "S", "T"})
        assert applicable_rule2_steps(q_eq1(), fresh) == []
        q = make_query([("R", "AB"), ("S", "BA")])
        steps = applicable_rule2_steps(q, fresh)
        assert len(steps) == 1

    def test_apply_step_rejects_garbage(self):
        with pytest.raises(QueryError):
            apply_step(q_eq1(), "not a step")


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(QueryError):
            eliminate(q_eq1(), policy="nonsense")

    @pytest.mark.parametrize("policy", ["rule1_first", "rule2_first"])
    def test_named_policies_agree_on_success(self, policy):
        assert eliminate(q_eq1(), policy=policy).success
        assert not eliminate(q_nh(), policy=policy).success

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_policies_confluent_on_random_queries(self, seed):
        """All orders reach the same verdict (Proposition 5.1)."""
        query = random_query(random.Random(seed))
        verdicts = {
            eliminate(query, policy="rule1_first").success,
            eliminate(query, policy="rule2_first").success,
            eliminate(query, policy=make_random_policy(seed)).success,
        }
        assert len(verdicts) == 1


class TestTraceRendering:
    def test_str_contains_done(self):
        assert "(Done!)" in str(eliminate(q_eq1()))

    def test_str_contains_stuck(self):
        assert "(Stuck!)" in str(eliminate(q_nh()))

    def test_fresh_names_are_primed(self):
        trace = eliminate(q_eq1())
        new_names = {s.target.relation for s in trace.steps}
        assert all("'" in name for name in new_names)


class TestStepCountInvariant:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_successful_traces_have_exact_step_count(self, seed):
        """Rule 1 removes one variable, Rule 2 one atom: a successful trace
        has |vars(Q)| + |atoms(Q)| - 1 steps."""
        query = random_query(random.Random(seed))
        trace = eliminate(query)
        if trace.success:
            expected = len(query.variables) + len(query.atoms) - 1
            assert len(trace.steps) == expected

    def test_star_and_telescope_step_counts(self):
        for k in (1, 2, 4):
            star = star_query(k)
            assert len(eliminate(star).steps) == (k + 1) + k - 1
            telescope = telescope_query(k)
            assert (
                len(eliminate(telescope).steps)
                == k + k - 1
            )
