"""Cross-module integration tests: the paper's theorems as executable checks.

These tests tie everything together: random hierarchical queries, random
instances, three independent code paths per problem (direct 2-monoid run,
brute-force baseline, φ-evaluation of the read-once lineage), plus the
structural invariants of Section 6 (Lemma 6.6 and Theorem 6.7).
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.probability import ExactProbabilityMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.core.algorithm import evaluate_hierarchical, execute_plan
from repro.core.instrument import CountingMonoid
from repro.core.plan import compile_plan
from repro.db.annotated import KDatabase
from repro.problems.bagset_max import annotation_psi as bsm_psi
from repro.problems.bagset_max import (
    maximize,
    maximize_brute_force,
    maximize_via_lineage,
)
from repro.problems.pqe import (
    marginal_probability,
    marginal_probability_brute_force,
    marginal_probability_via_lineage,
)
from repro.problems.shapley import annotation_psi as shapley_psi
from repro.problems.shapley import (
    sat_counts,
    sat_counts_brute_force,
    sat_counts_via_lineage,
)
from repro.query.families import random_hierarchical_query
from repro.workloads.generators import (
    random_bagset_instance,
    random_database,
    random_probabilistic_database,
    random_shapley_instance,
)


class TestThreeWayAgreementPQE:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_direct_brute_lineage_agree(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        pdb = random_probabilistic_database(
            query, facts_per_relation=2, domain_size=2, seed=rng, exact=True
        )
        if len(pdb) > 11:
            return
        direct = marginal_probability(query, pdb, exact=True)
        brute = marginal_probability_brute_force(query, pdb, exact=True)
        lineage = marginal_probability_via_lineage(query, pdb, exact=True)
        assert direct == brute == lineage


class TestThreeWayAgreementBSM:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_direct_brute_lineage_agree(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_bagset_instance(
            query, base_facts_per_relation=2, repair_facts_per_relation=3,
            budget=2, domain_size=2, seed=rng,
        )
        if len(instance.addable_facts()) > 9:
            return
        direct = maximize(query, instance)
        brute = maximize_brute_force(query, instance)
        lineage = maximize_via_lineage(query, instance)
        assert direct == brute == lineage


class TestThreeWayAgreementShapley:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_direct_brute_lineage_agree(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng,
        )
        if instance.endogenous_count > 9:
            return
        direct = sat_counts(query, instance)
        brute = sat_counts_brute_force(query, instance)
        lineage = sat_counts_via_lineage(query, instance)
        assert direct == brute == lineage


class TestLemma66SupportNeverIncreases:
    """Lemma 6.6: throughout Algorithm 1 the total support never grows."""

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_max_live_support_bounded_by_input(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=4, domain_size=3, seed=rng
        )
        for monoid, psi in self._instantiations(query, database, rng):
            annotated = KDatabase.annotate(query, monoid, database.facts(), psi)
            input_size = annotated.size()
            plan = compile_plan(query)
            report = execute_plan(plan, annotated)
            assert report.max_live_support <= input_size

    @staticmethod
    def _instantiations(query, database, rng):
        exact = ExactProbabilityMonoid()
        yield exact, lambda _f: Fraction(1, 2)
        bag = BagSetMonoid(3)
        yield bag, lambda _f: bag.one
        shap = ShapleyMonoid(4)
        yield shap, lambda _f: shap.star


class TestTheorem67LinearOperations:
    """Theorem 6.7: Algorithm 1 performs O(|D|) ⊕/⊗ operations."""

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_operation_count_linear_in_input(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=5, domain_size=3, seed=rng
        )
        monoid = CountingMonoid(ExactProbabilityMonoid())
        evaluate_hierarchical(
            query, monoid, database.facts(), lambda _f: Fraction(1, 2)
        )
        size = max(1, len(database))
        # Each fact participates in at most one ⊕-group and one ⊗-join per
        # plan step it survives; the per-fact constant depends only on |Q|.
        per_query_constant = 2 * (len(query.atoms) + len(query.variables)) + 2
        assert monoid.operation_count <= per_query_constant * size


class TestPsiAnnotations:
    def test_bsm_psi_values(self, fig1_query, fig1_instance):
        monoid = BagSetMonoid(3)
        psi = bsm_psi(fig1_instance, monoid)
        from repro.db.fact import Fact

        assert psi(Fact("R", (1, 5))) == monoid.one        # in D
        assert psi(Fact("R", (1, 6))) == monoid.star       # in Dr \ D
        assert psi(Fact("R", (9, 9))) == monoid.zero       # in neither

    def test_shapley_psi_values(self, fig1_query, small_shapley_instance):
        monoid = ShapleyMonoid(3)
        psi = shapley_psi(small_shapley_instance, monoid)
        from repro.db.fact import Fact

        assert psi(Fact("S", (1, 1))) == monoid.one        # exogenous
        assert psi(Fact("R", (1, 5))) == monoid.star       # endogenous
        assert psi(Fact("T", (9, 9, 9))) == monoid.zero    # absent
