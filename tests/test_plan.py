"""Tests for plan compilation (the Algorithm 1 front-end)."""

import pytest

from repro.core.plan import MergeStep, Plan, ProjectStep, compile_plan, plan_from_trace
from repro.exceptions import NotHierarchicalError
from repro.query.elimination import eliminate
from repro.query.families import (
    q_disconnected,
    q_eq1,
    q_nh,
    star_query,
    telescope_query,
)


class TestCompilation:
    def test_eq1_plan(self):
        plan = compile_plan(q_eq1())
        assert plan.project_count == 4
        assert plan.merge_count == 2
        assert plan.final_relation.endswith("'")

    def test_non_hierarchical_rejected(self):
        with pytest.raises(NotHierarchicalError):
            compile_plan(q_nh())

    def test_plan_from_failed_trace_rejected(self):
        trace = eliminate(q_nh())
        with pytest.raises(NotHierarchicalError):
            plan_from_trace(trace)

    def test_plan_mirrors_trace(self):
        trace = eliminate(q_eq1())
        plan = plan_from_trace(trace)
        assert len(plan.steps) == len(trace.steps)

    def test_disconnected_plan(self):
        plan = compile_plan(q_disconnected())
        assert plan.merge_count == 1
        assert plan.project_count == 2

    def test_star_plan_shape(self):
        plan = compile_plan(star_query(3))
        # 3 private Y-projections + 2 merges + 1 X-projection.
        assert plan.project_count == 4
        assert plan.merge_count == 2

    def test_telescope_plan_shape(self):
        plan = compile_plan(telescope_query(3))
        assert plan.project_count == 3
        assert plan.merge_count == 2


class TestPlanStructure:
    def test_steps_connect(self):
        """Each step consumes relations produced earlier (or inputs)."""
        plan = compile_plan(q_eq1())
        available = {atom.relation for atom in q_eq1().atoms}
        for step in plan.steps:
            if isinstance(step, ProjectStep):
                assert step.source.relation in available
                available.discard(step.source.relation)
            else:
                assert isinstance(step, MergeStep)
                assert step.first.relation in available
                assert step.second.relation in available
                available.discard(step.first.relation)
                available.discard(step.second.relation)
            available.add(step.target.relation)
        assert available == {plan.final_relation}

    def test_rendering(self):
        plan = compile_plan(q_eq1())
        rendered = str(plan)
        assert "plan for" in rendered
        assert "⊕" in rendered and "⊗" in rendered
        assert f"return {plan.final_relation}()" in rendered

    def test_policy_changes_plan_not_semantics(self):
        a = compile_plan(star_query(3), policy="rule1_first")
        b = compile_plan(star_query(3), policy="rule2_first")
        assert a.final_relation != b.final_relation or a.steps != b.steps
        assert a.project_count == b.project_count
        assert a.merge_count == b.merge_count
