"""Unit tests for repro.query.atoms."""

import pytest

from repro.exceptions import QueryError
from repro.query.atoms import Atom, make_atom


class TestAtomConstruction:
    def test_basic_atom(self):
        atom = Atom("R", ("A", "B"))
        assert atom.relation == "R"
        assert atom.variables == ("A", "B")
        assert atom.arity == 2

    def test_nullary_atom(self):
        atom = Atom("R", ())
        assert atom.is_nullary
        assert atom.arity == 0
        assert atom.variable_set == frozenset()

    def test_repeated_variable_rejected(self):
        with pytest.raises(QueryError):
            Atom("R", ("A", "A"))

    def test_empty_relation_name_rejected(self):
        with pytest.raises(QueryError):
            Atom("", ("A",))

    def test_make_atom_accepts_iterables(self):
        assert make_atom("R", "AB") == Atom("R", ("A", "B"))
        assert make_atom("R", ["X", "Y"]) == Atom("R", ("X", "Y"))

    def test_variables_coerced_to_tuple(self):
        atom = Atom("R", ("A", "B"))
        assert isinstance(atom.variables, tuple)


class TestAtomProperties:
    def test_variable_set(self):
        atom = Atom("T", ("A", "C", "D"))
        assert atom.variable_set == frozenset({"A", "C", "D"})

    def test_contains(self):
        atom = Atom("S", ("A", "C"))
        assert atom.contains("A")
        assert atom.contains("C")
        assert not atom.contains("B")

    def test_str(self):
        assert str(Atom("R", ("A", "B"))) == "R(A, B)"
        assert str(Atom("R", ())) == "R()"

    def test_equality_and_hash(self):
        assert Atom("R", ("A",)) == Atom("R", ("A",))
        assert Atom("R", ("A",)) != Atom("R", ("B",))
        assert Atom("R", ("A",)) != Atom("S", ("A",))
        assert len({Atom("R", ("A",)), Atom("R", ("A",))}) == 1

    def test_order_of_variables_matters_for_equality(self):
        assert Atom("R", ("A", "B")) != Atom("R", ("B", "A"))
        assert (
            Atom("R", ("A", "B")).variable_set
            == Atom("R", ("B", "A")).variable_set
        )


class TestAtomRewriting:
    def test_without_removes_variable(self):
        atom = Atom("T", ("A", "C", "D"))
        reduced = atom.without("D", "T'")
        assert reduced == Atom("T'", ("A", "C"))

    def test_without_preserves_order(self):
        atom = Atom("T", ("A", "C", "D"))
        assert atom.without("C", "T'").variables == ("A", "D")

    def test_without_missing_variable_raises(self):
        with pytest.raises(QueryError):
            Atom("R", ("A",)).without("Z", "R'")

    def test_without_to_nullary(self):
        assert Atom("R", ("A",)).without("A", "R'").is_nullary

    def test_renamed(self):
        atom = Atom("R", ("A", "B"))
        renamed = atom.renamed("R'")
        assert renamed.relation == "R'"
        assert renamed.variables == atom.variables
