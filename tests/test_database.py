"""Tests for facts, schemas and set databases."""

import pytest

from repro.db.database import Database, repair_cost
from repro.db.fact import Fact, make_fact
from repro.db.schema import Schema
from repro.exceptions import SchemaError
from repro.query.families import q_eq1


class TestFact:
    def test_construction(self):
        fact = Fact("R", (1, 5))
        assert fact.relation == "R"
        assert fact.values == (1, 5)
        assert fact.arity == 2

    def test_make_fact(self):
        assert make_fact("R", [1, 5]) == Fact("R", (1, 5))

    def test_str(self):
        assert str(Fact("R", (1, "x"))) == "R(1, 'x')"

    def test_hashable_and_ordered(self):
        facts = {Fact("R", (1,)), Fact("R", (1,)), Fact("S", (1,))}
        assert len(facts) == 2
        assert Fact("R", (1,)) < Fact("S", (1,))


class TestSchema:
    def test_of_query(self):
        schema = Schema.of_query(q_eq1())
        assert schema.arity("R") == 2
        assert schema.arity("T") == 3
        assert "R" in schema
        assert "Z" not in schema

    def test_validate_fact(self):
        schema = Schema.of_query(q_eq1())
        schema.validate_fact(Fact("R", (1, 2)))
        with pytest.raises(SchemaError):
            schema.validate_fact(Fact("R", (1, 2, 3)))
        with pytest.raises(SchemaError):
            schema.validate_fact(Fact("Unknown", (1,)))

    def test_unknown_relation_arity_raises(self):
        with pytest.raises(SchemaError):
            Schema.of_query(q_eq1()).arity("Nope")

    def test_relations_sorted(self):
        assert Schema.of_query(q_eq1()).relations == ("R", "S", "T")


class TestDatabase:
    def test_from_relations(self):
        db = Database.from_relations({"R": [(1, 5)], "S": [(1, 1), (1, 2)]})
        assert len(db) == 3
        assert db.tuples("R") == frozenset({(1, 5)})
        assert db.tuples("S") == frozenset({(1, 1), (1, 2)})

    def test_duplicates_collapse(self):
        db = Database([Fact("R", (1,)), Fact("R", (1,))])
        assert len(db) == 1

    def test_contains(self):
        db = Database.from_relations({"R": [(1, 5)]})
        assert Fact("R", (1, 5)) in db
        assert Fact("R", (1, 6)) not in db
        assert Fact("S", (1, 5)) not in db

    def test_unknown_relation_tuples_empty(self):
        assert Database().tuples("Z") == frozenset()

    def test_facts_deterministic_order(self):
        db = Database.from_relations({"S": [(2,), (1,)], "R": [(3,)]})
        facts = list(db.facts())
        assert facts == sorted(facts, key=lambda f: (f.relation, repr(f.values)))

    def test_active_domain(self):
        db = Database.from_relations({"R": [(1, 5)], "T": [(1, 2, 4)]})
        assert db.active_domain() == {1, 2, 4, 5}

    def test_equality_and_hash(self):
        a = Database.from_relations({"R": [(1,), (2,)]})
        b = Database([Fact("R", (2,)), Fact("R", (1,))])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Database.from_relations({"R": [(1,)]})

    def test_with_and_without_facts(self):
        db = Database.from_relations({"R": [(1,)]})
        extended = db.with_facts([Fact("R", (2,))])
        assert len(extended) == 2
        assert len(db) == 1, "with_facts must not mutate the original"
        shrunk = extended.without_facts([Fact("R", (1,))])
        assert shrunk.tuples("R") == frozenset({(2,)})

    def test_union_difference(self):
        a = Database.from_relations({"R": [(1,)]})
        b = Database.from_relations({"R": [(2,)], "S": [(3,)]})
        assert len(a.union(b)) == 3
        assert a.union(b).difference(a) == b

    def test_restrict(self):
        db = Database.from_relations({"R": [(1,)], "S": [(2,)]})
        assert db.restrict(["R"]).relations == ("R",)

    def test_validate_against_query(self):
        db = Database.from_relations({"R": [(1, 5, 9)]})
        with pytest.raises(SchemaError):
            db.validate_against(q_eq1())

    def test_schema_buckets_declared(self):
        schema = Schema.of_query(q_eq1())
        db = Database([Fact("R", (1, 2))], schema=schema)
        assert set(db.relations) == {"R", "S", "T"}


class TestRepairCost:
    def test_cost_counts_added_facts(self):
        original = Database.from_relations({"R": [(1,)]})
        repaired = original.with_facts([Fact("R", (2,)), Fact("S", (3,))])
        assert repair_cost(original, repaired) == 2
        assert repair_cost(original, original) == 0

    def test_non_superset_rejected(self):
        original = Database.from_relations({"R": [(1,)]})
        other = Database.from_relations({"R": [(2,)]})
        with pytest.raises(SchemaError):
            repair_cost(original, other)
