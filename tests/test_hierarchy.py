"""Tests for the three equivalent hierarchicality characterizations.

The pairwise at-set definition (`is_hierarchical`), the elimination procedure
(Proposition 5.1), and the variable-tree construction (Proposition 5.5) must
agree on every query; hypothesis drives that equivalence on random queries.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.query.elimination import is_hierarchical_by_elimination
from repro.query.families import (
    chain_query,
    forest_query,
    q_disconnected,
    q_eq1,
    q_example_53,
    q_h,
    q_nh,
    random_hierarchical_query,
    random_query,
    star_query,
    telescope_query,
)
from repro.query.gyo import is_acyclic
from repro.query.hierarchy import (
    atom_sets,
    find_non_hierarchical_witness,
    is_hierarchical,
)
from repro.query.tree import is_hierarchical_by_tree


class TestNamedQueries:
    def test_paper_examples(self):
        assert is_hierarchical(q_eq1())
        assert is_hierarchical(q_h())
        assert is_hierarchical(q_disconnected())
        assert not is_hierarchical(q_nh())
        assert not is_hierarchical(q_example_53())

    def test_families(self):
        for k in (1, 2, 3, 5):
            assert is_hierarchical(star_query(k))
            assert is_hierarchical(telescope_query(k))
        assert is_hierarchical(forest_query(2, 3))
        assert is_hierarchical(chain_query(1))
        assert is_hierarchical(chain_query(2))
        assert not is_hierarchical(chain_query(3))
        assert not is_hierarchical(chain_query(5))

    def test_single_atom_queries(self):
        from repro.query.bcq import make_query

        assert is_hierarchical(make_query([("R", "ABC")]))
        assert is_hierarchical(make_query([("R", "")]))


class TestAtomSets:
    def test_at_sets_of_eq1(self):
        at = atom_sets(q_eq1())
        assert {a.relation for a in at["A"]} == {"R", "S", "T"}
        assert {a.relation for a in at["C"]} == {"S", "T"}
        assert {a.relation for a in at["D"]} == {"T"}

    def test_no_variables(self):
        from repro.query.bcq import make_query

        assert atom_sets(make_query([("R", "")])) == {}


class TestWitness:
    def test_witness_structure_on_qnh(self):
        witness = find_non_hierarchical_witness(q_nh())
        assert witness is not None
        # A occurs in R and S but not T; B occurs in S and T but not R.
        assert witness.atom_s.contains(witness.variable_a)
        assert witness.atom_s.contains(witness.variable_b)
        assert witness.atom_r.contains(witness.variable_a)
        assert not witness.atom_r.contains(witness.variable_b)
        assert witness.atom_t.contains(witness.variable_b)
        assert not witness.atom_t.contains(witness.variable_a)

    def test_no_witness_for_hierarchical(self):
        assert find_non_hierarchical_witness(q_eq1()) is None

    def test_witness_on_chain(self):
        witness = find_non_hierarchical_witness(chain_query(3))
        assert witness is not None


class TestHierarchicalVsAcyclic:
    def test_qnh_is_acyclic_but_not_hierarchical(self):
        """The strict inclusion the paper stresses (Section 5.1)."""
        assert is_acyclic(q_nh())
        assert not is_hierarchical(q_nh())

    def test_hierarchical_implies_acyclic_on_random_queries(self):
        rng = random.Random(42)
        for _ in range(200):
            query = random_query(rng)
            if is_hierarchical(query):
                assert is_acyclic(query), f"hierarchical but cyclic: {query}"

    def test_triangle_is_cyclic(self):
        from repro.query.bcq import make_query

        triangle = make_query([("R", "AB"), ("S", "BC"), ("T", "AC")])
        assert not is_acyclic(triangle)
        assert not is_hierarchical(triangle)


class TestThreeDefinitionsAgree:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=150, deadline=None)
    def test_equivalence_on_random_queries(self, seed):
        query = random_query(random.Random(seed))
        pairwise = is_hierarchical(query)
        by_elimination = is_hierarchical_by_elimination(query)
        by_tree = is_hierarchical_by_tree(query)
        assert pairwise == by_elimination == by_tree, str(query)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=150, deadline=None)
    def test_generated_hierarchical_queries_are_hierarchical(self, seed):
        query = random_hierarchical_query(random.Random(seed))
        assert is_hierarchical(query)
        assert is_hierarchical_by_elimination(query)
        assert is_hierarchical_by_tree(query)
