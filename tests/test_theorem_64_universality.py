"""Direct tests of Theorem 6.4: the provenance 2-monoid is universal.

For every target 2-monoid K with a structure-respecting φ, running
Algorithm 1 in the provenance 2-monoid and then applying φ must equal running
Algorithm 1 directly in K with φ-mapped leaf annotations.  We test this
generically: random hierarchical queries, random databases, random
annotations, all implemented 2-monoids — with φ = `evaluate_tree`.
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid
from repro.algebra.provenance import (
    FreeProvenanceMonoid,
    ProvenanceMonoid,
    evaluate_tree,
    leaf,
)
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.core.algorithm import evaluate_hierarchical
from repro.query.families import random_hierarchical_query
from repro.workloads.generators import random_database


def _annotation_samplers():
    """(monoid, sampler) pairs covering every implemented 2-monoid."""
    bagset = BagSetMonoid(3)
    shapley = ShapleyMonoid(3)
    resilience = ResilienceMonoid()
    probability = ExactProbabilityMonoid()
    return [
        (CountingSemiring(), lambda rng: rng.randrange(0, 4)),
        (BooleanSemiring(), lambda rng: rng.random() < 0.7),
        (probability, lambda rng: Fraction(rng.randrange(0, 5), 4) / 1
            if rng.randrange(0, 5) <= 4 else Fraction(1)),
        (bagset, lambda rng: rng.choice(
            [bagset.zero, bagset.one, bagset.star, (0, 1, 2), (1, 1, 2)]
        )),
        (shapley, lambda rng: rng.choice(
            [shapley.zero, shapley.one, shapley.star]
        )),
        (resilience, lambda rng: rng.choice([0, 1, 2, resilience.one])),
    ]


class TestUniversality:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_phi_of_provenance_equals_direct_run(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        facts = list(database.facts())
        # One FREE-provenance run serves every target monoid; the free
        # monoid keeps `a ∧ false` subtrees, which non-annihilating targets
        # (Shapley) need.
        tree = evaluate_hierarchical(
            query, FreeProvenanceMonoid(), facts, lambda fact: leaf(fact)
        )
        for monoid, sampler in _annotation_samplers():
            annotation_rng = random.Random(seed + 1)
            annotations = {fact: sampler(annotation_rng) for fact in facts}
            direct = evaluate_hierarchical(
                query, monoid, facts, annotations.__getitem__
            )
            via_phi = evaluate_tree(
                tree, monoid,
                lambda symbol: annotations.get(symbol, monoid.zero),
            )
            assert monoid.eq(direct, via_phi), (
                f"Theorem 6.4 failed for {monoid.name} at seed {seed}: "
                f"direct={direct} φ(tree)={via_phi}"
            )

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_provenance_output_mentions_only_real_facts(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        tree = evaluate_hierarchical(
            query, ProvenanceMonoid(), database.facts(), lambda fact: leaf(fact)
        )
        assert tree.support <= set(database.facts())

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_truth_of_tree_matches_boolean_semantics(self, seed):
        """φ into the Boolean semiring is plain query evaluation."""
        from repro.algebra.provenance import truth_value
        from repro.db.evaluation import evaluates_true

        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        tree = evaluate_hierarchical(
            query, ProvenanceMonoid(), database.facts(), lambda fact: leaf(fact)
        )
        assert truth_value(tree, set(database.facts())) == (
            evaluates_true(query, database)
        )
