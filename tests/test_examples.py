"""Integration tests: every example script runs end to end.

The examples are the library's public face; they must execute cleanly with
the installed package and produce their headline claims.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"


def run_example(name: str, *args: str) -> str:
    # Child processes don't inherit pytest's `pythonpath` ini setting, so
    # make the package importable explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(SRC_DIR), env.get("PYTHONPATH")])
    )
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
        env=env,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


class TestExampleScripts:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "optimal Q(D') within budget 2: 4" in output
        assert "(1, 2, 4)" in output
        assert "119/256" in output
        assert "Shapley(R(1, 5)) = 1/2" in output

    def test_probabilistic_sensors(self):
        output = run_example("probabilistic_sensors.py")
        assert "unified algorithm" in output
        assert "brute force" in output
        assert "P[Alive]" in output

    def test_ad_campaign_repair(self):
        output = run_example("ad_campaign_repair.py")
        assert "optimal reach" in output
        assert "unified=" in output and "brute force=" in output

    def test_shapley_explanations(self):
        output = run_example("shapley_explanations.py")
        assert "#Sat(k)" in output
        assert "efficiency: Σ Shapley = 1 (gap = 0)" in output
        assert "null players" in output

    def test_hardness_demo(self):
        output = run_example("hardness_demo.py")
        assert "BSM decision says biclique exists: True" in output
        assert "optimal repair decodes back to the biclique" in output
        assert "BSM decision: False" in output

    def test_whatif_analysis(self):
        output = run_example("whatif_analysis.py")
        assert "per-vendor answer counts" in output
        assert "resilience = 2 deletions" in output
        assert "best achievable bag-set value: 6" in output
        assert "one elimination plan, four answers" in output

    def test_packed_shapley_tiers(self):
        # A small endogenous count keeps the scalar leg quick; the script
        # itself asserts bit-identical answers across every tier it runs.
        output = run_example("packed_shapley_tiers.py", "48")
        assert "#Sat(k) head:" in output
        assert "scalar" in output and "batched" in output
        assert "diverged" not in output

    def test_serve_http(self):
        output = run_example("serve_http.py")
        assert "GET /healthz -> 200 ok=True" in output
        assert "POST /v1/query -> 200" in output
        assert "POST /v1/stream -> 200" in output
        assert "GET /metrics -> 200" in output
        assert "0 failed" in output
        assert "front-end closed; scheduler drained" in output

    def test_run_all_experiments_subset(self):
        output = run_example("run_all_experiments.py", "E0", "E1")
        assert "E0: Figure 1 worked example" in output
        assert "E1: Elimination traces" in output

    def test_run_all_experiments_rejects_unknown(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(SRC_DIR), env.get("PYTHONPATH")])
        )
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "run_all_experiments.py"), "E99"],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert result.returncode != 0
        assert "unknown experiment" in result.stderr
