"""Tests for workload generators (determinism, shapes, validity)."""

from repro.db.schema import Schema
from repro.query.families import q_eq1, q_h, star_query
from repro.workloads.generators import (
    correlated_database,
    random_bagset_instance,
    random_database,
    random_probabilistic_database,
    random_shapley_instance,
    scale_database,
    star_database,
)
from repro.workloads.graphs import (
    cycle_graph,
    gnp_random_graph,
    path_graph,
    planted_biclique_graph,
)


class TestRandomDatabase:
    def test_deterministic(self):
        a = random_database(q_eq1(), 5, 10, seed=42)
        b = random_database(q_eq1(), 5, 10, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_database(q_eq1(), 10, 50, seed=1)
        b = random_database(q_eq1(), 10, 50, seed=2)
        assert a != b

    def test_respects_schema(self):
        database = random_database(q_eq1(), 5, 10, seed=0)
        database.validate_against(q_eq1())

    def test_approximate_size(self):
        database = random_database(q_eq1(), 10, 1000, seed=0)
        assert len(database) == 30

    def test_small_domain_caps_size(self):
        database = random_database(q_h(), 100, 2, seed=0)
        # E and F are binary over a 2-value domain: at most 4 tuples each.
        assert len(database) <= 8


class TestOtherGenerators:
    def test_correlated_database_joins(self):
        from repro.db.evaluation import count_satisfying_assignments

        database = correlated_database(q_h(), shared_values=2, branch_values=4, seed=0)
        assert count_satisfying_assignments(q_h(), database) > 0

    def test_probabilistic_database(self):
        pdb = random_probabilistic_database(q_eq1(), 4, 8, seed=0)
        for fact in pdb.facts():
            assert 0 < pdb.probability(fact) < 1

    def test_exact_probabilistic_database(self):
        from fractions import Fraction

        pdb = random_probabilistic_database(q_eq1(), 4, 8, seed=0, exact=True)
        assert all(
            isinstance(pdb.probability(f), Fraction) for f in pdb.facts()
        )

    def test_bagset_instance_disjoint(self):
        instance = random_bagset_instance(q_eq1(), 3, 4, budget=2, domain_size=3, seed=0)
        for fact in instance.repair_database.facts():
            assert fact not in instance.database

    def test_shapley_instance_partition(self):
        instance = random_shapley_instance(q_eq1(), 4, 4, seed=0)
        assert instance.endogenous_count >= 1
        for fact in instance.endogenous.facts():
            assert fact not in instance.exogenous

    def test_star_database_closed_form(self):
        query = star_query(2)
        database = star_database(query, hubs=3, spokes_per_hub=4)
        assert len(database) == 2 * 3 * 4

    def test_scale_database(self):
        database = random_database(q_eq1(), 5, 100, seed=0)
        sizes = scale_database(database, Schema.of_query(q_eq1()).relations)
        assert sum(sizes.values()) == len(database)


class TestGraphGenerators:
    def test_gnp_deterministic(self):
        assert gnp_random_graph(10, 0.5, seed=7).edges == (
            gnp_random_graph(10, 0.5, seed=7).edges
        )

    def test_gnp_extremes(self):
        assert gnp_random_graph(6, 0.0, seed=0).edge_count == 0
        assert gnp_random_graph(6, 1.0, seed=0).edge_count == 15

    def test_planted_biclique_edges_present(self):
        graph, part_one, part_two = planted_biclique_graph(10, 3, noise=0.0, seed=0)
        for u in part_one:
            for v in part_two:
                assert graph.has_edge(u, v)

    def test_planted_biclique_requires_room(self):
        import pytest

        with pytest.raises(ValueError):
            planted_biclique_graph(3, 2, noise=0.1, seed=0)

    def test_path_and_cycle(self):
        assert path_graph(5).edge_count == 4
        assert cycle_graph(5).edge_count == 5
        import pytest

        with pytest.raises(ValueError):
            cycle_graph(2)
