"""Tests for the extension features: expected answer count (real semiring),
Banzhaf values, and optimal-repair witness extraction."""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.laws import (
    check_two_monoid_laws,
    find_distributivity_violation,
)
from repro.algebra.real import RealSemiring
from repro.db.database import Database
from repro.db.evaluation import count_satisfying_assignments
from repro.db.fact import Fact
from repro.problems.bagset_max import (
    BagSetInstance,
    maximize,
    optimal_repair,
)
from repro.problems.expected_count import (
    expected_answer_count,
    expected_answer_count_brute_force,
    expected_answer_count_direct,
)
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.shapley import (
    banzhaf_value,
    banzhaf_value_brute_force,
    shapley_value,
)
from repro.query.families import q_eq1, q_h, q_nh, random_hierarchical_query
from repro.workloads.generators import (
    random_bagset_instance,
    random_probabilistic_database,
    random_shapley_instance,
)


class TestRealSemiring:
    def test_is_a_semiring(self):
        semiring = RealSemiring()
        samples = [0.0, 0.5, 1.0, 2.5]
        assert check_two_monoid_laws(semiring, samples) == []
        assert find_distributivity_violation(semiring, samples) is None
        assert semiring.annihilates

    def test_exact_mode(self):
        semiring = RealSemiring(exact=True)
        assert semiring.zero == Fraction(0)
        assert semiring.add(Fraction(1, 2), Fraction(1, 3)) == Fraction(5, 6)


class TestExpectedAnswerCount:
    def test_single_assignment_expectation(self):
        pdb = ProbabilisticDatabase(
            {
                Fact("E", (1, 2)): Fraction(1, 2),
                Fact("F", (2, 3)): Fraction(1, 3),
            }
        )
        assert expected_answer_count(q_h(), pdb, exact=True) == Fraction(1, 6)

    def test_linearity_over_two_assignments(self):
        pdb = ProbabilisticDatabase(
            {
                Fact("E", (1, 2)): Fraction(1, 2),
                Fact("F", (2, 3)): Fraction(1, 3),
                Fact("F", (2, 4)): Fraction(1, 5),
            }
        )
        expected = Fraction(1, 6) + Fraction(1, 10)
        assert expected_answer_count(q_h(), pdb, exact=True) == expected

    def test_certain_database_recovers_bag_count(self):
        db = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        pdb = ProbabilisticDatabase({f: Fraction(1) for f in db.facts()})
        assert expected_answer_count(q_eq1(), pdb, exact=True) == (
            count_satisfying_assignments(q_eq1(), db)
        )

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_three_routes_agree(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        pdb = random_probabilistic_database(
            query, facts_per_relation=2, domain_size=2, seed=rng, exact=True
        )
        if len(pdb) > 10:
            return
        unified = expected_answer_count(query, pdb, exact=True)
        direct = expected_answer_count_direct(query, pdb, exact=True)
        brute = expected_answer_count_brute_force(query, pdb, exact=True)
        assert unified == direct == brute

    def test_direct_route_handles_non_hierarchical_queries(self):
        """The semiring-vs-2-monoid contrast: E[Q(D)] stays easy for q_nh."""
        pdb = ProbabilisticDatabase(
            {
                Fact("R", (1,)): Fraction(1, 2),
                Fact("S", (1, 2)): Fraction(1, 2),
                Fact("T", (2,)): Fraction(1, 2),
            }
        )
        direct = expected_answer_count_direct(q_nh(), pdb, exact=True)
        brute = expected_answer_count_brute_force(q_nh(), pdb, exact=True)
        assert direct == brute == Fraction(1, 8)


class TestBanzhaf:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_agreement_with_brute_force(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_shapley_instance(
            query, facts_per_relation=2, domain_size=2, seed=rng
        )
        if instance.endogenous_count > 8:
            return
        for fact in list(instance.endogenous.facts())[:3]:
            assert banzhaf_value(query, instance, fact) == (
                banzhaf_value_brute_force(query, instance, fact)
            )

    def test_symmetric_two_fact_game(self, fig1_query, small_shapley_instance):
        """Both facts needed: each flips iff the other is present → 1/2."""
        for fact in small_shapley_instance.endogenous.facts():
            value = banzhaf_value(fig1_query, small_shapley_instance, fact)
            assert value == Fraction(1, 2)

    def test_banzhaf_and_shapley_can_differ(self):
        """A 3-player game where the indices disagree (no efficiency axiom
        for Banzhaf)."""
        query = q_h()
        instance_db = Database.from_relations(
            {"E": [(1, 2)], "F": [(2, 3), (2, 4)]}
        )
        from repro.problems.shapley import ShapleyInstance

        instance = ShapleyInstance(
            exogenous=Database(), endogenous=instance_db
        )
        e_fact = Fact("E", (1, 2))
        banzhaf = banzhaf_value(query, instance, e_fact)
        shapley = shapley_value(query, instance, e_fact)
        # E is critical whenever some F is in: 3 of 4 subsets → 3/4.
        assert banzhaf == Fraction(3, 4)
        assert shapley == Fraction(2, 3)


class TestOptimalRepair:
    def test_fig1_witness(self, fig1_query, fig1_instance):
        value, added = optimal_repair(fig1_query, fig1_instance)
        assert value == 4
        assert len(added) <= fig1_instance.budget
        repaired = fig1_instance.database.with_facts(added)
        assert count_satisfying_assignments(fig1_query, repaired) == 4
        # The paper names the optimal repair: R(1,6)/R(1,7) plus T(1,2,9).
        assert Fact("T", (1, 2, 9)) in added

    def test_zero_budget_returns_empty_witness(self, fig1_query, fig1_instance):
        instance = BagSetInstance(
            fig1_instance.database, fig1_instance.repair_database, budget=0
        )
        value, added = optimal_repair(fig1_query, instance)
        assert value == 1
        assert added == frozenset()

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_witness_achieves_the_optimum(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        instance = random_bagset_instance(
            query, base_facts_per_relation=2, repair_facts_per_relation=3,
            budget=2, domain_size=2, seed=rng,
        )
        value, added = optimal_repair(query, instance)
        assert value == maximize(query, instance)
        assert len(added) <= instance.budget
        assert added <= set(instance.addable_facts())
        repaired = instance.database.with_facts(added)
        assert count_satisfying_assignments(query, repaired) == value
