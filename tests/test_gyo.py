"""Tests for GYO acyclicity."""

from repro.query.bcq import make_query
from repro.query.families import chain_query, q_eq1, q_h, q_nh, star_query
from repro.query.gyo import is_acyclic


class TestAcyclicity:
    def test_hierarchical_examples_are_acyclic(self):
        assert is_acyclic(q_eq1())
        assert is_acyclic(q_h())
        assert is_acyclic(star_query(3))

    def test_qnh_is_acyclic(self):
        """The key separating example: acyclic yet not hierarchical."""
        assert is_acyclic(q_nh())

    def test_chains_are_acyclic(self):
        for length in (1, 2, 3, 6):
            assert is_acyclic(chain_query(length))

    def test_triangle_is_cyclic(self):
        triangle = make_query([("R", "AB"), ("S", "BC"), ("T", "AC")])
        assert not is_acyclic(triangle)

    def test_square_cycle_is_cyclic(self):
        square = make_query(
            [("R", "AB"), ("S", "BC"), ("T", "CD"), ("U", "DA")]
        )
        assert not is_acyclic(square)

    def test_triangle_with_guard_is_acyclic(self):
        guarded = make_query(
            [("R", "AB"), ("S", "BC"), ("T", "AC"), ("G", "ABC")]
        )
        assert is_acyclic(guarded)

    def test_single_atom(self):
        assert is_acyclic(make_query([("R", "ABC")]))
        assert is_acyclic(make_query([("R", "")]))

    def test_disconnected_acyclic(self):
        assert is_acyclic(make_query([("R", "A"), ("S", "B")]))
