"""Tests for the Algorithm 1 executor over various 2-monoids.

The counting semiring gives a strong engine cross-check: annotating every
present fact with 1 and running Algorithm 1 must yield exactly ``Q(D)`` under
bag-set semantics (the backtracking evaluator's count), because (N, +, ×)
distributes.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.polynomial import PolynomialSemiring, monomial_supports, variable
from repro.core.algorithm import evaluate_hierarchical, execute_plan, run_algorithm
from repro.core.instrument import CountingMonoid
from repro.core.plan import compile_plan
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.db.evaluation import count_satisfying_assignments, evaluates_true
from repro.exceptions import NotHierarchicalError
from repro.query.families import (
    q_disconnected,
    q_eq1,
    q_h,
    q_nh,
    random_hierarchical_query,
    star_query,
)
from repro.workloads.generators import random_database, star_database


def _counting_result(query, database):
    return evaluate_hierarchical(
        query, CountingSemiring(), database.facts(), lambda _f: 1
    )


class TestCountingCrossCheck:
    def test_fig1_database(self):
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        assert _counting_result(q_eq1(), database) == 1

    def test_star_closed_form(self):
        query = star_query(3)
        database = star_database(query, hubs=3, spokes_per_hub=2)
        assert _counting_result(query, database) == 3 * 8

    def test_empty_database(self):
        assert _counting_result(q_h(), Database()) == 0

    def test_disconnected_query_product(self):
        database = Database.from_relations({"R": [(1,), (2,)], "S": [(7,)]})
        assert _counting_result(q_disconnected(), database) == 2

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=75, deadline=None)
    def test_agrees_with_backtracking_on_random_inputs(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=4, domain_size=3, seed=rng
        )
        assert _counting_result(query, database) == (
            count_satisfying_assignments(query, database)
        )


class TestBooleanCrossCheck:
    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=75, deadline=None)
    def test_agrees_with_boolean_evaluation(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=4, max_atoms=4)
        database = random_database(
            query, facts_per_relation=3, domain_size=3, seed=rng
        )
        unified = evaluate_hierarchical(
            query, BooleanSemiring(), database.facts(), lambda _f: True
        )
        assert unified == evaluates_true(query, database)


class TestPolynomialCrossCheck:
    def test_monomials_are_assignment_supports(self):
        """N[X] provenance: one monomial per satisfying assignment, whose
        variables are exactly the assignment's facts."""
        query = q_h()
        database = Database.from_relations(
            {"E": [(1, 2), (1, 3)], "F": [(2, 5), (3, 7)]}
        )
        result = evaluate_hierarchical(
            query, PolynomialSemiring(), database.facts(),
            lambda fact: variable(fact),
        )
        from repro.db.fact import Fact

        expected = {
            frozenset({Fact("E", (1, 2)), Fact("F", (2, 5))}),
            frozenset({Fact("E", (1, 3)), Fact("F", (3, 7))}),
        }
        assert monomial_supports(result) == expected


class TestExecution:
    def test_run_algorithm_rejects_non_hierarchical(self):
        database = Database.from_relations({"R": [(1,)], "S": [(1, 2)], "T": [(2,)]})
        annotated = KDatabase.from_database(q_nh(), CountingSemiring(), database)
        with pytest.raises(NotHierarchicalError):
            run_algorithm(q_nh(), annotated)

    def test_execute_plan_report(self):
        query = q_eq1()
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        plan = compile_plan(query)
        annotated = KDatabase.from_database(query, CountingSemiring(), database)
        report = execute_plan(plan, annotated)
        assert report.result == 1
        assert report.steps_executed == len(plan.steps)
        assert report.max_live_support <= annotated.size()

    def test_step_hook_sees_every_step(self):
        query = q_eq1()
        database = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1)], "T": [(1, 1, 4)]}
        )
        seen = []
        annotated = KDatabase.from_database(query, CountingSemiring(), database)
        plan = compile_plan(query)
        execute_plan(plan, annotated, on_step=lambda step, rel: seen.append(step))
        assert seen == list(plan.steps)

    def test_policies_agree(self):
        query = star_query(3)
        database = star_database(query, hubs=2, spokes_per_hub=2)
        results = {
            evaluate_hierarchical(
                query, CountingSemiring(), database.facts(), lambda _f: 1,
                policy=policy,
            )
            for policy in ("rule1_first", "rule2_first")
        }
        assert len(results) == 1


class TestOperationCount:
    """Theorem 6.7: the number of ⊕/⊗ applications is O(|D|)."""

    def test_linear_operation_bound(self):
        query = q_eq1()
        ratios = []
        for per_relation in (50, 100, 200, 400):
            database = random_database(
                query, per_relation, domain_size=per_relation, seed=per_relation
            )
            counting = CountingMonoid(CountingSemiring())
            evaluate_hierarchical(query, counting, database.facts(), lambda _f: 1)
            ratios.append(counting.operation_count / len(database))
        # ops per fact stays bounded by a constant as |D| quadruples.
        assert max(ratios) <= 4 * min(ratios) + 1
        assert max(ratios) < 10

    def test_counting_monoid_delegation(self):
        counting = CountingMonoid(CountingSemiring())
        assert counting.add(2, 3) == 5
        assert counting.mul(2, 3) == 6
        assert counting.add_count == 1
        assert counting.mul_count == 1
        assert counting.operation_count == 2
        counting.reset()
        assert counting.operation_count == 0
        assert counting.zero == 0
        assert counting.one == 1
        assert counting.annihilates
