"""Unit tests for repro.query.bcq."""

import pytest

from repro.exceptions import NotSelfJoinFreeError, QueryError
from repro.query.atoms import Atom
from repro.query.bcq import BCQ, make_query
from repro.query.families import q_eq1, q_nh


class TestConstruction:
    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            BCQ(())

    def test_make_query(self):
        q = make_query([("R", "AB"), ("S", "AC")])
        assert len(q) == 2
        assert q.atoms[0] == Atom("R", ("A", "B"))

    def test_str_rendering(self):
        q = make_query([("R", "AB"), ("S", "AC")])
        assert str(q) == "Q() :- R(A, B) ∧ S(A, C)"

    def test_custom_name(self):
        q = make_query([("R", "A")], name="Boolean")
        assert str(q).startswith("Boolean() :-")


class TestStructure:
    def test_variables(self):
        assert q_eq1().variables == frozenset({"A", "B", "C", "D"})

    def test_relation_symbols(self):
        assert q_eq1().relation_symbols == ("R", "S", "T")

    def test_atoms_with(self):
        q = q_eq1()
        at_a = q.atoms_with("A")
        assert len(at_a) == 3
        at_d = q.atoms_with("D")
        assert len(at_d) == 1
        assert at_d[0].relation == "T"

    def test_atoms_with_unknown_variable(self):
        assert q_eq1().atoms_with("Z") == ()

    def test_atom_for(self):
        assert q_eq1().atom_for("S") == Atom("S", ("A", "C"))

    def test_atom_for_unknown_raises(self):
        with pytest.raises(QueryError):
            q_eq1().atom_for("Missing")

    def test_is_boolean_true_form(self):
        assert BCQ((Atom("R", ()),)).is_boolean_true_form
        assert not q_eq1().is_boolean_true_form
        assert not BCQ((Atom("R", ()), Atom("S", ()))).is_boolean_true_form

    def test_iteration(self):
        assert list(q_nh()) == list(q_nh().atoms)


class TestSelfJoinFreeness:
    def test_sjf_query(self):
        assert q_eq1().is_self_join_free
        q_eq1().require_self_join_free()

    def test_self_join_detected(self):
        q = BCQ((Atom("R", ("A",)), Atom("R", ("B",))))
        assert not q.is_self_join_free
        with pytest.raises(NotSelfJoinFreeError):
            q.require_self_join_free()


class TestRewriting:
    def test_replace_atom(self):
        q = q_eq1()
        old = q.atom_for("T")
        new = Atom("T'", ("A", "C"))
        rewritten = q.replace_atom(old, new)
        assert new in rewritten.atoms
        assert old not in rewritten.atoms
        assert len(rewritten) == 3

    def test_replace_missing_atom_raises(self):
        with pytest.raises(QueryError):
            q_eq1().replace_atom(Atom("Z", ()), Atom("Z'", ()))

    def test_merge_atoms(self):
        q = make_query([("R1", "AB"), ("R2", "AB"), ("S", "A")])
        merged = q.merge_atoms(
            q.atoms[0], q.atoms[1], Atom("R'", ("A", "B"))
        )
        assert len(merged) == 2
        assert merged.atoms[0] == Atom("R'", ("A", "B"))

    def test_merge_preserves_position_of_first(self):
        q = make_query([("S", "A"), ("R1", "AB"), ("R2", "AB")])
        merged = q.merge_atoms(q.atoms[1], q.atoms[2], Atom("R'", ("A", "B")))
        assert merged.atoms[1].relation == "R'"

    def test_merge_same_atom_raises(self):
        q = make_query([("R", "AB"), ("S", "A")])
        with pytest.raises(QueryError):
            q.merge_atoms(q.atoms[0], q.atoms[0], Atom("R'", ("A", "B")))

    def test_merge_missing_atom_raises(self):
        q = make_query([("R", "AB"), ("S", "A")])
        with pytest.raises(QueryError):
            q.merge_atoms(q.atoms[0], Atom("Z", ("A", "B")), Atom("W", ("A", "B")))
