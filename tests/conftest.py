"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import pytest
from hypothesis import strategies as st

from repro.db.database import Database
from repro.problems.bagset_max import BagSetInstance
from repro.problems.shapley import ShapleyInstance
from repro.query.families import q_eq1, q_h, q_nh


@pytest.fixture
def fig1_query():
    """The query of Eq. (1): Q() :- R(A,B) ∧ S(A,C) ∧ T(A,C,D)."""
    return q_eq1()


@pytest.fixture
def fig1_instance(fig1_query):
    """The exact Bag-Set Maximization instance of Figure 1 (θ = 2)."""
    database = Database.from_relations(
        {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
    )
    repair = Database.from_relations(
        {"R": [(1, 6), (1, 7)], "S": [], "T": [(1, 1, 4), (1, 2, 9)]}
    )
    return BagSetInstance(database, repair, budget=2)


@pytest.fixture
def hierarchical_query():
    return q_h()


@pytest.fixture
def non_hierarchical_query():
    return q_nh()


@pytest.fixture
def small_shapley_instance(fig1_query):
    return ShapleyInstance(
        exogenous=Database.from_relations({"S": [(1, 1), (1, 2)]}),
        endogenous=Database.from_relations({"R": [(1, 5)], "T": [(1, 2, 4)]}),
    )


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
def monotone_vectors(length: int, max_value: int = 6):
    """Strategy for monotone natural vectors of a fixed length."""
    return st.lists(
        st.integers(min_value=0, max_value=max_value),
        min_size=length, max_size=length,
    ).map(lambda deltas: tuple_prefix_sums(deltas))


def tuple_prefix_sums(deltas):
    total = 0
    out = []
    for delta in deltas:
        total += delta
        out.append(total)
    return tuple(out)


def seeds():
    return st.integers(min_value=0, max_value=10_000)


@pytest.fixture
def rng():
    return random.Random(0)
