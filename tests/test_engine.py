"""Tests for the unified evaluation engine (Engine / EngineSession).

Covers the tentpole guarantees of the subsystem:

* one session answers every problem family with outputs identical to the
  one-shot front-ends (bit-identical for the exact carriers);
* the bulk ψ-annotation path is equivalent to the per-fact ``set`` loop;
* the Shapley mutate-restore reduction leaves the session state intact and
  reuses packed big-int operands across requests;
* ``IncrementalEvaluator`` maintains identical results under both
  ``kernel_mode`` settings.
"""

from __future__ import annotations

import math
import random
from fractions import Fraction

import pytest

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.algebra.tropical import MaxPlusSemiring
from repro.core.incremental import IncrementalEvaluator
from repro.core.kernels import kernel_for
from repro.core.plan import PLAN_CACHE_SIZE, set_plan_cache_size
from repro.db.annotated import KDatabase, KRelation
from repro.db.database import Database
from repro.db.fact import Fact
from repro.engine import Engine
from repro.exceptions import ReproError, SchemaError
from repro.problems.expected_count import expected_answer_count
from repro.problems.pqe import marginal_probability
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.resilience import ResilienceInstance, resilience
from repro.problems.shapley import (
    ShapleyInstance,
    annotation_psi,
    banzhaf_value_brute_force,
    efficiency_gap,
    sat_counts,
    shapley_value_by_permutations,
)
from repro.query.families import q_eq1, star_query
from repro.query.parser import parse_query
from repro.workloads.generators import (
    random_probabilistic_database,
    random_shapley_instance,
)


def _split(query, exogenous: int, endogenous: int, seed: int):
    """A probabilistic database plus an exo/endo split of its support."""
    database = random_probabilistic_database(
        query,
        facts_per_relation=(exogenous + endogenous) // 2 + 2,
        domain_size=8,
        seed=seed,
    )
    facts = list(database.support_database().facts())
    random.Random(seed).shuffle(facts)
    endo = Database(facts[:endogenous])
    exo = Database(facts[endogenous:endogenous + exogenous])
    return database, exo, endo


class TestEngineConfig:
    def test_rejects_unknown_kernel_mode(self):
        with pytest.raises(ReproError, match="kernel mode"):
            Engine(kernel_mode="vectorized")

    def test_rejects_unknown_policy_name(self):
        with pytest.raises(ReproError, match="policy"):
            Engine(policy="fastest_first")

    def test_accepts_callable_policy(self):
        engine = Engine(policy=lambda steps1, steps2: (steps1 + steps2)[0])
        assert callable(engine.policy)

    def test_unknown_monoid_family(self):
        with pytest.raises(ReproError, match="no monoid registered"):
            Engine().create_monoid("lattice")

    def test_register_monoid_is_per_engine(self):
        engine = Engine()
        engine.register_monoid("tropical", MaxPlusSemiring)
        assert "tropical" in engine.monoid_families()
        assert "tropical" not in Engine().monoid_families()

    def test_default_families(self):
        families = Engine().monoid_families()
        for family in ("probability", "expectation", "shapley", "bagset",
                       "resilience"):
            assert family in families

    def test_plan_cache_size_configuration(self):
        original = PLAN_CACHE_SIZE
        try:
            Engine(plan_cache_size=7)
            assert Engine().plan_cache_info()["max_size"] == 7
            with pytest.raises(ReproError, match="positive"):
                set_plan_cache_size(0)
        finally:
            set_plan_cache_size(original)

    def test_repr_mentions_policy_and_mode(self):
        text = repr(Engine(policy="min_support", kernel_mode="scalar"))
        assert "min_support" in text and "scalar" in text


class TestBulkAnnotation:
    """`KDatabase.annotate` (bulk) ≡ the per-fact ``set`` loop."""

    MONOIDS = [
        ProbabilityMonoid(),
        ExactProbabilityMonoid(),
        CountingSemiring(),
        ResilienceMonoid(),
        ShapleyMonoid(5),
        BagSetMonoid(4),
    ]

    @pytest.mark.parametrize("monoid", MONOIDS, ids=lambda m: m.name)
    def test_matches_per_fact_loop(self, monoid):
        query = q_eq1()
        rng = random.Random(17)
        facts = [
            Fact("R", (rng.randrange(4), rng.randrange(4))) for _ in range(20)
        ] + [
            Fact("S", (rng.randrange(4), rng.randrange(4))) for _ in range(20)
        ] + [
            Fact("T", (rng.randrange(4), rng.randrange(4), rng.randrange(4)))
            for _ in range(20)
        ]
        choices = [monoid.zero, monoid.one]
        if hasattr(monoid, "star"):
            choices.append(monoid.star)

        def psi(fact):
            return choices[hash((fact.relation, fact.values, 13)) % len(choices)]

        bulk = KDatabase.annotate(query, monoid, facts, psi)
        per_fact = KDatabase(query, monoid)
        for fact in facts:
            per_fact.set(fact, psi(fact))
        for left, right in zip(bulk.relations(), per_fact.relations()):
            assert left.atom == right.atom
            assert list(left.items()) == list(right.items())

    def test_last_occurrence_wins(self):
        query = parse_query("Q() :- R(X)")
        monoid = CountingSemiring()
        facts = [Fact("R", (1,)), Fact("R", (1,))]
        annotations = iter([3, 7])
        annotated = KDatabase.annotate(
            query, monoid, facts, lambda _fact: next(annotations)
        )
        assert annotated.annotation(Fact("R", (1,))) == 7

    def test_trailing_zero_deletes(self):
        query = parse_query("Q() :- R(X)")
        monoid = CountingSemiring()
        annotations = iter([3, 0])
        annotated = KDatabase.annotate(
            query, monoid, [Fact("R", (1,)), Fact("R", (1,))],
            lambda _fact: next(annotations),
        )
        assert annotated.size() == 0

    def test_bulk_load_merges_with_set_semantics(self):
        monoid = CountingSemiring()
        query = parse_query("Q() :- R(X)")
        relation = KRelation(query.atoms[0], monoid)
        relation.bulk_load([(1,), (2,)], [5, 6])
        relation.bulk_load([(2,), (3,)], [0, 9])  # zero deletes (2,)
        assert dict(relation.items()) == {(1,): 5, (3,): 9}

    def test_bulk_load_arity_mismatch(self):
        monoid = CountingSemiring()
        query = parse_query("Q() :- R(X)")
        relation = KRelation(query.atoms[0], monoid)
        with pytest.raises(SchemaError, match="arity"):
            relation.bulk_load([(1, 2)], [1])

    def test_bulk_load_length_mismatch(self):
        monoid = CountingSemiring()
        query = parse_query("Q() :- R(X)")
        relation = KRelation(query.atoms[0], monoid)
        with pytest.raises(SchemaError, match="annotations"):
            relation.bulk_load([(1,), (2,)], [1])

    def test_unknown_relation_raises(self):
        query = parse_query("Q() :- R(X)")
        with pytest.raises(SchemaError, match="U"):
            KDatabase.annotate(
                query, CountingSemiring(), [Fact("U", (1,))], lambda _f: 1
            )

    def test_relation_copy_is_independent(self):
        monoid = CountingSemiring()
        query = parse_query("Q() :- R(X)")
        relation = KRelation(query.atoms[0], monoid, {(1,): 4})
        clone = relation.copy()
        clone.set((1,), 9)
        assert relation.annotation((1,)) == 4


class TestSessionReuse:
    """One session, many requests — identical to the one-shot front-ends."""

    def test_pqe_then_shapley_then_resilience_same_database(self):
        query = star_query(2)
        database, exo, endo = _split(query, exogenous=14, endogenous=8, seed=3)
        instance = ShapleyInstance(exogenous=exo, endogenous=endo)
        rinstance = ResilienceInstance(exogenous=exo, endogenous=endo)

        session = Engine().open(
            query, probabilistic=database, exogenous=exo, endogenous=endo
        )
        assert session.pqe() == marginal_probability(query, database)
        assert session.sat_counts() == sat_counts(query, instance)
        assert session.resilience() == resilience(query, rinstance)
        # Bit-identical exact carriers on the same session.
        assert session.pqe(exact=True) == marginal_probability(
            query, database, exact=True
        )
        assert session.expected_count() == expected_answer_count(
            query, database
        )
        assert session.expected_count(exact=True) == expected_answer_count(
            query, database, exact=True
        )

    def test_annotation_built_once_per_family(self):
        query = star_query(2)
        database, exo, endo = _split(query, exogenous=10, endogenous=6, seed=5)
        session = Engine().open(
            query, probabilistic=database, exogenous=exo, endogenous=endo
        )
        for _ in range(4):
            session.pqe()
            session.sat_vector()
            session.resilience()
        stats = session.stats()
        assert stats["evaluations"] == 12
        assert stats["annotation_builds"] == 3  # pqe + shapley + resilience
        assert stats["annotated_databases"] == 3

    def test_shapley_values_match_shifted_instance_reduction(self):
        """The mutate-restore loop ≡ the literal forced/removed reduction."""
        query = q_eq1()
        instance = random_shapley_instance(
            query, facts_per_relation=5, endogenous_fraction=0.6,
            domain_size=3, seed=11,
        )
        session = Engine().open(
            query, exogenous=instance.exogenous, endogenous=instance.endogenous
        )
        n = instance.endogenous_count
        n_factorial = math.factorial(n)
        for fact in instance.endogenous.facts():
            without = instance.endogenous.without_facts([fact])
            forced = ShapleyInstance(
                exogenous=instance.exogenous.with_facts([fact]),
                endogenous=without,
            )
            removed = ShapleyInstance(
                exogenous=instance.exogenous, endogenous=without
            )
            with_f = sat_counts(query, forced)
            without_f = sat_counts(query, removed)
            expected = sum(
                (
                    Fraction(
                        math.factorial(k) * math.factorial(n - k - 1),
                        n_factorial,
                    )
                    * (with_f[k] - without_f[k])
                    for k in range(n)
                ),
                Fraction(0),
            )
            assert session.shapley_value(fact) == expected

    def test_shapley_axioms_on_session(self):
        query = q_eq1()
        instance = random_shapley_instance(
            query, facts_per_relation=4, endogenous_fraction=0.5,
            domain_size=3, seed=23,
        )
        assert efficiency_gap(query, instance) == 0
        session = Engine().open(
            query, exogenous=instance.exogenous, endogenous=instance.endogenous
        )
        facts = list(instance.endogenous.facts())[:2]
        for fact in facts:
            assert session.shapley_value(fact) == shapley_value_by_permutations(
                query, instance, fact
            )
            assert session.banzhaf_value(fact) == banzhaf_value_brute_force(
                query, instance, fact
            )

    def test_mutation_is_restored_after_value_requests(self):
        query = q_eq1()
        instance = random_shapley_instance(
            query, facts_per_relation=4, endogenous_fraction=0.5,
            domain_size=3, seed=29,
        )
        session = Engine().open(
            query, exogenous=instance.exogenous, endogenous=instance.endogenous
        )
        before = session.sat_vector()
        session.shapley_values()
        session.banzhaf_values()
        assert session.sat_vector() == before

    def test_shapley_value_rejects_non_endogenous_fact(self):
        query = parse_query("Q() :- R(X)")
        session = Engine().open(
            query,
            exogenous=Database([Fact("R", (1,))]),
            endogenous=Database([Fact("R", (2,))]),
        )
        with pytest.raises(ReproError, match="endogenous"):
            session.shapley_value(Fact("R", (1,)))

    def test_bagset_profiles_share_annotation_per_length(self, fig1_query,
                                                         fig1_instance):
        from repro.problems.bagset_max import maximize_profile

        session = Engine().open(
            fig1_query,
            database=fig1_instance.database,
            repair=fig1_instance.repair_database,
        )
        for budget in (0, 1, 2):
            expected = maximize_profile(
                fig1_query,
                type(fig1_instance)(
                    fig1_instance.database,
                    fig1_instance.repair_database,
                    budget,
                ),
            )
            assert session.bagset_profile(budget) == expected
        assert session.maximize(2) == 4  # the Figure 1 optimum

    def test_grouped_requests(self):
        from repro.core.grouped import evaluate_grouped

        query = parse_query("Q() :- R(X,Y), S(X)")
        database = Database.from_relations(
            {"R": [(1, 1), (1, 2), (2, 5)], "S": [(1,), (2,)]}
        )
        monoid = CountingSemiring()
        session = Engine().open(query, database=database)
        answer = session.grouped(["X"], monoid)
        reference = evaluate_grouped(
            query, ["X"], monoid, database.facts(), lambda _fact: 1
        )
        assert dict(answer.items()) == dict(reference.items())
        # The compiled grouped plan is session-cached.
        assert session.grouped_plan(["X"]) is session.grouped_plan(["X"])

    def test_raw_annotated_run(self, fig1_query):
        monoid = CountingSemiring()
        annotated = KDatabase.from_database(
            fig1_query,
            monoid,
            Database.from_relations(
                {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
            ),
        )
        session = Engine().open(fig1_query, annotated=annotated)
        assert session.run() == 1  # the Figure 1 "no repair" count

    def test_missing_sources_raise(self, fig1_query):
        session = Engine().open(fig1_query)
        with pytest.raises(ReproError, match="probabilistic"):
            session.pqe()
        with pytest.raises(ReproError, match="endogenous"):
            session.sat_vector()
        with pytest.raises(ReproError, match="resilience"):
            session.resilience()
        with pytest.raises(ReproError, match="base database"):
            session.bagset_profile(1)
        with pytest.raises(ReproError, match="pre-annotated"):
            session.run()

    def test_policies_and_kernel_modes_agree_on_session(self):
        query = star_query(2)
        database, exo, endo = _split(query, exogenous=12, endogenous=6, seed=7)
        reference = None
        for policy in ("rule1_first", "rule2_first", "min_support"):
            for kernel_mode in ("auto", "scalar"):
                session = Engine(
                    policy=policy, kernel_mode=kernel_mode
                ).open(query, probabilistic=database,
                       exogenous=exo, endogenous=endo)
                outcome = (session.sat_counts(), session.resilience())
                if reference is None:
                    reference = outcome
                else:
                    assert outcome == reference

    def test_clear_drops_cached_state(self):
        query = star_query(2)
        database, exo, endo = _split(query, exogenous=8, endogenous=4, seed=9)
        session = Engine().open(
            query, probabilistic=database, exogenous=exo, endogenous=endo
        )
        before = session.pqe()
        session.clear()
        assert session.stats()["annotated_databases"] == 0
        assert session.pqe() == before


class TestPackedOperandReuse:
    def test_session_reuses_packed_operands_across_requests(self):
        query = star_query(2)
        _, exo, endo = _split(query, exogenous=20, endogenous=12, seed=13)
        # Pin the batched tier: it owns the packed-operand caches under
        # test (the default auto mode now serves this workload from the
        # packed columnar tier, which only consults them on overflow).
        session = Engine(kernel_mode="batched").open(
            query, exogenous=exo, endogenous=endo
        )
        first = session.sat_vector()
        kernel = kernel_for(session._monoids["shapley"])
        warm = kernel.cache_info()
        # Packed operands were already reused across fold steps in run one …
        assert warm["packed"] > 0
        assert warm["pack_hits"] > 0
        second = session.sat_vector()
        assert second == first
        hot = kernel.cache_info()
        # … and the second run is served from the caches: cached products
        # short-circuit the convolutions, so nothing is ever re-packed.
        assert hot["pack_misses"] == warm["pack_misses"]
        assert hot["products"] > 0
        assert session.stats()["shapley_kernel"] == hot

    def test_cache_clear_preserves_results(self):
        query = star_query(2)
        _, exo, endo = _split(query, exogenous=10, endogenous=8, seed=19)
        session = Engine().open(query, exogenous=exo, endogenous=endo)
        first = session.sat_vector()
        kernel = kernel_for(session._monoids["shapley"])
        kernel.clear_caches()
        assert kernel.cache_info()["packed"] == 0
        assert session.sat_vector() == first


class TestIncrementalKernelModes:
    MONOIDS = [
        ("probability", ProbabilityMonoid(), lambda rng: rng.random()),
        ("counting", CountingSemiring(), lambda rng: rng.randrange(5)),
    ]

    def _updates(self, query, rng, count=12):
        atoms = list(query.atoms)
        for _ in range(count):
            atom = rng.choice(atoms)
            values = tuple(rng.randrange(3) for _ in range(atom.arity))
            yield Fact(atom.relation, values)

    @pytest.mark.parametrize(
        "monoid,draw", [(m, d) for _n, m, d in MONOIDS],
        ids=[n for n, _m, _d in MONOIDS],
    )
    def test_auto_and_scalar_evaluators_agree(self, monoid, draw):
        query = q_eq1()
        auto = IncrementalEvaluator(
            query, KDatabase(query, monoid), kernel_mode="auto"
        )
        scalar = IncrementalEvaluator(
            query, KDatabase(query, monoid), kernel_mode="scalar"
        )
        rng = random.Random(31)
        for fact in self._updates(query, rng):
            annotation = draw(rng)
            assert auto.update(fact, annotation) == pytest.approx(
                scalar.update(fact, annotation)
            )

    def test_shapley_evaluator_agrees_across_modes(self):
        query = q_eq1()
        instance = random_shapley_instance(
            query, facts_per_relation=4, endogenous_fraction=0.5,
            domain_size=3, seed=37,
        )
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        psi = annotation_psi(instance, monoid)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = KDatabase.annotate(query, monoid, facts, psi)
        auto = IncrementalEvaluator(query, annotated, kernel_mode="auto")
        scalar = IncrementalEvaluator(query, annotated, kernel_mode="scalar")
        assert auto.result == scalar.result
        for fact in list(instance.endogenous.facts())[:3]:
            assert auto.delete(fact) == scalar.delete(fact)

    def test_session_incremental_matches_fresh_runs(self):
        from repro.core.algorithm import run_algorithm

        query = parse_query("Q() :- R(X), S(X,Y)")
        database = Database.from_relations(
            {"R": [(1,), (2,)], "S": [(1, 1), (2, 3)]}
        )
        monoid = CountingSemiring()
        session = Engine(kernel_mode="scalar").open(query, database=database)
        evaluator = session.incremental(monoid)
        rng = random.Random(41)
        for fact in self._updates(query, rng, count=8):
            annotation = rng.randrange(4)
            result = evaluator.update(fact, annotation)
            fresh = KDatabase(query, monoid)
            for atom in query.atoms:
                relation = evaluator._stages[atom.relation]
                fresh._relations[atom.relation] = relation.copy()
            assert result == run_algorithm(query, fresh)


class TestEngineBenchScenario:
    def test_quick_engine_scenario_agrees(self):
        from repro.bench.perf import run_perf_suite

        document = run_perf_suite(["engine"], quick=True, repeats=1)
        experiment = document["experiments"]["engine"]
        assert experiment["agree"]
        assert experiment["annotation"]["identical"]
        assert document["summary"]["engine"]["agree"]
