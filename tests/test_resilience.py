"""Tests for the resilience instantiation (our Question-2 extension).

Resilience — the minimum number of endogenous deletions that falsify a true
query — is computed by Algorithm 1 over the (N ∪ {∞}, +, min) 2-monoid.
Validated against subset-enumeration brute force on random instances.
"""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.laws import (
    check_two_monoid_laws,
    find_distributivity_violation,
)
from repro.algebra.resilience import ResilienceMonoid
from repro.db.database import Database
from repro.db.evaluation import evaluates_true
from repro.problems.resilience import (
    ResilienceInstance,
    contingency_set,
    resilience,
    resilience_brute_force,
    resilience_of_database,
    resilience_via_lineage,
)
from repro.query.families import q_eq1, q_h, random_hierarchical_query
from repro.workloads.generators import random_database


class TestResilienceMonoid:
    def test_identities(self):
        monoid = ResilienceMonoid()
        assert monoid.zero == 0
        assert monoid.one == math.inf
        assert monoid.add(3, monoid.zero) == 3
        assert monoid.mul(3, monoid.one) == 3

    def test_operations(self):
        monoid = ResilienceMonoid()
        assert monoid.add(2, 3) == 5      # falsify both disjuncts
        assert monoid.mul(2, 3) == 2      # falsify the cheaper conjunct
        assert monoid.mul(monoid.zero, monoid.zero) == 0

    def test_laws(self):
        monoid = ResilienceMonoid()
        samples = [0, 1, 2, 5, math.inf]
        assert check_two_monoid_laws(monoid, samples) == []

    def test_not_distributive(self):
        """min(a, b+c) ≠ min(a,b) + min(a,c): again a 2-monoid, not a semiring."""
        monoid = ResilienceMonoid()
        assert find_distributivity_violation(monoid, [1, 2, 3]) is not None
        left = monoid.mul(1, monoid.add(1, 1))
        right = monoid.add(monoid.mul(1, 1), monoid.mul(1, 1))
        assert left == 1 and right == 2


class TestHandComputedCases:
    def test_false_query_has_resilience_zero(self):
        assert resilience_of_database(q_h(), Database()) == 0

    def test_single_witness_needs_one_deletion(self):
        db = Database.from_relations({"E": [(1, 2)], "F": [(2, 3)]})
        assert resilience_of_database(q_h(), db) == 1

    def test_two_disjoint_witnesses_need_two(self):
        db = Database.from_relations(
            {"E": [(1, 2), (5, 6)], "F": [(2, 3), (6, 7)]}
        )
        assert resilience_of_database(q_h(), db) == 2

    def test_shared_fact_is_the_cheap_cut(self):
        # One E fact feeding two F facts: deleting the E fact kills both.
        db = Database.from_relations({"E": [(1, 2)], "F": [(2, 3), (2, 4)]})
        assert resilience_of_database(q_h(), db) == 1

    def test_exogenous_only_witness_is_unfalsifiable(self):
        instance = ResilienceInstance(
            exogenous=Database.from_relations({"E": [(1, 2)], "F": [(2, 3)]}),
            endogenous=Database(),
        )
        assert resilience(q_h(), instance) == math.inf

    def test_exogenous_facts_force_the_other_cut(self):
        instance = ResilienceInstance(
            exogenous=Database.from_relations({"E": [(1, 2)]}),
            endogenous=Database.from_relations({"F": [(2, 3), (2, 4)]}),
        )
        # The cheap E-cut is unavailable; both F facts must go.
        assert resilience(q_h(), instance) == 2

    def test_fig1_resilience(self):
        db = Database.from_relations(
            {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
        )
        # The single satisfying assignment dies with any of R(1,5), S(1,2),
        # or T(1,2,4).
        assert resilience_of_database(q_eq1(), db) == 1


class TestAgainstBruteForce:
    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=40, deadline=None)
    def test_agreement_on_random_instances(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        facts = list(database.facts())
        rng.shuffle(facts)
        split = len(facts) // 3
        instance = ResilienceInstance(
            exogenous=Database(facts[:split]),
            endogenous=Database(facts[split:]),
        )
        if len(instance.endogenous) > 10:
            return
        unified = resilience(query, instance)
        brute = resilience_brute_force(query, instance)
        assert unified == brute

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=25, deadline=None)
    def test_lineage_route_agrees(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        instance = ResilienceInstance.fully_endogenous(database)
        assert resilience(query, instance) == resilience_via_lineage(query, instance)


class TestContingencySet:
    def test_deleting_the_set_falsifies(self):
        db = Database.from_relations(
            {"E": [(1, 2), (5, 6)], "F": [(2, 3), (6, 7)]}
        )
        instance = ResilienceInstance.fully_endogenous(db)
        chosen = contingency_set(q_h(), instance)
        assert chosen is not None
        assert len(chosen) == resilience(q_h(), instance) == 2
        assert not evaluates_true(q_h(), db.without_facts(chosen))

    def test_false_query_gives_empty_set(self):
        instance = ResilienceInstance.fully_endogenous(Database())
        assert contingency_set(q_h(), instance) == frozenset()

    def test_unfalsifiable_gives_none(self):
        instance = ResilienceInstance(
            exogenous=Database.from_relations({"E": [(1, 2)], "F": [(2, 3)]}),
            endogenous=Database(),
        )
        assert contingency_set(q_h(), instance) is None

    @given(seed=st.integers(min_value=0, max_value=50_000))
    @settings(max_examples=20, deadline=None)
    def test_extracted_sets_are_optimal_on_random_instances(self, seed):
        rng = random.Random(seed)
        query = random_hierarchical_query(rng, max_variables=3, max_atoms=3)
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=rng
        )
        instance = ResilienceInstance.fully_endogenous(database)
        value = resilience(query, instance)
        if math.isinf(value):
            return
        chosen = contingency_set(query, instance)
        assert chosen is not None
        assert len(chosen) == value
        if value > 0:
            full = instance.full_database()
            assert not evaluates_true(query, full.without_facts(chosen))
