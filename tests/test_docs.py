"""Documentation consistency: doctests and declared public API."""

import doctest

import repro
import repro.query.bcq


class TestDoctests:
    def test_package_quickstart_doctest(self):
        """The README-mirrored doctest in repro/__init__.py must pass."""
        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0

    def test_bcq_doctest(self):
        results = doctest.testmod(repro.query.bcq, verbose=False)
        assert results.failed == 0


class TestPublicAPI:
    def test_all_names_resolve(self):
        """Every name in repro.__all__ must actually exist."""
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name!r}"

    def test_subpackage_all_names_resolve(self):
        import repro.algebra
        import repro.core
        import repro.db
        import repro.hardness
        import repro.problems
        import repro.query
        import repro.workloads

        for module in (
            repro.algebra, repro.core, repro.db, repro.hardness,
            repro.problems, repro.query, repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (
                    f"{module.__name__}.__all__ lists missing {name!r}"
                )

    def test_version_is_exposed(self):
        assert repro.__version__

    def test_public_functions_have_docstrings(self):
        """Every public callable on the top-level API carries a docstring."""
        import inspect

        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"missing docstrings: {missing}"
