from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'A Unifying Algorithm for Hierarchical Queries' "
        "(PODS 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    extras_require={
        # Optional columnar (numpy) execution tier for flat-carrier
        # monoids; the engine falls back to the pure-Python batched
        # kernels when numpy is absent.
        "fast": ["numpy>=1.22"],
    },
)
