#!/usr/bin/env python
"""Documentation gate for the CI docs job.

Two checks, both fast and dependency-free:

* **Docstring coverage** — every public callable (function, class, or
  public method of a public class) in ``src/repro/engine`` and
  ``src/repro/serve`` must carry a docstring.  These are the layers the
  serving documentation points at; an undocumented entry point there is a
  docs regression, not a style nit.
* **Internal links** — every relative link target in ``ARCHITECTURE.md``
  and ``README.md`` must exist in the repository, so the documentation
  map never silently rots as files move.

Run from the repository root::

    python tools/check_docs.py

Exits non-zero listing every violation.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

#: Packages (or single modules) whose public callables must all be
#: documented.  ``repro.core.fused`` rides along with the serving layers:
#: the scheduler's batching contract is defined by its docstrings.
DOCUMENTED_PACKAGES = (
    "repro.engine",
    "repro.serve",
    "repro.serve.http",
    "repro.core.fused",
    "repro.obs",
)

#: Markdown documents whose relative links must resolve.
LINKED_DOCUMENTS = ("ARCHITECTURE.md", "README.md")

_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def _iter_modules(package_name: str):
    package = importlib.import_module(package_name)
    yield package
    for info in pkgutil.iter_modules(
        getattr(package, "__path__", ()), prefix=package_name + "."
    ):
        yield importlib.import_module(info.name)


def _public_callables(module):
    """(qualified name, object) for the module's public callable surface."""
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if inspect.isfunction(obj) or inspect.isclass(obj):
            yield f"{module.__name__}.{name}", obj
            if inspect.isclass(obj):
                for attr, member in vars(obj).items():
                    if attr.startswith("_"):
                        continue
                    if inspect.isfunction(member) or isinstance(
                        member, (property, classmethod, staticmethod)
                    ):
                        yield f"{module.__name__}.{name}.{attr}", member


def missing_docstrings() -> list[str]:
    missing = []
    for package in DOCUMENTED_PACKAGES:
        for module in _iter_modules(package):
            if not (module.__doc__ or "").strip():
                missing.append(f"{module.__name__} (module)")
            for qualified, obj in _public_callables(module):
                target = obj
                if isinstance(obj, (classmethod, staticmethod)):
                    target = obj.__func__
                elif isinstance(obj, property):
                    target = obj.fget
                if not (getattr(target, "__doc__", "") or "").strip():
                    missing.append(qualified)
    return missing


def broken_links() -> list[str]:
    broken = []
    for name in LINKED_DOCUMENTS:
        document = REPO_ROOT / name
        if not document.exists():
            broken.append(f"{name}: document missing")
            continue
        for target in _LINK.findall(document.read_text(encoding="utf-8")):
            if "://" in target or target.startswith("mailto:"):
                continue
            if not (REPO_ROOT / target).exists():
                broken.append(f"{name}: broken link -> {target}")
    return broken


def main() -> int:
    failures = 0
    undocumented = missing_docstrings()
    if undocumented:
        failures += len(undocumented)
        print("public callables without docstrings:")
        for entry in undocumented:
            print(f"  {entry}")
    links = broken_links()
    if links:
        failures += len(links)
        print("unresolved documentation links:")
        for entry in links:
            print(f"  {entry}")
    if failures:
        print(f"\n{failures} documentation violation(s)")
        return 1
    print("documentation checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
