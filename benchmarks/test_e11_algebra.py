"""E11 — 2-monoid operation micro-benchmarks and the law census table."""

import pytest
from conftest import save_experiment

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.bench.experiments import run_e11_law_census


def test_bench_probability_ops(benchmark):
    monoid = ProbabilityMonoid()

    def ops():
        return monoid.add(0.3, monoid.mul(0.5, 0.7))

    assert 0.0 <= benchmark(ops) <= 1.0


@pytest.mark.parametrize("length", [9, 33, 129])
def test_bench_bagset_convolution(benchmark, length):
    monoid = BagSetMonoid(length)
    x = tuple(range(length))
    y = monoid.star

    def ops():
        return monoid.add(x, monoid.mul(x, y))

    result = benchmark(ops)
    assert len(result) == length


@pytest.mark.parametrize("length", [9, 33, 129])
def test_bench_shapley_convolution(benchmark, length):
    monoid = ShapleyMonoid(length)
    star = monoid.star
    x = monoid.add(star, star)

    def ops():
        return monoid.add(x, monoid.mul(x, star))

    result = benchmark(ops)
    assert result.length == length


def test_e11_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e11_law_census, rounds=1, iterations=1)
    save_experiment(result, results_dir)
