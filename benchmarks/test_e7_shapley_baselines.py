"""E7 — Shapley: exact (#Sat) vs permutation definition vs Monte Carlo."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e7_shapley_vs_baselines
from repro.problems.shapley import (
    shapley_value,
    shapley_value_by_permutations,
    shapley_value_monte_carlo,
)
from repro.query.families import q_eq1
from repro.workloads.generators import random_shapley_instance


@pytest.fixture(scope="module")
def instance():
    return random_shapley_instance(
        q_eq1(), facts_per_relation=2, domain_size=2,
        endogenous_fraction=0.8, seed=7,
    )


@pytest.fixture(scope="module")
def fact(instance):
    return list(instance.endogenous.facts())[0]


def test_bench_shapley_exact(benchmark, instance, fact):
    value = benchmark(shapley_value, q_eq1(), instance, fact)
    assert 0 <= value <= 1


def test_bench_shapley_permutations(benchmark, instance, fact):
    value = benchmark.pedantic(
        shapley_value_by_permutations, args=(q_eq1(), instance, fact),
        rounds=3, iterations=1,
    )
    assert 0 <= value <= 1


def test_bench_shapley_monte_carlo_1000(benchmark, instance, fact):
    value = benchmark.pedantic(
        shapley_value_monte_carlo, args=(q_eq1(), instance, fact, 1000),
        rounds=3, iterations=1,
    )
    assert 0 <= value <= 1


def test_e7_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e7_shapley_vs_baselines, rounds=1, iterations=1)
    save_experiment(result, results_dir)
