"""E4 — Theorem 5.11: BSM runtime O((|D| + |Dr|) · |Dr|²)."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e4_bsm_scaling
from repro.problems.bagset_max import BagSetInstance, maximize
from repro.query.families import star_query
from repro.workloads.generators import random_bagset_instance


@pytest.mark.parametrize("base_size", [200, 800])
def test_bench_bsm_base_sweep(benchmark, base_size):
    query = star_query(2)
    instance = random_bagset_instance(
        query, base_facts_per_relation=base_size // 2,
        repair_facts_per_relation=8, budget=8,
        domain_size=max(8, base_size // 4), seed=base_size,
    )
    value = benchmark(maximize, query, instance)
    assert value >= 0


@pytest.mark.parametrize("repair_size", [16, 64])
def test_bench_bsm_repair_sweep(benchmark, repair_size):
    query = star_query(2)
    instance = random_bagset_instance(
        query, base_facts_per_relation=100,
        repair_facts_per_relation=repair_size // 2, budget=repair_size,
        domain_size=50, seed=repair_size,
    )
    theta = len(instance.repair_database)
    instance = BagSetInstance(instance.database, instance.repair_database, theta)
    value = benchmark(maximize, query, instance)
    assert value >= 0


def test_e4_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e4_bsm_scaling, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
