"""E13 — the semiring/2-monoid boundary measured on q_nh."""

from conftest import save_experiment

from repro.bench.experiments import run_e13_semiring_contrast
from repro.problems.expected_count import expected_answer_count_direct
from repro.problems.pqe import marginal_probability_brute_force
from repro.query.families import q_nh
from repro.workloads.generators import random_probabilistic_database


def _workload(size: int):
    return random_probabilistic_database(
        q_nh(), facts_per_relation=size // 3, domain_size=3, seed=size
    )


def test_bench_expected_count_on_qnh(benchmark):
    pdb = _workload(12)
    value = benchmark(expected_answer_count_direct, q_nh(), pdb)
    assert value >= 0


def test_bench_probability_brute_force_on_qnh(benchmark):
    pdb = _workload(12)
    value = benchmark.pedantic(
        marginal_probability_brute_force, args=(q_nh(), pdb),
        rounds=2, iterations=1,
    )
    assert 0.0 <= value <= 1.0


def test_e13_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e13_semiring_contrast, rounds=1, iterations=1)
    save_experiment(result, results_dir)
