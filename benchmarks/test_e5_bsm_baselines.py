"""E5 — BSM: unified vs brute force vs greedy."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e5_bsm_vs_baselines
from repro.problems.bagset_max import (
    maximize,
    maximize_brute_force,
    maximize_greedy,
)
from repro.query.families import q_eq1
from repro.workloads.generators import random_bagset_instance


@pytest.fixture(scope="module")
def instance():
    return random_bagset_instance(
        q_eq1(), base_facts_per_relation=3, repair_facts_per_relation=4,
        budget=3, domain_size=3, seed=5,
    )


def test_bench_unified(benchmark, instance):
    value = benchmark(maximize, q_eq1(), instance)
    assert value >= 0


def test_bench_brute_force(benchmark, instance):
    value = benchmark.pedantic(
        maximize_brute_force, args=(q_eq1(), instance), rounds=3, iterations=1
    )
    assert value >= 0


def test_bench_greedy(benchmark, instance):
    value = benchmark(maximize_greedy, q_eq1(), instance)
    assert value >= 0


def test_e5_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e5_bsm_vs_baselines, rounds=1, iterations=1)
    save_experiment(result, results_dir)
