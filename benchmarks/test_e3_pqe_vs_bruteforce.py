"""E3 — PQE: unified algorithm vs possible-world enumeration."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e3_pqe_vs_bruteforce
from repro.problems.pqe import (
    marginal_probability,
    marginal_probability_brute_force,
)
from repro.query.families import q_eq1
from repro.workloads.generators import random_probabilistic_database


@pytest.fixture(scope="module")
def small_pdb():
    return random_probabilistic_database(
        q_eq1(), facts_per_relation=4, domain_size=3, seed=12
    )


def test_bench_unified_small(benchmark, small_pdb):
    probability = benchmark(marginal_probability, q_eq1(), small_pdb)
    assert 0.0 <= probability <= 1.0


def test_bench_brute_force_small(benchmark, small_pdb):
    probability = benchmark.pedantic(
        marginal_probability_brute_force, args=(q_eq1(), small_pdb),
        rounds=3, iterations=1,
    )
    assert 0.0 <= probability <= 1.0


def test_e3_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e3_pqe_vs_bruteforce, rounds=1, iterations=1)
    save_experiment(result, results_dir)
