"""E14 — extension: free-variable (per-answer) evaluation."""

import pytest
from conftest import save_experiment

from repro.algebra.counting import CountingSemiring
from repro.algebra.probability import ProbabilityMonoid
from repro.bench.experiments import run_e14_grouped
from repro.core.grouped import compile_grouped_plan, evaluate_grouped
from repro.query.families import star_query
from repro.workloads.generators import (
    random_database,
    random_probabilistic_database,
)


@pytest.mark.parametrize("size", [1000, 4000])
def test_bench_grouped_probability(benchmark, size):
    query = star_query(2)
    pdb = random_probabilistic_database(
        query, facts_per_relation=size // 2, domain_size=size // 3, seed=size
    )

    def run():
        return evaluate_grouped(
            query, {"X"}, ProbabilityMonoid(), pdb.facts(),
            lambda fact: pdb.probability(fact),
        )

    answers = benchmark(run)
    assert len(answers) > 0


def test_bench_grouped_counting(benchmark):
    query = star_query(3)
    database = random_database(
        query, facts_per_relation=2000, domain_size=700, seed=14
    )

    def run():
        return evaluate_grouped(
            query, {"X"}, CountingSemiring(), database.facts(), lambda _f: 1
        )

    answers = benchmark(run)
    assert len(answers) >= 0


def test_bench_compile_grouped_plan(benchmark):
    query = star_query(8)
    plan = benchmark(compile_grouped_plan, query, {"X"})
    assert plan.final_relation


def test_e14_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e14_grouped, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
