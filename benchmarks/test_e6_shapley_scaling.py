"""E6 — Theorem 5.16: #Sat runtime O((|Dx| + |Dn|) · |Dn|²)."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import _split_instance, run_e6_shapley_scaling
from repro.problems.shapley import sat_counts
from repro.query.families import star_query


@pytest.mark.parametrize("endogenous", [8, 32])
def test_bench_sat_counts_endogenous_sweep(benchmark, endogenous):
    query = star_query(2)
    instance = _split_instance(query, exogenous=40, endogenous=endogenous,
                               seed=endogenous)
    counts = benchmark(sat_counts, query, instance)
    assert len(counts) == instance.endogenous_count + 1


@pytest.mark.parametrize("exogenous", [100, 400])
def test_bench_sat_counts_exogenous_sweep(benchmark, exogenous):
    query = star_query(2)
    instance = _split_instance(query, exogenous=exogenous, endogenous=12,
                               seed=exogenous)
    counts = benchmark(sat_counts, query, instance)
    assert len(counts) == instance.endogenous_count + 1


def test_e6_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e6_shapley_scaling, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
