"""E10 — ablation: elimination-order policies (Proposition 5.1 confluence)."""

import pytest
from conftest import save_experiment

from repro.algebra.probability import ProbabilityMonoid
from repro.bench.experiments import run_e10_order_ablation
from repro.core.algorithm import evaluate_hierarchical
from repro.query.families import star_query
from repro.workloads.generators import random_probabilistic_database


@pytest.fixture(scope="module")
def workload():
    query = star_query(4)
    database = random_probabilistic_database(
        query, facts_per_relation=800, domain_size=3000, seed=10
    )
    return query, database


@pytest.mark.parametrize("policy", ["rule1_first", "rule2_first"])
def test_bench_policy(benchmark, workload, policy):
    query, database = workload

    def run():
        return evaluate_hierarchical(
            query, ProbabilityMonoid(), database.facts(),
            lambda fact: database.probability(fact), policy=policy,
        )

    probability = benchmark(run)
    assert 0.0 <= probability <= 1.0


def test_e10_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e10_order_ablation, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
