"""E15 — extension: incremental maintenance under updates."""

import random

import pytest
from conftest import save_experiment

from repro.algebra.probability import ProbabilityMonoid
from repro.bench.experiments import run_e15_incremental
from repro.core.incremental import IncrementalEvaluator
from repro.db.annotated import KDatabase
from repro.db.fact import Fact
from repro.query.families import q_eq1
from repro.workloads.generators import random_probabilistic_database


@pytest.mark.parametrize("size", [1000, 8000])
def test_bench_incremental_update(benchmark, size):
    query = q_eq1()
    database = random_probabilistic_database(
        query, facts_per_relation=size // 3, domain_size=max(4, size // 6),
        seed=size,
    )
    monoid = ProbabilityMonoid()
    annotated = KDatabase.annotate(
        query, monoid, database.facts(), lambda fact: database.probability(fact)
    )
    evaluator = IncrementalEvaluator(query, annotated)
    rng = random.Random(size)

    def one_update():
        fact = Fact("R", (rng.randrange(size), rng.randrange(size)))
        return evaluator.update(fact, 0.5)

    probability = benchmark(one_update)
    assert 0.0 <= probability <= 1.0


def test_bench_evaluator_construction(benchmark):
    query = q_eq1()
    database = random_probabilistic_database(
        query, facts_per_relation=1000, domain_size=500, seed=15
    )
    monoid = ProbabilityMonoid()
    annotated = KDatabase.annotate(
        query, monoid, database.facts(), lambda fact: database.probability(fact)
    )
    evaluator = benchmark(IncrementalEvaluator, query, annotated)
    assert 0.0 <= evaluator.result <= 1.0


def test_e15_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e15_incremental, kwargs={"updates": 100}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
