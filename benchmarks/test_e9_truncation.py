"""E9 — ablation: bag-set vector truncation (the Theorem 5.11 lever)."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e9_truncation_ablation
from repro.problems.bagset_max import maximize_profile
from repro.query.families import star_query
from repro.workloads.generators import random_bagset_instance


@pytest.fixture(scope="module")
def workload():
    query = star_query(2)
    instance = random_bagset_instance(
        query, base_facts_per_relation=150, repair_facts_per_relation=10,
        budget=8, domain_size=60, seed=9,
    )
    return query, instance


@pytest.mark.parametrize("multiplier", [1, 4])
def test_bench_profile_at_length(benchmark, workload, multiplier):
    query, instance = workload
    length = (instance.budget + 1) * multiplier
    profile = benchmark(maximize_profile, query, instance, length)
    assert len(profile) == length


def test_e9_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e9_truncation_ablation, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
