"""E2 — Theorem 5.8: PQE runtime is O(|D|)."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e2_pqe_scaling
from repro.problems.pqe import marginal_probability
from repro.query.families import q_eq1
from repro.workloads.generators import random_probabilistic_database


@pytest.mark.parametrize("size", [1000, 4000, 16000])
def test_bench_pqe_unified(benchmark, size):
    query = q_eq1()
    database = random_probabilistic_database(
        query, facts_per_relation=size // 3, domain_size=max(4, size // 6),
        seed=size,
    )
    probability = benchmark(marginal_probability, query, database)
    assert 0.0 <= probability <= 1.0


def test_e2_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e2_pqe_scaling, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
