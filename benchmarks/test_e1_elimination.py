"""E1 — elimination-procedure benchmarks and the Examples 5.2–5.4 table."""

from conftest import save_experiment

from repro.bench.experiments import run_e1_elimination_examples
from repro.core.plan import compile_plan
from repro.query.elimination import eliminate
from repro.query.families import q_eq1, star_query, telescope_query


def test_bench_eliminate_eq1(benchmark):
    trace = benchmark(eliminate, q_eq1())
    assert trace.success


def test_bench_eliminate_star_16(benchmark):
    query = star_query(16)
    trace = benchmark(eliminate, query)
    assert trace.success


def test_bench_eliminate_telescope_16(benchmark):
    query = telescope_query(16)
    trace = benchmark(eliminate, query)
    assert trace.success


def test_bench_compile_plan(benchmark):
    plan = benchmark(compile_plan, q_eq1())
    assert plan.final_relation


def test_e1_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e1_elimination_examples, rounds=1, iterations=1)
    save_experiment(result, results_dir)
