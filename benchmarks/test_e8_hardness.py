"""E8 — Theorem 4.4: the BCBS → BSM reduction and its exponential cost."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e8_hardness
from repro.hardness.bcbs import has_balanced_biclique
from repro.hardness.reduction import decide_bsm_decision_smart, reduce_bcbs
from repro.query.families import q_nh
from repro.workloads.graphs import planted_biclique_graph


@pytest.mark.parametrize("k", [1, 2])
def test_bench_reduction_construction(benchmark, k):
    graph, _, _ = planted_biclique_graph(n=2 * k + 2, k=k, noise=0.3, seed=k)
    output = benchmark(reduce_bcbs, q_nh(), graph, k)
    assert output.target == k * k


@pytest.mark.parametrize("k", [1, 2])
def test_bench_bsm_decision_via_reduction(benchmark, k):
    graph, _, _ = planted_biclique_graph(n=2 * k + 2, k=k, noise=0.3, seed=k)
    output = reduce_bcbs(q_nh(), graph, k)
    answer = benchmark.pedantic(
        decide_bsm_decision_smart, args=(output,), rounds=2, iterations=1
    )
    assert answer == has_balanced_biclique(graph, k)


def test_bench_bcbs_direct(benchmark):
    graph, _, _ = planted_biclique_graph(n=10, k=3, noise=0.3, seed=3)
    found = benchmark(has_balanced_biclique, graph, 3)
    assert found


def test_e8_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e8_hardness, rounds=1, iterations=1)
    save_experiment(result, results_dir)
