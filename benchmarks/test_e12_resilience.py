"""E12 — extension: resilience via the (N ∪ {∞}, +, min) 2-monoid."""

import pytest
from conftest import save_experiment

from repro.bench.experiments import run_e12_resilience
from repro.problems.resilience import (
    ResilienceInstance,
    resilience,
    resilience_brute_force,
)
from repro.query.families import q_eq1
from repro.workloads.generators import correlated_database, random_database


@pytest.mark.parametrize("size", [500, 2000])
def test_bench_resilience_unified(benchmark, size):
    query = q_eq1()
    database = correlated_database(
        query, shared_values=size // 10, branch_values=size, seed=size
    )
    instance = ResilienceInstance.fully_endogenous(database)
    value = benchmark(resilience, query, instance)
    assert value >= 0


def test_bench_resilience_brute_force(benchmark):
    query = q_eq1()
    database = random_database(query, facts_per_relation=3, domain_size=2, seed=1)
    instance = ResilienceInstance.fully_endogenous(database)
    value = benchmark.pedantic(
        resilience_brute_force, args=(query, instance), rounds=3, iterations=1
    )
    assert value == resilience(query, instance)


def test_e12_table(benchmark, results_dir):
    result = benchmark.pedantic(
        run_e12_resilience, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    save_experiment(result, results_dir)
