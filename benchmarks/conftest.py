"""Shared helpers for the benchmark suite.

Every benchmark module both (a) micro-benchmarks its core operation with
pytest-benchmark and (b) regenerates its experiment table (the EXPERIMENTS.md
artifact), writing it to ``bench_results/`` and echoing it to stdout.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_experiment(result, results_dir: Path) -> None:
    """Persist an ExperimentResult table and echo it for the bench log."""
    rendered = result.render()
    path = results_dir / f"{result.experiment_id}.txt"
    path.write_text(rendered + "\n", encoding="utf-8")
    sys.stdout.write("\n" + rendered + "\n")
