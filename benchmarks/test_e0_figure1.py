"""E0 — the Figure 1 worked example (micro-bench + table)."""

from conftest import save_experiment

from repro.bench.experiments import figure1_instance, run_e0_figure1
from repro.problems.bagset_max import maximize, maximize_brute_force


def test_bench_fig1_unified(benchmark):
    query, instance = figure1_instance()
    result = benchmark(maximize, query, instance)
    assert result == 4


def test_bench_fig1_brute_force(benchmark):
    query, instance = figure1_instance()
    result = benchmark(maximize_brute_force, query, instance)
    assert result == 4


def test_e0_table(benchmark, results_dir):
    result = benchmark.pedantic(run_e0_figure1, rounds=1, iterations=1)
    save_experiment(result, results_dir)
