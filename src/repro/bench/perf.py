"""Scalar-vs-kernel performance suite: the ``BENCH_perf.json`` trajectory.

Reruns the hot workloads of three scaling experiments — E2 (probabilistic
query evaluation), E4 (bag-set maximization) and E6 (Shapley ``#Sat``) —
twice per configuration: once through the batched kernel engine
(``kernel_mode="auto"``) and once through the per-tuple scalar baseline
(``kernel_mode="scalar"``), asserting answer agreement and recording wall
times and speedups in a machine-readable document.  ``repro bench --json
BENCH_perf.json`` regenerates the artifact; future PRs compare against it to
keep the perf trajectory monotone.

The ``quick`` mode shrinks every sweep to sub-second sizes; the tier-1 smoke
test uses it to assert kernel/scalar agreement without timing anything.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Callable

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.bench.harness import time_callable
from repro.core.algorithm import execute_plan
from repro.core.plan import compile_plan
from repro.db.annotated import KDatabase
from repro.problems.bagset_max import annotation_psi as bagset_psi
from repro.problems.shapley import annotation_psi as shapley_psi
from repro.query.families import q_eq1, star_query
from repro.workloads.generators import (
    random_bagset_instance,
    random_probabilistic_database,
)

#: Format version of the BENCH_perf.json document.
SCHEMA_VERSION = 1


def _measure_plan(
    query, annotated: KDatabase, repeats: int
) -> tuple[dict, object, object]:
    """Time one compiled plan over *annotated*: scalar engine vs kernels.

    The annotated database is built once and the plan compiled once, so the
    two timings isolate the engine (Algorithm 1's ⊕-projections and
    ⊗-merges) — the component the kernel subsystem replaces.
    """
    plan = compile_plan(query)
    scalar_time, scalar_report = time_callable(
        lambda: execute_plan(plan, annotated, kernel_mode="scalar"),
        repeats=repeats,
    )
    kernel_time, kernel_report = time_callable(
        lambda: execute_plan(plan, annotated, kernel_mode="auto"),
        repeats=repeats,
    )
    record = {
        "scalar_s": scalar_time,
        "kernel_s": kernel_time,
        "speedup": scalar_time / max(kernel_time, 1e-12),
    }
    return record, scalar_report.result, kernel_report.result


def perf_e2_pqe(quick: bool = False, repeats: int = 3) -> dict:
    """E2: PQE on the Eq. (1) query — float probabilities, tolerance check."""
    sizes = (300, 900) if quick else (500, 1000, 2000, 4000, 8000)
    repeats = 1 if quick else repeats
    query = q_eq1()
    runs = []
    agree = True
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=size,
        )
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(), database.facts(), database.probability
        )
        record, scalar, kernel = _measure_plan(query, annotated, repeats)
        record["params"] = {"|D|": len(database)}
        record["abs_delta"] = abs(scalar - kernel)
        agree = agree and record["abs_delta"] <= 1e-9
        runs.append(record)
    return {
        "title": "PQE (Theorem 5.8): marginal probability on q_eq1",
        "agreement": "max |Δ| ≤ 1e-9" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_e4_bsm(quick: bool = False, repeats: int = 3) -> dict:
    """E4: bag-set maximization — exact vectors, identity check."""
    sizes = (100,) if quick else (200, 400, 800, 1600)
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        instance = random_bagset_instance(
            query, base_facts_per_relation=size // 2,
            repair_facts_per_relation=16, budget=16,
            domain_size=max(8, size // 4), seed=size,
        )
        monoid = BagSetMonoid(instance.budget + 1)
        facts = [*instance.database.facts(), *instance.addable_facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, bagset_psi(instance, monoid)
        )
        record, scalar, kernel = _measure_plan(query, annotated, repeats)
        record["params"] = {
            "|D|": len(instance.database),
            "|Dr|": len(instance.repair_database),
            "θ": instance.budget,
        }
        record["identical"] = scalar == kernel
        agree = agree and record["identical"]
        runs.append(record)
    return {
        "title": "Bag-set maximization (Theorem 5.11) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_e6_shapley(quick: bool = False, repeats: int = 3) -> dict:
    """E6: the Shapley ``#Sat`` vector — exact big-int vectors."""
    from repro.bench.experiments import _split_instance

    sizes = (12, 24) if quick else (16, 32, 64, 128, 256)
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        instance = _split_instance(
            query, exogenous=40, endogenous=size, seed=size
        )
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, shapley_psi(instance, monoid)
        )
        record, scalar, kernel = _measure_plan(query, annotated, repeats)
        record["params"] = {
            "|Dx|": len(instance.exogenous),
            "|Dn|": instance.endogenous_count,
        }
        record["identical"] = scalar == kernel
        agree = agree and record["identical"]
        runs.append(record)
    return {
        "title": "Shapley #Sat vector (Theorem 5.16) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


PERF_EXPERIMENTS: dict[str, Callable[..., dict]] = {
    "E2": perf_e2_pqe,
    "E4": perf_e4_bsm,
    "E6": perf_e6_shapley,
}


def run_perf_suite(
    ids: list[str] | None = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Run the requested perf experiments and return the JSON document."""
    requested = ids or list(PERF_EXPERIMENTS)
    unknown = [name for name in requested if name not in PERF_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown perf experiment id(s) {unknown}; "
            f"expected a subset of {sorted(PERF_EXPERIMENTS)}"
        )
    experiments = {
        name: PERF_EXPERIMENTS[name](quick=quick, repeats=repeats)
        for name in requested
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "quick": quick,
        "experiments": experiments,
        "summary": {
            name: {
                "max_speedup": max(r["speedup"] for r in exp["runs"]),
                "largest_config_speedup": exp["runs"][-1]["speedup"],
                "agree": exp["agree"],
            }
            for name, exp in experiments.items()
        },
    }


def write_perf_json(document: dict, path: str | Path) -> Path:
    """Write *document* to *path* as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def render_perf_summary(document: dict) -> str:
    """Human-readable digest of a perf document for the CLI."""
    lines = []
    for name, experiment in document["experiments"].items():
        lines.append(f"== {name}: {experiment['title']} ==")
        for run in experiment["runs"]:
            params = ", ".join(
                f"{key}={value}" for key, value in run["params"].items()
            )
            lines.append(
                f"  {params:<28} scalar {run['scalar_s']:.4f}s  "
                f"kernel {run['kernel_s']:.4f}s  "
                f"speedup {run['speedup']:.1f}x"
            )
        lines.append(f"  agreement: {experiment['agreement']}")
    return "\n".join(lines)
