"""Performance suite: the ``BENCH_perf.json`` trajectory.

Two kinds of measurements:

* **scalar vs kernel vs array** — reruns the hot workloads of four scaling
  experiments (E2 PQE, E4 bag-set maximization, E6 Shapley ``#Sat``, and
  the ``res`` resilience stream) once per execution tier and configuration:
  the per-tuple scalar baseline (``kernel_mode="scalar"``), the batched
  kernel engine (``kernel_mode="batched"``), and — with numpy installed —
  the columnar array tier (``kernel_mode="array"``): scalar columns for the
  flat carriers of E2/``res``, **packed 2-D vector rows** for the bag-set
  and Shapley carriers of E4/E6, asserting answer agreement across all
  tiers (bit-identical for the exact carriers).  Array timings run against
  the cached columnar views (the session serving story): the dict → column
  materialization is paid on the first run and amortized thereafter, which
  best-of-N timing reflects.  With numpy the sharded process-parallel tier
  (``kernel_mode="sharded"``, auto-selection threshold forced to zero) is
  timed as well, and the largest E2/``res`` configurations run a
  1/2/4/8-process ``shard_scaling`` sweep — interpret its curve against
  ``environment.cpu_count``.
* **amortized session throughput** (the ``engine`` scenario) — replays a
  mixed request stream (PQE + Shapley ``#Sat`` + resilience, several rounds)
  over **one** database, once through the one-shot front-ends (fresh
  ψ-annotation and session per call) and once through a single long-lived
  :class:`~repro.engine.EngineSession` that reuses the annotated databases,
  monoid kernels and packed big-int Shapley operands across every request.
  It also times the bulk ψ-annotation build against the per-fact ``set``
  loop on the E6 largest configuration.

``repro bench --json BENCH_perf.json`` regenerates the artifact, and
``repro bench --compare OLD.json NEW.json`` diffs two artifacts so the perf
trajectory stays reviewable across PRs.  The ``quick`` mode shrinks every
sweep to sub-second sizes; the tier-1 smoke test uses it to assert
agreement without timing anything.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Callable

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.bench.harness import time_callable
from repro.core.algorithm import execute_plan
from repro.core.kernels import array_kernel_for, numpy_or_none
from repro.core.plan import compile_plan
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.obs import quantile
from repro.problems.bagset_max import annotation_psi as bagset_psi
from repro.problems.resilience import ResilienceInstance
from repro.problems.resilience import annotation_psi as resilience_psi
from repro.problems.shapley import ShapleyInstance
from repro.problems.shapley import annotation_psi as shapley_psi
from repro.query.families import q_eq1, star_query
from repro.workloads.generators import (
    random_bagset_instance,
    random_probabilistic_database,
)

#: Format version of the BENCH_perf.json document.  v3 added the ``tiers``
#: and ``environment`` fields plus per-run ``array_s``/``array_vs_kernel``;
#: v4 added the ``serve`` scenario (scheduler throughput and p50/p95
#: latency per worker count, one run per execution tier); v5 extends the
#: three-way scalar/batched/array runs to the vector-carrier experiments
#: (E4 bag-set, E6 Shapley) served by the packed columnar tier; v6 adds
#: the process-parallel **sharded** tier (``sharded_s`` per run, a serve
#: leg, and the ``shard_scaling`` worker sweeps on E2/``res``) plus
#: ``cpu_count`` in the environment so scaling numbers are interpretable;
#: v7 adds the ``multiquery`` scenario — shared-scan fusion
#: (:mod:`repro.core.fused`) vs sequential one-shots over a Zipf-skewed
#: binding sweep, per tier, with per-batch-size ``sequential_s``/
#: ``fused_s``/``speedup`` sub-records.
SCHEMA_VERSION = 7


def environment_metadata() -> dict:
    """Interpreter/platform/numpy metadata recorded in the document."""
    import os

    np = numpy_or_none()
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "numpy": "absent" if np is None else np.__version__,
    }


def available_tiers() -> list[str]:
    """The execution tiers this process can run (array/sharded need numpy)."""
    tiers = ["scalar", "batched"]
    if numpy_or_none() is not None:
        tiers.extend(["array", "sharded"])
    return tiers


def _measure_plan(
    query, annotated: KDatabase, repeats: int, tier: str | None = None
) -> tuple[dict, dict]:
    """Time one compiled plan over *annotated* on every available tier.

    The annotated database is built once and the plan compiled once, so the
    timings isolate the engine (Algorithm 1's ⊕-projections and ⊗-merges).
    Returns the timing record and a ``tier → result`` mapping for the
    caller's agreement check; the ``array``/``sharded`` entries are present
    only when the monoid has an array kernel and numpy is importable.  With
    *tier* given, only that tier is timed against the scalar baseline
    (``repro bench --kernel-mode sharded``); the sharded leg forces the
    auto-selection threshold to zero so it measures true process-parallel
    execution rather than the small-input delegation path.
    """
    plan = compile_plan(query)
    scalar_time, scalar_report = time_callable(
        lambda: execute_plan(plan, annotated, kernel_mode="scalar"),
        repeats=repeats,
    )
    record = {"scalar_s": scalar_time}
    results = {"scalar": scalar_report.result}
    if tier in (None, "batched"):
        kernel_time, kernel_report = time_callable(
            lambda: execute_plan(plan, annotated, kernel_mode="batched"),
            repeats=repeats,
        )
        record["kernel_s"] = kernel_time
        record["speedup"] = scalar_time / max(kernel_time, 1e-12)
        results["kernel"] = kernel_report.result
    has_array = array_kernel_for(annotated.monoid) is not None
    if has_array and tier in (None, "array", "auto"):
        array_time, array_report = time_callable(
            lambda: execute_plan(plan, annotated, kernel_mode="array"),
            repeats=repeats,
        )
        record["array_s"] = array_time
        record["array_speedup"] = scalar_time / max(array_time, 1e-12)
        if "kernel_s" in record:
            record["array_vs_kernel"] = record["kernel_s"] / max(
                array_time, 1e-12
            )
        results["array"] = array_report.result
    if has_array and tier in (None, "sharded"):
        from repro.core.sharded import shard_config

        def sharded_run():
            with shard_config(threshold=0):
                return execute_plan(plan, annotated, kernel_mode="sharded")

        sharded_time, sharded_report = time_callable(
            sharded_run, repeats=repeats
        )
        record["sharded_s"] = sharded_time
        record["sharded_speedup"] = scalar_time / max(sharded_time, 1e-12)
        if "array_s" in record:
            record["sharded_vs_array"] = record["array_s"] / max(
                sharded_time, 1e-12
            )
        results["sharded"] = sharded_report.result
    return record, results


def _shard_scaling(
    query, annotated: KDatabase, repeats: int, params: dict,
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
) -> dict | None:
    """The 1/2/4/8-process scaling sweep on one (largest) configuration.

    Times the sharded tier at each worker count (threshold forced to zero,
    shard count pinned to the worker count so the partitioning matches the
    parallelism) and reports each count's speedup over the 1-process run.
    Interpret against ``environment.cpu_count``: on a single-CPU host the
    curve is flat-to-negative by construction — the sweep still exercises
    the multi-process data path and records honest numbers.
    """
    from repro.core.sharded import shard_config

    if array_kernel_for(annotated.monoid) is None:
        return None
    plan = compile_plan(query)
    sweep: dict[str, dict] = {}
    base_time = None
    for workers in worker_counts:

        def sharded_run(workers=workers):
            with shard_config(workers=workers, shards=workers, threshold=0):
                return execute_plan(plan, annotated, kernel_mode="sharded")

        elapsed, _report = time_callable(sharded_run, repeats=repeats)
        if base_time is None:
            base_time = elapsed
        sweep[str(workers)] = {
            "sharded_s": elapsed,
            "speedup_vs_1": base_time / max(elapsed, 1e-12),
        }
    return {"params": params, "workers": sweep}


def perf_e2_pqe(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """E2: PQE on the Eq. (1) query — float probabilities, tolerance check.

    The sweep extends to |D| ≈ 32000, where the columnar tier's advantage
    over the batched kernels (C-level grouping and alignment vs per-tuple
    dict work) is clearly visible.  The largest configuration additionally
    runs the 1/2/4/8-process ``shard_scaling`` sweep.
    """
    sizes = (300, 900) if quick else (500, 1000, 2000, 4000, 8000, 16000, 32000)
    repeats = 1 if quick else repeats
    query = q_eq1()
    runs = []
    agree = True
    annotated = None
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=size,
        )
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(), database.facts(), database.probability
        )
        record, results = _measure_plan(query, annotated, repeats, tier)
        record["params"] = {"|D|": len(database)}
        record["abs_delta"] = max(
            abs(results["scalar"] - value) for value in results.values()
        )
        agree = agree and record["abs_delta"] <= 1e-9
        runs.append(record)
    document = {
        "title": "PQE (Theorem 5.8): marginal probability on q_eq1",
        "agreement": "max |Δ| ≤ 1e-9" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }
    if tier in (None, "sharded") and annotated is not None:
        counts = (1, 2) if quick else (1, 2, 4, 8)
        scaling = _shard_scaling(
            query, annotated, repeats, runs[-1]["params"], counts
        )
        if scaling is not None:
            document["shard_scaling"] = scaling
    return document


def perf_e4_bsm(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """E4: bag-set maximization — exact vectors, identity check.

    The array leg runs the packed columnar tier: ``(n, θ+1)`` int64 rows
    with batched sliding-window (max, ·) convolutions, bit-identical to
    the batched kernels at every magnitude.
    """
    sizes = (100,) if quick else (200, 400, 800, 1600)
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        instance = random_bagset_instance(
            query, base_facts_per_relation=size // 2,
            repair_facts_per_relation=16, budget=16,
            domain_size=max(8, size // 4), seed=size,
        )
        monoid = BagSetMonoid(instance.budget + 1)
        facts = [*instance.database.facts(), *instance.addable_facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, bagset_psi(instance, monoid)
        )
        record, results = _measure_plan(query, annotated, repeats, tier)
        record["params"] = {
            "|D|": len(instance.database),
            "|Dr|": len(instance.repair_database),
            "θ": instance.budget,
        }
        record["identical"] = all(
            value == results["scalar"] for value in results.values()
        )
        agree = agree and record["identical"]
        runs.append(record)
    return {
        "title": "Bag-set maximization (Theorem 5.11) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_e6_shapley(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """E6: the Shapley ``#Sat`` vector — exact big-int vectors.

    The array leg runs the packed columnar tier: trimmed ``(n, 2, w)``
    rows, ψ-spike folds by per-slot ``reduceat`` counting, guarded int64
    sliding-window convolutions, and the Kronecker kernel (with its
    packed-operand caches) as the exact big-int fallback — bit-identical
    to the batched tier.
    """
    from repro.bench.experiments import _split_instance

    sizes = (12, 24) if quick else (16, 32, 64, 128, 256)
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        instance = _split_instance(
            query, exogenous=40, endogenous=size, seed=size
        )
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, shapley_psi(instance, monoid)
        )
        record, results = _measure_plan(query, annotated, repeats, tier)
        record["params"] = {
            "|Dx|": len(instance.exogenous),
            "|Dn|": instance.endogenous_count,
        }
        record["identical"] = all(
            value == results["scalar"] for value in results.values()
        )
        agree = agree and record["identical"]
        runs.append(record)
    return {
        "title": "Shapley #Sat vector (Theorem 5.16) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_resilience(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """``res``: the resilience stream — flat ``(+, min)`` float costs.

    Classical resilience (every fact endogenous, unit deletion costs) on a
    2-branch star over growing databases.  Costs are integer-valued floats,
    so ``add.reduceat`` sums are order-independent and all tiers (the
    sharded tier included — per-shard folds then one final ⊕-fold) must
    agree bit-identically.  The largest configuration additionally runs
    the 1/2/4/8-process ``shard_scaling`` sweep.
    """
    sizes = (300,) if quick else (2000, 8000, 32000)
    repeats = 1 if quick else repeats
    query = star_query(2)
    monoid = ResilienceMonoid()
    runs = []
    agree = True
    annotated = None
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=size,
        ).support_database()
        instance = ResilienceInstance(
            exogenous=Database(), endogenous=database
        )
        psi = resilience_psi(instance, monoid)
        annotated = KDatabase.annotate(
            query, monoid, database.facts(), psi
        )
        record, results = _measure_plan(query, annotated, repeats, tier)
        record["params"] = {"|D|": len(database)}
        record["identical"] = all(
            value == results["scalar"] for value in results.values()
        )
        agree = agree and record["identical"]
        runs.append(record)
    document = {
        "title": "Resilience stream (Question 2): unit-cost (+, min) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }
    if tier in (None, "sharded") and annotated is not None:
        counts = (1, 2) if quick else (1, 2, 4, 8)
        scaling = _shard_scaling(
            query, annotated, repeats, runs[-1]["params"], counts
        )
        if scaling is not None:
            document["shard_scaling"] = scaling
    return document


def _values_agree(left, right) -> bool:
    """Answer agreement across the one-shot and session paths."""
    if isinstance(left, float) or isinstance(right, float):
        return abs(left - right) <= 1e-9 or left == right
    return left == right


def perf_engine(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """Amortized many-requests-one-database throughput (EngineSession).

    Per configuration: a mixed stream of ``rounds × (PQE, Shapley #Sat,
    resilience)`` requests, issued through the one-shot front-ends (each call
    re-annotates and reopens) and through one session (shared ψ-annotated
    databases, warm kernels and packed Shapley operands).  Also times the
    bulk ψ-annotation build against the per-fact ``set`` loop on the E6
    largest configuration.
    """
    from repro.bench.experiments import _split_instance
    from repro.engine import Engine
    from repro.problems.pqe import marginal_probability
    from repro.problems.resilience import ResilienceInstance, resilience
    from repro.problems.shapley import sat_vector

    sizes = (300,) if quick else (600, 1200, 2400)
    rounds = 2 if quick else 6
    endo_count = 16 if quick else 48
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=size,
        )
        support = database.support_database()
        facts = list(support.facts())
        random.Random(size).shuffle(facts)
        endogenous = Database(facts[:endo_count])
        exogenous = Database(facts[endo_count:])
        instance = ShapleyInstance(exogenous=exogenous, endogenous=endogenous)
        rinstance = ResilienceInstance(
            exogenous=exogenous, endogenous=endogenous
        )

        def one_shot():
            answers = []
            for _round in range(rounds):
                answers.append(marginal_probability(query, database))
                answers.append(sat_vector(query, instance))
                answers.append(resilience(query, rinstance))
            return answers

        def amortized():
            session = Engine().open(
                query,
                probabilistic=database,
                exogenous=exogenous,
                endogenous=endogenous,
            )
            answers = []
            for _round in range(rounds):
                answers.append(session.pqe())
                answers.append(session.sat_vector())
                answers.append(session.resilience())
            return answers

        oneshot_time, oneshot_answers = time_callable(one_shot, repeats=repeats)
        session_time, session_answers = time_callable(amortized, repeats=repeats)
        identical = all(
            _values_agree(left, right)
            for left, right in zip(oneshot_answers, session_answers)
        )
        agree = agree and identical
        runs.append({
            "oneshot_s": oneshot_time,
            "session_s": session_time,
            "speedup": oneshot_time / max(session_time, 1e-12),
            "params": {
                "|D|": len(database),
                "|Dn|": endo_count,
                "requests": rounds * 3,
            },
            "identical": identical,
        })

    # Bulk vs per-fact ψ-annotation on the E6 largest configuration.
    e6 = _split_instance(
        query, exogenous=40, endogenous=(24 if quick else 256), seed=256
    )
    monoid = ShapleyMonoid(e6.endogenous_count + 1)
    psi = shapley_psi(e6, monoid)
    e6_facts = [*e6.exogenous.facts(), *e6.endogenous.facts()]

    def per_fact():
        annotated = KDatabase(query, monoid)
        for fact in e6_facts:
            annotated.set(fact, psi(fact))
        return annotated

    def bulk():
        return KDatabase.annotate(query, monoid, e6_facts, psi)

    per_fact_time, per_fact_db = time_callable(per_fact, repeats=max(repeats, 3))
    bulk_time, bulk_db = time_callable(bulk, repeats=max(repeats, 3))
    annotation_identical = all(
        dict(left.items()) == dict(right.items())
        for left, right in zip(per_fact_db.relations(), bulk_db.relations())
    )
    agree = agree and annotation_identical
    annotation = {
        "per_fact_s": per_fact_time,
        "bulk_s": bulk_time,
        "speedup": per_fact_time / max(bulk_time, 1e-12),
        "params": {"|D|": len(e6_facts), "|Dn|": e6.endogenous_count},
        "identical": annotation_identical,
    }
    return {
        "title": "Amortized session throughput (PQE + #Sat + resilience)",
        "agreement": "session ≡ one-shot" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
        "annotation": annotation,
    }


def _serve_stream(endogenous_facts: list, rounds: int) -> list:
    """The mixed request stream: repeats (hot signatures) + per-fact spread.

    Per round: PQE, expected count, the #Sat vector, resilience and
    ``sat_counts`` repeat verbatim (the serving layer's memo/coalescing
    targets), while the Shapley/Banzhaf requests walk distinct endogenous
    facts (the sweep-batching target).  8 rounds × 8 requests = the
    64-request stream of the acceptance criterion.
    """
    from repro.serve import Request

    count = len(endogenous_facts)
    requests = []
    for round_index in range(rounds):
        requests.extend([
            Request.make("pqe"),
            Request.make("expected_count"),
            Request.make("sat_vector"),
            Request.make("resilience"),
            Request.make(
                "shapley_value",
                fact=endogenous_facts[(2 * round_index) % count],
            ),
            Request.make(
                "shapley_value",
                fact=endogenous_facts[(2 * round_index + 1) % count],
            ),
            Request.make("sat_counts"),
            Request.make(
                "banzhaf_value", fact=endogenous_facts[round_index % count]
            ),
        ])
    return requests


def _time_serve_stream(query, data, requests, engine_factory, workers):
    """One cold-server pass over the stream: wall time, answers, latencies.

    Latency is submit → future-done per request (so it includes queueing —
    the serving-relevant number), captured by done-callbacks on the worker
    threads.
    """
    from repro.serve import Server

    latencies = [0.0] * len(requests)
    with Server(
        query, engine=engine_factory(), workers=workers, **data
    ) as server:
        started = time.perf_counter()
        futures = []
        for index, request in enumerate(requests):
            submit_time = time.perf_counter()

            def record(_future, index=index, submit_time=submit_time):
                latencies[index] = time.perf_counter() - submit_time

            future = server.submit(request)
            future.add_done_callback(record)
            futures.append(future)
        answers = [future.result() for future in futures]
        elapsed = time.perf_counter() - started
        scheduler = server.stats()["scheduler"]
    return elapsed, answers, latencies, scheduler


# Percentiles are repro.obs.quantile — one definition shared with the
# runtime metrics layer, so bench p50/p95 and /metrics histograms agree.


def perf_serve(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """``serve``: scheduler throughput/latency vs sequential one-shots.

    One run per execution tier (the sharded tier included when numpy is
    present, or exactly *tier* when one is requested): a mixed request
    stream (see :func:`_serve_stream`) over one probabilistic database
    with a Shapley/resilience endogenous split, served (a) sequentially
    through throwaway one-shot sessions — the pre-serving front-end cost
    model, re-annotating per request — and (b) through a cold
    :class:`~repro.serve.server.Server` at several worker counts.  Records
    throughput and p50/p95 request latency per worker count and asserts
    every served answer equals the sequential baseline bit-for-bit.
    """
    from repro.engine import Engine
    from repro.engine.session import REQUEST_FAMILIES

    size = 300 if quick else 2400
    endo_count = 4 if quick else 16
    rounds = 2 if quick else 8
    worker_counts = (1, 2) if quick else (1, 2, 4, 8)
    repeats = 1 if quick else repeats
    query = star_query(2)
    database = random_probabilistic_database(
        query, facts_per_relation=size // 3,
        domain_size=max(4, size // 6), seed=size,
    )
    support = database.support_database()
    facts = list(support.facts())
    random.Random(size).shuffle(facts)
    endogenous = Database(facts[:endo_count])
    exogenous = Database(facts[endo_count:])
    data = {
        "probabilistic": database,
        "exogenous": exogenous,
        "endogenous": endogenous,
    }
    requests = _serve_stream(list(endogenous.facts()), rounds)

    runs = []
    agree = True
    tiers = available_tiers() if tier is None else [tier]
    for run_tier in tiers:
        engine_factory = lambda tier=run_tier: Engine(kernel_mode=tier)

        def one_shot():
            # The pre-serving cost model: every request pays a fresh
            # throwaway session (what the problems.* front-ends open).
            answers = []
            for request in requests:
                session = engine_factory().open(query, **data)
                handler = REQUEST_FAMILIES[request.family]
                answers.append(handler(session, **request.kwargs))
            return answers

        oneshot_time, baseline = time_callable(one_shot, repeats=repeats)
        record = {
            "params": {
                "|D|": len(database),
                "|Dn|": endo_count,
                "requests": len(requests),
                "tier": run_tier,
            },
            "oneshot_s": oneshot_time,
            "workers": {},
        }
        identical = True
        headline_workers = str(min(4, max(worker_counts)))
        for workers in worker_counts:
            best = None
            for _ in range(max(1, repeats)):
                sample = _time_serve_stream(
                    query, data, requests, engine_factory, workers
                )
                if best is None or sample[0] < best[0]:
                    best = sample
            elapsed, answers, latencies, scheduler = best
            identical = identical and answers == baseline
            ordered = sorted(latencies)
            record["workers"][str(workers)] = {
                "serve_s": elapsed,
                "throughput_rps": len(requests) / max(elapsed, 1e-12),
                "p50_ms": quantile(ordered, 0.50) * 1e3,
                "p95_ms": quantile(ordered, 0.95) * 1e3,
                "speedup": oneshot_time / max(elapsed, 1e-12),
                "coalesced": scheduler["coalesced"],
                "executed": scheduler["executed"],
                "sweeps": scheduler["sweeps"],
            }
        record["identical"] = identical
        # Headline: the 4-worker acceptance configuration.
        record["speedup"] = record["workers"][headline_workers]["speedup"]
        agree = agree and identical
        runs.append(record)
    return {
        "title": (
            "Concurrent serving (Scheduler): mixed request stream vs "
            "sequential one-shots"
        ),
        "agreement": "served ≡ one-shot (bit-identical)" if agree
        else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_multiquery(
    quick: bool = False, repeats: int = 3, tier: str | None = None
) -> dict:
    """``multiquery``: shared-scan fusion vs sequential one-shot bindings.

    The E2-largest PQE configuration on a **Zipf-skewed** database (hot
    contended join keys, see :func:`_value_sampler`), answered for many
    bindings of the query's shared variable ``A`` — the constant-lifted
    ``Q(c)`` sweep of :class:`repro.core.plan.ParameterizedPlan`.  One run
    per tier; per batch size (1/4/16/64 bindings, hottest keys first) it
    times (a) a sequential loop of ``session.pqe(binding=…)`` one-shots
    and (b) one ``session.evaluate_many`` call, both memo-bypassed, and
    asserts the answers are bit-identical.  On the array/sharded tiers the
    fused pass pays the lexsort/alignment work once per batch — the
    ``speedup`` headline is the batch-16 ratio (the acceptance criterion's
    ≥2× configuration); the batched/scalar tiers decline fusion by design
    and honestly record ≈1×.
    """
    from repro.engine import Engine

    size = 600 if quick else 32000
    batch_sizes = (1, 4) if quick else (1, 4, 16, 64)
    repeats = 1 if quick else repeats
    skew = 0.8
    query = q_eq1()
    database = random_probabilistic_database(
        query, facts_per_relation=size // 3,
        domain_size=max(4, size // 6), seed=size, skew=skew,
    )
    # The binding sweep: distinct values of the shared variable A, hottest
    # first — with Zipf skew the head keys touch the most support rows.
    frequency: dict[object, int] = {}
    for fact in database.facts():
        if fact.relation == "R":
            value = fact.values[0]
            frequency[value] = frequency.get(value, 0) + 1
    values = sorted(frequency, key=lambda v: (-frequency[v], v))
    if len(values) < max(batch_sizes):
        batch_sizes = tuple(
            b for b in batch_sizes if b <= len(values)
        ) or (1,)

    runs = []
    agree = True
    tiers = available_tiers() if tier is None else [tier]
    for run_tier in tiers:
        session = Engine(kernel_mode=run_tier).open(
            query, probabilistic=database
        )
        session.pqe()  # warm: ψ-annotation, columnar views, sort caches
        record = {
            "params": {
                "|D|": len(database),
                "skew": skew,
                "tier": run_tier,
            },
            "batches": {},
        }
        identical = True
        for batch in batch_sizes:
            bindings = [{"A": value} for value in values[:batch]]
            requests = [
                ("pqe", {"binding": binding}) for binding in bindings
            ]

            def sequential():
                return [
                    session.pqe(binding=binding) for binding in bindings
                ]

            def fused():
                return session.evaluate_many(requests, use_memo=False)

            sequential_time, sequential_answers = time_callable(
                sequential, repeats=repeats
            )
            fused_time, fused_answers = time_callable(
                fused, repeats=repeats
            )
            identical = identical and fused_answers == sequential_answers
            record["batches"][str(batch)] = {
                "sequential_s": sequential_time,
                "fused_s": fused_time,
                "speedup": sequential_time / max(fused_time, 1e-12),
                "throughput_qps": batch / max(fused_time, 1e-12),
            }
        record["identical"] = identical
        agree = agree and identical
        # Headline: the acceptance criterion's batch-16 configuration
        # (largest measured batch when quick mode trims the sweep).
        headline = (
            "16" if "16" in record["batches"]
            else str(max(int(b) for b in record["batches"]))
        )
        record["speedup"] = record["batches"][headline]["speedup"]
        runs.append(record)
    return {
        "title": (
            "Shared-scan multi-query fusion: binding sweeps vs sequential "
            "one-shots on Zipf-skewed q_eq1"
        ),
        "agreement": "fused ≡ sequential (bit-identical)" if agree
        else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


PERF_EXPERIMENTS: dict[str, Callable[..., dict]] = {
    "E2": perf_e2_pqe,
    "E4": perf_e4_bsm,
    "E6": perf_e6_shapley,
    "res": perf_resilience,
    "engine": perf_engine,
    "serve": perf_serve,
    "multiquery": perf_multiquery,
}


def _summarize(experiment: dict) -> dict:
    """The per-experiment summary entry, derived from its executed runs.

    Every timing key is optional — a ``--kernel-mode sharded`` run records
    no batched ``speedup`` at all — so each summary entry appears only
    when its runs actually carry the timings it derives from.
    """
    runs = experiment["runs"]
    summary = {"agree": experiment["agree"]}
    speedups = [run["speedup"] for run in runs if "speedup" in run]
    if speedups:
        summary["max_speedup"] = max(speedups)
    last = runs[-1]
    if "speedup" in last:
        summary["largest_config_speedup"] = last["speedup"]
    if "array_speedup" in last:
        summary["largest_config_array_speedup"] = last["array_speedup"]
    if "array_vs_kernel" in last:
        summary["largest_config_array_vs_kernel"] = last["array_vs_kernel"]
    if "sharded_speedup" in last:
        summary["largest_config_sharded_speedup"] = last["sharded_speedup"]
    if "sharded_vs_array" in last:
        summary["largest_config_sharded_vs_array"] = last["sharded_vs_array"]
    return summary


def run_perf_suite(
    ids: list[str] | None = None,
    quick: bool = False,
    repeats: int = 3,
    tier: str | None = None,
) -> dict:
    """Run the requested perf experiments and return the JSON document.

    ``experiments`` and ``summary`` contain exactly the experiments that
    actually executed — a single-experiment run (``repro bench E6``) must
    not claim results for the rest of the suite.  With *tier* given
    (``repro bench --kernel-mode sharded``), only that tier is measured
    against the always-present scalar baseline.
    """
    from repro.core.algorithm import KERNEL_MODES

    requested = ids or list(PERF_EXPERIMENTS)
    unknown = [name for name in requested if name not in PERF_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown perf experiment id(s) {unknown}; "
            f"expected a subset of {sorted(PERF_EXPERIMENTS)}"
        )
    if tier is not None and tier not in KERNEL_MODES:
        raise KeyError(
            f"unknown kernel mode {tier!r}; expected one of {KERNEL_MODES}"
        )
    experiments = {
        name: PERF_EXPERIMENTS[name](quick=quick, repeats=repeats, tier=tier)
        for name in requested
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "environment": environment_metadata(),
        "tiers": available_tiers(),
        "tier_filter": tier,
        "quick": quick,
        "experiments": experiments,
        "summary": {
            name: _summarize(exp) for name, exp in experiments.items()
        },
    }


def write_perf_json(document: dict, path: str | Path) -> Path:
    """Write *document* to *path* as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def _render_run(run: dict) -> str:
    """One timing line: every ``*_s`` entry plus whichever speedups exist."""
    params = ", ".join(
        f"{key}={value}" for key, value in run["params"].items()
    )
    timings = "  ".join(
        f"{key[:-2]} {value:.4f}s"
        for key, value in run.items()
        if key.endswith("_s")
    )
    line = f"  {params:<28} {timings}"
    if "speedup" in run:
        line += f"  speedup {run['speedup']:.1f}x"
    if "array_vs_kernel" in run:
        line += (
            f"  array {run['array_speedup']:.1f}x"
            f" ({run['array_vs_kernel']:.1f}x vs kernel)"
        )
    if "sharded_speedup" in run:
        line += f"  sharded {run['sharded_speedup']:.1f}x"
        if "sharded_vs_array" in run:
            line += f" ({run['sharded_vs_array']:.1f}x vs array)"
    return line


def render_perf_summary(document: dict) -> str:
    """Human-readable digest of a perf document for the CLI."""
    lines = [
        "tiers: " + ", ".join(document.get("tiers", [])),
    ]
    for name, experiment in document["experiments"].items():
        lines.append(f"== {name}: {experiment['title']} ==")
        for run in experiment["runs"]:
            lines.append(_render_run(run))
            for workers, entry in run.get("workers", {}).items():
                lines.append(
                    f"    {workers} worker(s): {entry['serve_s']:.4f}s  "
                    f"{entry['throughput_rps']:.0f} req/s  "
                    f"p50 {entry['p50_ms']:.1f}ms  "
                    f"p95 {entry['p95_ms']:.1f}ms  "
                    f"speedup {entry['speedup']:.1f}x"
                )
            for batch, entry in run.get("batches", {}).items():
                lines.append(
                    f"    batch {batch:>3}: "
                    f"sequential {entry['sequential_s']:.4f}s  "
                    f"fused {entry['fused_s']:.4f}s  "
                    f"{entry['throughput_qps']:.0f} q/s  "
                    f"speedup {entry['speedup']:.1f}x"
                )
        annotation = experiment.get("annotation")
        if annotation is not None:
            lines.append("  -- bulk vs per-fact ψ-annotation (E6 largest) --")
            lines.append(_render_run(annotation))
        scaling = experiment.get("shard_scaling")
        if scaling is not None:
            params = ", ".join(
                f"{key}={value}" for key, value in scaling["params"].items()
            )
            lines.append(f"  -- shard scaling ({params}) --")
            for workers, entry in scaling["workers"].items():
                lines.append(
                    f"    {workers} process(es): {entry['sharded_s']:.4f}s  "
                    f"speedup vs 1 {entry['speedup_vs_1']:.2f}x"
                )
        lines.append(f"  agreement: {experiment['agreement']}")
    return "\n".join(lines)


_COMPARED_TIMINGS = (
    "scalar_s", "kernel_s", "array_s", "sharded_s", "oneshot_s", "session_s"
)


def _compare_run_pair(lines: list[str], old_run: dict, new_run: dict) -> None:
    """Append the timing/speedup delta lines for one aligned run pair.

    Every key access is guarded: documents of different schema versions
    (a v5 artifact without ``sharded_s`` against a v6 one with it) report
    one-sided columns as ``n/a`` instead of raising.
    """
    if old_run.get("params") != new_run.get("params"):
        lines.append(
            f"  params changed: {old_run.get('params')} → "
            f"{new_run.get('params')} (ratios not like-for-like)"
        )
    for key in _COMPARED_TIMINGS:
        if key in old_run and key in new_run:
            ratio = old_run[key] / max(new_run[key], 1e-12)
            lines.append(
                f"  {key[:-2]:<10} {old_run[key]:.4f}s → "
                f"{new_run[key]:.4f}s  ({ratio:.2f}x)"
            )
        elif key in new_run:
            lines.append(
                f"  {key[:-2]:<10} n/a (not in OLD) → {new_run[key]:.4f}s"
            )
        elif key in old_run:
            lines.append(
                f"  {key[:-2]:<10} {old_run[key]:.4f}s → n/a (not in NEW)"
            )
    old_speedup = old_run.get("speedup")
    new_speedup = new_run.get("speedup")
    if old_speedup is not None and new_speedup is not None:
        lines.append(
            f"  speedup    {old_speedup:.1f}x → {new_speedup:.1f}x"
        )
    elif new_speedup is not None:
        lines.append(f"  speedup    n/a → {new_speedup:.1f}x")
    elif old_speedup is not None:
        lines.append(f"  speedup    {old_speedup:.1f}x → n/a")


def _runs_by_tier(experiment: dict) -> dict[str, dict] | None:
    """``tier → run`` when every run carries a tier param (serve), else None."""
    runs = experiment.get("runs", [])
    tiers = [run.get("params", {}).get("tier") for run in runs]
    if not runs or any(tier is None for tier in tiers):
        return None
    return dict(zip(tiers, runs))


def compare_perf_documents(old: dict, new: dict) -> str:
    """Per-experiment speedup deltas between two BENCH_perf.json documents.

    For every experiment present in both documents, compares the
    largest-configuration run: each shared timing column as
    ``old → new (ratio×)`` plus the headline speedup delta.  Experiments
    present on one side only are listed as added/removed, so a diff between
    PRs never silently drops a workload.  Tier-keyed experiments (serve)
    are aligned by ``params["tier"]``, and a tier or timing column present
    in only one document — a v5 artifact against a v6 one with the sharded
    tier — is reported as ``n/a`` rather than raising.
    """
    lines = [
        "perf comparison (largest configuration per experiment):",
        f"  old: schema v{old.get('schema_version')}, "
        f"numpy {old.get('environment', {}).get('numpy', 'unknown')}",
        f"  new: schema v{new.get('schema_version')}, "
        f"numpy {new.get('environment', {}).get('numpy', 'unknown')}",
    ]
    old_experiments = old.get("experiments", {})
    new_experiments = new.get("experiments", {})
    for name in sorted(set(old_experiments) | set(new_experiments)):
        if name not in old_experiments:
            lines.append(f"== {name}: only in NEW ==")
            continue
        if name not in new_experiments:
            lines.append(f"== {name}: only in OLD ==")
            continue
        old_by_tier = _runs_by_tier(old_experiments[name])
        new_by_tier = _runs_by_tier(new_experiments[name])
        if old_by_tier is not None and new_by_tier is not None:
            lines.append(f"== {name} (per tier) ==")
            for tier in [
                *old_by_tier, *(t for t in new_by_tier if t not in old_by_tier)
            ]:
                if tier not in old_by_tier:
                    lines.append(f"  tier {tier}: n/a (only in NEW)")
                    continue
                if tier not in new_by_tier:
                    lines.append(f"  tier {tier}: n/a (only in OLD)")
                    continue
                lines.append(f"  tier {tier}:")
                _compare_run_pair(
                    lines, old_by_tier[tier], new_by_tier[tier]
                )
            continue
        lines.append(f"== {name} ==")
        _compare_run_pair(
            lines,
            old_experiments[name]["runs"][-1],
            new_experiments[name]["runs"][-1],
        )
    return "\n".join(lines)
