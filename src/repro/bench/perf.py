"""Performance suite: the ``BENCH_perf.json`` trajectory.

Two kinds of measurements:

* **scalar vs kernel** — reruns the hot workloads of three scaling
  experiments (E2 PQE, E4 bag-set maximization, E6 Shapley ``#Sat``) twice
  per configuration: once through the batched kernel engine
  (``kernel_mode="auto"``) and once through the per-tuple scalar baseline
  (``kernel_mode="scalar"``), asserting answer agreement;
* **amortized session throughput** (the ``engine`` scenario) — replays a
  mixed request stream (PQE + Shapley ``#Sat`` + resilience, several rounds)
  over **one** database, once through the one-shot front-ends (fresh
  ψ-annotation and session per call) and once through a single long-lived
  :class:`~repro.engine.EngineSession` that reuses the annotated databases,
  monoid kernels and packed big-int Shapley operands across every request.
  It also times the bulk ψ-annotation build against the per-fact ``set``
  loop on the E6 largest configuration.

``repro bench --json BENCH_perf.json`` regenerates the artifact; future PRs
compare against it to keep the perf trajectory monotone.  The ``quick`` mode
shrinks every sweep to sub-second sizes; the tier-1 smoke test uses it to
assert agreement without timing anything.
"""

from __future__ import annotations

import json
import platform
import random
import time
from pathlib import Path
from typing import Callable

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.bench.harness import time_callable
from repro.core.algorithm import execute_plan
from repro.core.plan import compile_plan
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.problems.bagset_max import annotation_psi as bagset_psi
from repro.problems.shapley import ShapleyInstance
from repro.problems.shapley import annotation_psi as shapley_psi
from repro.query.families import q_eq1, star_query
from repro.workloads.generators import (
    random_bagset_instance,
    random_probabilistic_database,
)

#: Format version of the BENCH_perf.json document.
SCHEMA_VERSION = 2


def _measure_plan(
    query, annotated: KDatabase, repeats: int
) -> tuple[dict, object, object]:
    """Time one compiled plan over *annotated*: scalar engine vs kernels.

    The annotated database is built once and the plan compiled once, so the
    two timings isolate the engine (Algorithm 1's ⊕-projections and
    ⊗-merges) — the component the kernel subsystem replaces.
    """
    plan = compile_plan(query)
    scalar_time, scalar_report = time_callable(
        lambda: execute_plan(plan, annotated, kernel_mode="scalar"),
        repeats=repeats,
    )
    kernel_time, kernel_report = time_callable(
        lambda: execute_plan(plan, annotated, kernel_mode="auto"),
        repeats=repeats,
    )
    record = {
        "scalar_s": scalar_time,
        "kernel_s": kernel_time,
        "speedup": scalar_time / max(kernel_time, 1e-12),
    }
    return record, scalar_report.result, kernel_report.result


def perf_e2_pqe(quick: bool = False, repeats: int = 3) -> dict:
    """E2: PQE on the Eq. (1) query — float probabilities, tolerance check."""
    sizes = (300, 900) if quick else (500, 1000, 2000, 4000, 8000)
    repeats = 1 if quick else repeats
    query = q_eq1()
    runs = []
    agree = True
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=size,
        )
        annotated = KDatabase.annotate(
            query, ProbabilityMonoid(), database.facts(), database.probability
        )
        record, scalar, kernel = _measure_plan(query, annotated, repeats)
        record["params"] = {"|D|": len(database)}
        record["abs_delta"] = abs(scalar - kernel)
        agree = agree and record["abs_delta"] <= 1e-9
        runs.append(record)
    return {
        "title": "PQE (Theorem 5.8): marginal probability on q_eq1",
        "agreement": "max |Δ| ≤ 1e-9" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_e4_bsm(quick: bool = False, repeats: int = 3) -> dict:
    """E4: bag-set maximization — exact vectors, identity check."""
    sizes = (100,) if quick else (200, 400, 800, 1600)
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        instance = random_bagset_instance(
            query, base_facts_per_relation=size // 2,
            repair_facts_per_relation=16, budget=16,
            domain_size=max(8, size // 4), seed=size,
        )
        monoid = BagSetMonoid(instance.budget + 1)
        facts = [*instance.database.facts(), *instance.addable_facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, bagset_psi(instance, monoid)
        )
        record, scalar, kernel = _measure_plan(query, annotated, repeats)
        record["params"] = {
            "|D|": len(instance.database),
            "|Dr|": len(instance.repair_database),
            "θ": instance.budget,
        }
        record["identical"] = scalar == kernel
        agree = agree and record["identical"]
        runs.append(record)
    return {
        "title": "Bag-set maximization (Theorem 5.11) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def perf_e6_shapley(quick: bool = False, repeats: int = 3) -> dict:
    """E6: the Shapley ``#Sat`` vector — exact big-int vectors."""
    from repro.bench.experiments import _split_instance

    sizes = (12, 24) if quick else (16, 32, 64, 128, 256)
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        instance = _split_instance(
            query, exogenous=40, endogenous=size, seed=size
        )
        monoid = ShapleyMonoid(instance.endogenous_count + 1)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = KDatabase.annotate(
            query, monoid, facts, shapley_psi(instance, monoid)
        )
        record, scalar, kernel = _measure_plan(query, annotated, repeats)
        record["params"] = {
            "|Dx|": len(instance.exogenous),
            "|Dn|": instance.endogenous_count,
        }
        record["identical"] = scalar == kernel
        agree = agree and record["identical"]
        runs.append(record)
    return {
        "title": "Shapley #Sat vector (Theorem 5.16) on a 2-branch star",
        "agreement": "bit-identical" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
    }


def _values_agree(left, right) -> bool:
    """Answer agreement across the one-shot and session paths."""
    if isinstance(left, float) or isinstance(right, float):
        return abs(left - right) <= 1e-9 or left == right
    return left == right


def perf_engine(quick: bool = False, repeats: int = 3) -> dict:
    """Amortized many-requests-one-database throughput (EngineSession).

    Per configuration: a mixed stream of ``rounds × (PQE, Shapley #Sat,
    resilience)`` requests, issued through the one-shot front-ends (each call
    re-annotates and reopens) and through one session (shared ψ-annotated
    databases, warm kernels and packed Shapley operands).  Also times the
    bulk ψ-annotation build against the per-fact ``set`` loop on the E6
    largest configuration.
    """
    from repro.bench.experiments import _split_instance
    from repro.engine import Engine
    from repro.problems.pqe import marginal_probability
    from repro.problems.resilience import ResilienceInstance, resilience
    from repro.problems.shapley import sat_vector

    sizes = (300,) if quick else (600, 1200, 2400)
    rounds = 2 if quick else 6
    endo_count = 16 if quick else 48
    repeats = 1 if quick else repeats
    query = star_query(2)
    runs = []
    agree = True
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3,
            domain_size=max(4, size // 6), seed=size,
        )
        support = database.support_database()
        facts = list(support.facts())
        random.Random(size).shuffle(facts)
        endogenous = Database(facts[:endo_count])
        exogenous = Database(facts[endo_count:])
        instance = ShapleyInstance(exogenous=exogenous, endogenous=endogenous)
        rinstance = ResilienceInstance(
            exogenous=exogenous, endogenous=endogenous
        )

        def one_shot():
            answers = []
            for _round in range(rounds):
                answers.append(marginal_probability(query, database))
                answers.append(sat_vector(query, instance))
                answers.append(resilience(query, rinstance))
            return answers

        def amortized():
            session = Engine().open(
                query,
                probabilistic=database,
                exogenous=exogenous,
                endogenous=endogenous,
            )
            answers = []
            for _round in range(rounds):
                answers.append(session.pqe())
                answers.append(session.sat_vector())
                answers.append(session.resilience())
            return answers

        oneshot_time, oneshot_answers = time_callable(one_shot, repeats=repeats)
        session_time, session_answers = time_callable(amortized, repeats=repeats)
        identical = all(
            _values_agree(left, right)
            for left, right in zip(oneshot_answers, session_answers)
        )
        agree = agree and identical
        runs.append({
            "oneshot_s": oneshot_time,
            "session_s": session_time,
            "speedup": oneshot_time / max(session_time, 1e-12),
            "params": {
                "|D|": len(database),
                "|Dn|": endo_count,
                "requests": rounds * 3,
            },
            "identical": identical,
        })

    # Bulk vs per-fact ψ-annotation on the E6 largest configuration.
    e6 = _split_instance(
        query, exogenous=40, endogenous=(24 if quick else 256), seed=256
    )
    monoid = ShapleyMonoid(e6.endogenous_count + 1)
    psi = shapley_psi(e6, monoid)
    e6_facts = [*e6.exogenous.facts(), *e6.endogenous.facts()]

    def per_fact():
        annotated = KDatabase(query, monoid)
        for fact in e6_facts:
            annotated.set(fact, psi(fact))
        return annotated

    def bulk():
        return KDatabase.annotate(query, monoid, e6_facts, psi)

    per_fact_time, per_fact_db = time_callable(per_fact, repeats=max(repeats, 3))
    bulk_time, bulk_db = time_callable(bulk, repeats=max(repeats, 3))
    annotation_identical = all(
        dict(left.items()) == dict(right.items())
        for left, right in zip(per_fact_db.relations(), bulk_db.relations())
    )
    agree = agree and annotation_identical
    annotation = {
        "per_fact_s": per_fact_time,
        "bulk_s": bulk_time,
        "speedup": per_fact_time / max(bulk_time, 1e-12),
        "params": {"|D|": len(e6_facts), "|Dn|": e6.endogenous_count},
        "identical": annotation_identical,
    }
    return {
        "title": "Amortized session throughput (PQE + #Sat + resilience)",
        "agreement": "session ≡ one-shot" if agree else "DISAGREEMENT",
        "agree": agree,
        "runs": runs,
        "annotation": annotation,
    }


PERF_EXPERIMENTS: dict[str, Callable[..., dict]] = {
    "E2": perf_e2_pqe,
    "E4": perf_e4_bsm,
    "E6": perf_e6_shapley,
    "engine": perf_engine,
}


def run_perf_suite(
    ids: list[str] | None = None, quick: bool = False, repeats: int = 3
) -> dict:
    """Run the requested perf experiments and return the JSON document."""
    requested = ids or list(PERF_EXPERIMENTS)
    unknown = [name for name in requested if name not in PERF_EXPERIMENTS]
    if unknown:
        raise KeyError(
            f"unknown perf experiment id(s) {unknown}; "
            f"expected a subset of {sorted(PERF_EXPERIMENTS)}"
        )
    experiments = {
        name: PERF_EXPERIMENTS[name](quick=quick, repeats=repeats)
        for name in requested
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_unix": time.time(),
        "python": platform.python_version(),
        "quick": quick,
        "experiments": experiments,
        "summary": {
            name: {
                "max_speedup": max(r["speedup"] for r in exp["runs"]),
                "largest_config_speedup": exp["runs"][-1]["speedup"],
                "agree": exp["agree"],
            }
            for name, exp in experiments.items()
        },
    }


def write_perf_json(document: dict, path: str | Path) -> Path:
    """Write *document* to *path* as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def _render_run(run: dict) -> str:
    """One timing line: every ``*_s`` entry plus the speedup."""
    params = ", ".join(
        f"{key}={value}" for key, value in run["params"].items()
    )
    timings = "  ".join(
        f"{key[:-2]} {value:.4f}s"
        for key, value in run.items()
        if key.endswith("_s")
    )
    return f"  {params:<28} {timings}  speedup {run['speedup']:.1f}x"


def render_perf_summary(document: dict) -> str:
    """Human-readable digest of a perf document for the CLI."""
    lines = []
    for name, experiment in document["experiments"].items():
        lines.append(f"== {name}: {experiment['title']} ==")
        for run in experiment["runs"]:
            lines.append(_render_run(run))
        annotation = experiment.get("annotation")
        if annotation is not None:
            lines.append("  -- bulk vs per-fact ψ-annotation (E6 largest) --")
            lines.append(_render_run(annotation))
        lines.append(f"  agreement: {experiment['agreement']}")
    return "\n".join(lines)
