"""Plain-text reporting for experiment results.

Each experiment in :mod:`repro.bench.experiments` returns an
:class:`ExperimentResult`; this module renders them as aligned ASCII tables —
the "rows/series the paper reports" in the terms of the reproduction brief.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class ExperimentResult:
    """A finished experiment: an id, a table, and free-form notes."""

    experiment_id: str
    title: str
    headers: tuple[str, ...]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(tuple(values))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.headers, self.rows))
        lines.extend(f"   note: {note}" for note in self.notes)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned ASCII table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    def render_row(values: Sequence[str]) -> str:
        return " | ".join(value.rjust(width) for value, width in zip(values, widths))

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row(list(headers)), separator]
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)
