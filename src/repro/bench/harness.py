"""Timing utilities for the experiment suite.

The paper's claims are asymptotic shapes, not absolute numbers; these helpers
measure wall-clock times and fit log–log slopes so the benchmarks can report
"grows like n^slope" next to each theorem's predicted exponent.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def time_callable(fn: Callable[[], T], repeats: int = 3) -> tuple[float, T]:
    """Best-of-*repeats* wall time of ``fn()`` and its (last) result."""
    best = math.inf
    result: T = None  # type: ignore[assignment]
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    For a runtime curve ``t(n) ≈ c · n^a`` this recovers the exponent ``a``;
    the scaling experiments compare it against the theorem's bound.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs with equal lengths")
    log_xs = [math.log(x) for x in xs]
    log_ys = [math.log(max(y, 1e-12)) for y in ys]
    n = len(log_xs)
    mean_x = sum(log_xs) / n
    mean_y = sum(log_ys) / n
    numerator = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(log_xs, log_ys)
    )
    denominator = sum((x - mean_x) ** 2 for x in log_xs)
    if denominator == 0:
        raise ValueError("x values must not all be equal")
    return numerator / denominator


def doubling_ratios(ys: Sequence[float]) -> list[float]:
    """Successive ratios ``y[i+1] / y[i]`` — 2 for linear growth under doubling."""
    return [
        ys[i + 1] / ys[i] if ys[i] else math.inf for i in range(len(ys) - 1)
    ]
