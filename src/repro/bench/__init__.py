"""Benchmark harness: timing, reporting, the E0–E11 experiment suite, and
the scalar-vs-kernel perf suite behind ``BENCH_perf.json``."""

from repro.bench.experiments import ALL_EXPERIMENTS, figure1_instance, run_all
from repro.bench.harness import doubling_ratios, loglog_slope, time_callable
from repro.bench.perf import (
    PERF_EXPERIMENTS,
    compare_perf_documents,
    render_perf_summary,
    run_perf_suite,
    write_perf_json,
)
from repro.bench.reporting import ExperimentResult, format_table

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "PERF_EXPERIMENTS",
    "compare_perf_documents",
    "doubling_ratios",
    "figure1_instance",
    "format_table",
    "loglog_slope",
    "render_perf_summary",
    "run_all",
    "run_perf_suite",
    "time_callable",
    "write_perf_json",
]
