"""Benchmark harness: timing, reporting, and the E0–E11 experiment suite."""

from repro.bench.experiments import ALL_EXPERIMENTS, figure1_instance, run_all
from repro.bench.harness import doubling_ratios, loglog_slope, time_callable
from repro.bench.reporting import ExperimentResult, format_table

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "doubling_ratios",
    "figure1_instance",
    "format_table",
    "loglog_slope",
    "run_all",
    "time_callable",
]
