"""The experiment suite (E0–E11) defined in DESIGN.md.

Each ``run_*`` function regenerates one table of EXPERIMENTS.md: it builds
the workload, runs the unified algorithm (and the relevant baselines), and
returns an :class:`~repro.bench.reporting.ExperimentResult`.  The pytest
benchmarks in ``benchmarks/`` wrap these same functions, and
``examples/run_all_experiments.py`` prints them all.

Paper artifacts covered:

* E0  — Figure 1 (the worked Bag-Set Maximization example),
* E1  — Examples 5.2 / 5.3 / 5.4 (elimination traces),
* E2  — Theorem 5.8 (PQE is O(|D|)),
* E3  — PQE exactness + crossover against possible-world enumeration,
* E4  — Theorem 5.11 (BSM is O((|D|+|Dr|)·|Dr|²)),
* E5  — BSM optimality vs brute force; greedy suboptimality,
* E6  — Theorem 5.16 (Shapley is O((|Dx|+|Dn|)·|Dn|²)),
* E7  — Shapley exactness vs permutations; Monte Carlo convergence,
* E8  — Theorem 4.4 (BCBS reduction; exponential cost on q_nh),
* E9  — ablation: the θ+1 vector-truncation lever of Theorem 5.11,
* E10 — ablation: elimination-order policies (Proposition 5.1 confluence),
* E11 — Definition 5.6 law census and non-distributivity of all three
  problem 2-monoids.

Extension experiments (beyond the paper, toward its Question 2):

* E12 — resilience as a fourth 2-monoid instantiation,
* E13 — the semiring/2-monoid tractability boundary measured on q_nh,
* E14 — free-variable (per-answer) evaluation,
* E15 — incremental maintenance under single-fact updates.
"""

from __future__ import annotations

import random
from fractions import Fraction

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.laws import (
    check_two_monoid_laws,
    find_annihilation_violation,
    find_distributivity_violation,
)
from repro.algebra.probability import ProbabilityMonoid
from repro.algebra.provenance import ProvenanceMonoid, leaf
from repro.algebra.shapley import ShapleyMonoid
from repro.bench.harness import loglog_slope, time_callable
from repro.bench.reporting import ExperimentResult
from repro.core.algorithm import evaluate_hierarchical, run_algorithm
from repro.core.instrument import CountingMonoid
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.hardness.bcbs import has_balanced_biclique
from repro.hardness.reduction import (
    decide_bsm_decision_smart,
    reduce_bcbs,
)
from repro.problems.bagset_max import (
    BagSetInstance,
    maximize,
    maximize_brute_force,
    maximize_greedy,
    maximize_profile,
)
from repro.problems.pqe import (
    marginal_probability,
    marginal_probability_brute_force,
)
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.shapley import (
    ShapleyInstance,
    sat_counts,
    shapley_value,
    shapley_value_by_permutations,
    shapley_value_monte_carlo,
)
from repro.query.bcq import BCQ
from repro.query.elimination import eliminate, make_random_policy
from repro.query.families import (
    q_disconnected,
    q_eq1,
    q_example_53,
    q_nh,
    star_query,
)
from repro.workloads.generators import (
    random_bagset_instance,
    random_probabilistic_database,
    random_shapley_instance,
)
from repro.workloads.graphs import planted_biclique_graph


# ----------------------------------------------------------------------
# E0 — Figure 1
# ----------------------------------------------------------------------
def figure1_instance() -> tuple[BCQ, BagSetInstance]:
    """The exact instance of Figure 1 (query of Eq. 1, θ = 2)."""
    query = q_eq1()
    database = Database.from_relations(
        {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
    )
    repair = Database.from_relations(
        {"R": [(1, 6), (1, 7)], "S": [], "T": [(1, 1, 4), (1, 2, 9)]}
    )
    return query, BagSetInstance(database, repair, budget=2)


def run_e0_figure1() -> ExperimentResult:
    """E0: reproduce the worked example of Figure 1 / Section 1."""
    query, instance = figure1_instance()
    result = ExperimentResult(
        "E0",
        "Figure 1 worked example (Bag-Set Maximization, θ=2)",
        ("strategy", "Q(D') value"),
    )
    from repro.db.evaluation import count_satisfying_assignments

    result.add_row("no repair (paper: 1)", count_satisfying_assignments(query, instance.database))
    naive = instance.database.with_facts(
        [f for f in instance.repair_database.facts() if f.relation == "R"]
    )
    result.add_row("add R(1,6), R(1,7) (paper: 3)", count_satisfying_assignments(query, naive))
    result.add_row("unified algorithm optimum (paper: 4)", maximize(query, instance))
    result.add_row("brute-force optimum (paper: 4)", maximize_brute_force(query, instance))
    profile = maximize_profile(query, instance)
    result.add_note(f"full budget profile q(0..θ) = {profile} (paper implies (1, ·, 4))")
    return result


# ----------------------------------------------------------------------
# E1 — elimination traces of Examples 5.2 / 5.3 / 5.4
# ----------------------------------------------------------------------
def run_e1_elimination_examples() -> ExperimentResult:
    """E1: the elimination procedure on the paper's three worked queries."""
    result = ExperimentResult(
        "E1",
        "Elimination traces (Examples 5.2, 5.3, 5.4)",
        ("query", "steps", "outcome", "paper"),
    )
    cases = [
        ("Example 5.2", q_eq1(), "Done"),
        ("Example 5.3", q_example_53(), "Stuck"),
        ("Example 5.4", q_disconnected(), "Done"),
    ]
    for label, query, expected in cases:
        trace = eliminate(query)
        outcome = "Done" if trace.success else "Stuck"
        result.add_row(str(query), len(trace.steps), outcome, expected)
        result.add_note(f"{label} trace:\n{trace}")
    return result


# ----------------------------------------------------------------------
# E2 — PQE scaling (Theorem 5.8)
# ----------------------------------------------------------------------
def run_e2_pqe_scaling(
    sizes: tuple[int, ...] = (500, 1000, 2000, 4000, 8000),
    repeats: int = 3,
) -> ExperimentResult:
    """E2: PQE runtime and ⊕/⊗ operation count vs |D| — both linear."""
    query = q_eq1()
    result = ExperimentResult(
        "E2",
        "Theorem 5.8 — PQE runtime is O(|D|) on the Eq. (1) query",
        ("|D|", "time [s]", "⊕/⊗ ops", "ops / |D|"),
    )
    measured_sizes: list[int] = []
    times: list[float] = []
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3, domain_size=max(4, size // 6),
            seed=size,
        )
        elapsed, _ = time_callable(
            lambda db=database: marginal_probability(query, db), repeats=repeats
        )
        counting = CountingMonoid(ProbabilityMonoid())
        evaluate_hierarchical(
            query, counting, database.facts(),
            lambda fact, db=database: db.probability(fact),
        )
        n = len(database)
        measured_sizes.append(n)
        times.append(elapsed)
        result.add_row(n, elapsed, counting.operation_count,
                       round(counting.operation_count / n, 3))
    slope = loglog_slope(measured_sizes, times)
    result.add_note(
        f"log–log slope of time vs |D| = {slope:.2f} (theorem predicts ≈ 1)"
    )
    result.add_note("ops/|D| is bounded by a constant (Theorem 6.7)")
    return result


# ----------------------------------------------------------------------
# E3 — PQE vs brute force
# ----------------------------------------------------------------------
def run_e3_pqe_vs_bruteforce(
    sizes: tuple[int, ...] = (6, 9, 12, 15),
) -> ExperimentResult:
    """E3: exact agreement with possible-world enumeration + runtime crossover."""
    query = q_eq1()
    result = ExperimentResult(
        "E3",
        "PQE: unified algorithm vs possible-world brute force",
        ("|D|", "unified [s]", "brute force [s]", "speedup", "max |Δ|"),
    )
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3, domain_size=3, seed=size,
        )
        unified_time, unified = time_callable(
            lambda db=database: marginal_probability(query, db), repeats=3
        )
        brute_time, brute = time_callable(
            lambda db=database: marginal_probability_brute_force(query, db),
            repeats=1,
        )
        result.add_row(
            len(database),
            unified_time,
            brute_time,
            round(brute_time / max(unified_time, 1e-9), 1),
            abs(unified - brute),
        )
    result.add_note("brute force is Θ(2^|D|); the unified algorithm is linear")
    return result


# ----------------------------------------------------------------------
# E4 — BSM scaling (Theorem 5.11)
# ----------------------------------------------------------------------
def run_e4_bsm_scaling(
    base_sizes: tuple[int, ...] = (200, 400, 800, 1600),
    repair_sizes: tuple[int, ...] = (16, 32, 64, 128, 256),
    repeats: int = 3,
) -> ExperimentResult:
    """E4: the two legs of O((|D|+|Dr|)·|Dr|²) — linear in |D|, quadratic in |Dr|."""
    query = star_query(2)
    result = ExperimentResult(
        "E4",
        "Theorem 5.11 — BSM runtime: linear leg (|D|) and quadratic leg (|Dr|)",
        ("leg", "|D|", "|Dr|", "θ", "time [s]"),
    )
    d_sizes: list[int] = []
    d_times: list[float] = []
    for size in base_sizes:
        instance = random_bagset_instance(
            query, base_facts_per_relation=size // 2,
            repair_facts_per_relation=8, budget=8,
            domain_size=max(8, size // 4), seed=size,
        )
        elapsed, _ = time_callable(
            lambda inst=instance: maximize(query, inst), repeats=repeats
        )
        d_sizes.append(len(instance.database))
        d_times.append(elapsed)
        result.add_row("|D| sweep", len(instance.database),
                       len(instance.repair_database), instance.budget, elapsed)
    r_sizes: list[int] = []
    r_times: list[float] = []
    for size in repair_sizes:
        instance = random_bagset_instance(
            query, base_facts_per_relation=100,
            repair_facts_per_relation=size // 2, budget=size,
            domain_size=50, seed=size,
        )
        theta = len(instance.repair_database)
        instance = BagSetInstance(
            instance.database, instance.repair_database, budget=theta
        )
        elapsed, _ = time_callable(
            lambda inst=instance: maximize(query, inst), repeats=repeats
        )
        r_sizes.append(max(theta, 1))
        r_times.append(elapsed)
        result.add_row("|Dr| sweep", len(instance.database), theta, theta, elapsed)
    tail = r_times[-1] / r_times[-2]
    result.add_note(
        f"|D| sweep log–log slope = {loglog_slope(d_sizes, d_times):.2f} "
        "(theorem bound: 1)"
    )
    result.add_note(
        f"|Dr| sweep log–log slope = {loglog_slope(r_sizes, r_times):.2f}, "
        f"last-doubling ratio = {tail:.1f}× "
        "(theorem bound: 2, i.e. 4× per doubling; small-θ overhead flattens "
        "the head of the curve)"
    )
    return result


# ----------------------------------------------------------------------
# E5 — BSM vs baselines
# ----------------------------------------------------------------------
def run_e5_bsm_vs_baselines(seeds: tuple[int, ...] = (0, 1, 2, 3, 4, 5)) -> ExperimentResult:
    """E5: unified = brute force everywhere; greedy can be strictly worse."""
    query = q_eq1()
    result = ExperimentResult(
        "E5",
        "BSM: unified vs brute force vs greedy on random instances",
        ("seed", "|D|", "|Dr|", "θ", "unified", "brute", "greedy", "greedy gap"),
    )
    greedy_gaps = []
    for seed in seeds:
        instance = random_bagset_instance(
            query, base_facts_per_relation=3, repair_facts_per_relation=4,
            budget=3, domain_size=3, seed=seed,
        )
        unified = maximize(query, instance)
        brute = maximize_brute_force(query, instance)
        greedy = maximize_greedy(query, instance)
        gap = unified - greedy
        greedy_gaps.append(gap)
        result.add_row(seed, len(instance.database), len(instance.repair_database),
                       instance.budget, unified, brute, greedy, gap)
        assert unified == brute, f"unified {unified} != brute {brute} at seed {seed}"
    result.add_note(
        "unified == brute force on every instance (exactness); "
        f"greedy loses on {sum(1 for g in greedy_gaps if g > 0)}/{len(seeds)} seeds"
    )
    return result


# ----------------------------------------------------------------------
# E6 — Shapley scaling (Theorem 5.16)
# ----------------------------------------------------------------------
def run_e6_shapley_scaling(
    endogenous_sizes: tuple[int, ...] = (16, 32, 64, 128, 256),
    exogenous_sizes: tuple[int, ...] = (100, 200, 400, 800),
    repeats: int = 3,
) -> ExperimentResult:
    """E6: #Sat runtime — quadratic in |Dn| (convolutions), linear in |Dx|."""
    query = star_query(2)
    result = ExperimentResult(
        "E6",
        "Theorem 5.16 — #Sat runtime: |Dn| (quadratic) and |Dx| (linear) legs",
        ("leg", "|Dx|", "|Dn|", "time [s]"),
    )
    n_sizes: list[int] = []
    n_times: list[float] = []
    for size in endogenous_sizes:
        instance = _split_instance(query, exogenous=40, endogenous=size, seed=size)
        elapsed, _ = time_callable(
            lambda inst=instance: sat_counts(query, inst), repeats=repeats
        )
        n_sizes.append(instance.endogenous_count)
        n_times.append(elapsed)
        result.add_row("|Dn| sweep", len(instance.exogenous),
                       instance.endogenous_count, elapsed)
    x_sizes: list[int] = []
    x_times: list[float] = []
    for size in exogenous_sizes:
        instance = _split_instance(query, exogenous=size, endogenous=12, seed=size)
        elapsed, _ = time_callable(
            lambda inst=instance: sat_counts(query, inst), repeats=repeats
        )
        x_sizes.append(len(instance.exogenous))
        x_times.append(elapsed)
        result.add_row("|Dx| sweep", len(instance.exogenous),
                       instance.endogenous_count, elapsed)
    n_tail = n_times[-1] / n_times[-2]
    result.add_note(
        f"|Dn| sweep log–log slope = {loglog_slope(n_sizes, n_times):.2f}, "
        f"last-doubling ratio = {n_tail:.1f}× "
        "(theorem bound: 2; the sparsity-aware convolution beats the "
        "worst case until the vectors densify)"
    )
    result.add_note(
        f"|Dx| sweep log–log slope = {loglog_slope(x_sizes, x_times):.2f} "
        "(theorem bound: 1)"
    )
    return result


def _split_instance(query: BCQ, exogenous: int, endogenous: int, seed: int) -> ShapleyInstance:
    """A random instance with exact exogenous/endogenous sizes."""
    rng = random.Random(seed)
    from repro.workloads.generators import random_database

    total = exogenous + endogenous
    per_relation = max(1, total // len(query.atoms)) + 1
    database = random_database(
        query, per_relation, domain_size=max(8, total // 2), seed=rng
    )
    facts = list(database.facts())
    rng.shuffle(facts)
    endo = facts[:endogenous]
    exo = facts[endogenous:endogenous + exogenous]
    return ShapleyInstance(exogenous=Database(exo), endogenous=Database(endo))


# ----------------------------------------------------------------------
# E7 — Shapley vs baselines
# ----------------------------------------------------------------------
def run_e7_shapley_vs_baselines(
    sample_counts: tuple[int, ...] = (10, 100, 1000, 10000),
) -> ExperimentResult:
    """E7: exactness vs the permutation definition; Monte Carlo convergence."""
    query = q_eq1()
    instance = random_shapley_instance(
        query, facts_per_relation=2, domain_size=2, endogenous_fraction=0.8, seed=7,
    )
    facts = list(instance.endogenous.facts())
    fact = facts[0]
    exact = shapley_value(query, instance, fact)
    by_permutations = shapley_value_by_permutations(query, instance, fact)
    result = ExperimentResult(
        "E7",
        "Shapley: unified (#Sat route) vs permutation definition vs Monte Carlo",
        ("estimator", "samples", "value", "abs error"),
    )
    result.add_row("unified (#Sat)", "-", str(exact), 0)
    result.add_row(
        "permutations (Def. 5.12)", "-", str(by_permutations),
        float(abs(exact - by_permutations)),
    )
    for samples in sample_counts:
        estimate = shapley_value_monte_carlo(query, instance, fact, samples, seed=1)
        result.add_row("Monte Carlo", samples, round(estimate, 5),
                       float(abs(float(exact) - estimate)))
    result.add_note(
        f"instance: |Dx|={len(instance.exogenous)}, |Dn|={instance.endogenous_count}; "
        f"attributed fact: {fact}"
    )
    result.add_note("MC error decays like 1/√samples; the unified value is exact")
    return result


# ----------------------------------------------------------------------
# E8 — hardness (Theorem 4.4)
# ----------------------------------------------------------------------
def run_e8_hardness(ks: tuple[int, ...] = (1, 2, 3)) -> ExperimentResult:
    """E8: the BCBS → BSM reduction on planted-biclique graphs."""
    query = q_nh()
    result = ExperimentResult(
        "E8",
        "Theorem 4.4 — BCBS reduces to BSM Decision for q_nh",
        ("k", "n", "|D|", "|Dr|", "θ", "τ", "BCBS direct", "via reduction",
         "reduction time [s]"),
    )
    for k in ks:
        n = 2 * k + 2
        graph, _, _ = planted_biclique_graph(n=n, k=k, noise=0.3, seed=k)
        direct = has_balanced_biclique(graph, k)
        output = reduce_bcbs(query, graph, k)
        elapsed, via_reduction = time_callable(
            lambda out=output: decide_bsm_decision_smart(out), repeats=1
        )
        result.add_row(
            k, n, len(output.instance.database),
            len(output.instance.repair_database), output.budget, output.target,
            direct, via_reduction, elapsed,
        )
        assert direct == via_reduction
    result.add_note(
        "instance sizes grow polynomially in (n, k); solving time grows "
        "exponentially in k — consistent with NP-hardness and W[1]-hardness "
        "(Cor. 4.5)"
    )
    return result


# ----------------------------------------------------------------------
# E9 — ablation: vector truncation
# ----------------------------------------------------------------------
def run_e9_truncation_ablation(
    multipliers: tuple[int, ...] = (1, 2, 4, 8),
    repeats: int = 3,
) -> ExperimentResult:
    """E9: runtime vs bag-set vector length — the Theorem 5.11 lever."""
    query = star_query(2)
    instance = random_bagset_instance(
        query, base_facts_per_relation=150, repair_facts_per_relation=10,
        budget=8, domain_size=60, seed=9,
    )
    baseline_profile = maximize_profile(query, instance)
    result = ExperimentResult(
        "E9",
        "Ablation — bag-set vector truncation (θ+1 entries vs longer)",
        ("vector length", "time [s]", "answer q(θ)", "same answer"),
    )
    needed = instance.budget + 1
    for multiplier in multipliers:
        length = needed * multiplier
        elapsed, profile = time_callable(
            lambda ln=length: maximize_profile(query, instance, vector_length=ln),
            repeats=repeats,
        )
        answer = profile[instance.budget]
        result.add_row(length, elapsed, answer,
                       answer == baseline_profile[instance.budget])
    result.add_note(
        "answers are identical at every length; runtime grows ≈ quadratically "
        "with vector length — truncation to θ+1 is what buys Theorem 5.11"
    )
    return result


# ----------------------------------------------------------------------
# E10 — ablation: elimination-order policies
# ----------------------------------------------------------------------
def run_e10_order_ablation(repeats: int = 3) -> ExperimentResult:
    """E10: all elimination policies agree (Prop. 5.1 confluence); timing varies."""
    query = star_query(4)
    database = random_probabilistic_database(
        query, facts_per_relation=800, domain_size=3000, seed=10,
    )
    result = ExperimentResult(
        "E10",
        "Ablation — elimination-order policies on a 4-branch star query",
        ("policy", "time [s]", "probability"),
    )
    policies = {
        "rule1_first": "rule1_first",
        "rule2_first": "rule2_first",
        "random(seed=0)": make_random_policy(0),
        "random(seed=1)": make_random_policy(1),
    }
    answers = []
    for label, policy in policies.items():
        monoid = ProbabilityMonoid()

        def run(policy=policy, monoid=monoid):
            return evaluate_hierarchical(
                query, monoid, database.facts(),
                lambda fact: database.probability(fact), policy=policy,
            )

        elapsed, answer = time_callable(run, repeats=repeats)
        answers.append(answer)
        result.add_row(label, elapsed, answer)
    spread = max(answers) - min(answers)
    result.add_note(f"answer spread across policies = {spread:.2e} (confluence)")
    return result


# ----------------------------------------------------------------------
# E11 — algebra law census
# ----------------------------------------------------------------------
def _algebra_samples():
    """(monoid, samples) pairs for the law census."""
    import math

    from repro.algebra.provenance import FreeProvenanceMonoid
    from repro.algebra.real import RealSemiring
    from repro.algebra.resilience import ResilienceMonoid

    free = FreeProvenanceMonoid()
    bag = BagSetMonoid(3)
    shap = ShapleyMonoid(3)
    prov = ProvenanceMonoid()
    prob_samples = [0.0, 0.3, 0.5, 0.9, 1.0]
    bag_samples = [bag.zero, bag.one, bag.star, (0, 1, 2), (1, 2, 2), (2, 2, 3)]
    shap_samples = [
        shap.zero, shap.one, shap.star,
        shap.add(shap.star, shap.star),
        shap.mul(shap.star, shap.star),
    ]
    prov_samples = [
        prov.zero, prov.one, leaf("a"), leaf("b"),
        prov.add(leaf("a"), leaf("b")), prov.mul(leaf("c"), leaf("d")),
    ]
    free_samples = [
        free.zero, free.one, leaf("a"), leaf("b"),
        free.add(leaf("a"), leaf("b")), free.mul(leaf("c"), free.zero),
    ]
    count_samples = [0, 1, 2, 3, 7]
    bool_samples = [False, True]
    return [
        (ProbabilityMonoid(), prob_samples),
        (bag, bag_samples),
        (shap, shap_samples),
        (ResilienceMonoid(), [0, 1, 2, 5, math.inf]),
        (prov, prov_samples),
        (free, free_samples),
        (CountingSemiring(), count_samples),
        (BooleanSemiring(), bool_samples),
        (RealSemiring(), [0.0, 0.5, 1.0, 2.0]),
    ]


def run_e11_law_census() -> ExperimentResult:
    """E11: every structure satisfies Def. 5.6; only the semirings distribute."""
    result = ExperimentResult(
        "E11",
        "Definition 5.6 law census across all implemented structures",
        ("structure", "2-monoid laws", "distributive", "annihilates ⊗0"),
    )
    for monoid, samples in _algebra_samples():
        violations = check_two_monoid_laws(monoid, samples)
        distributive = find_distributivity_violation(monoid, samples) is None
        annihilating = find_annihilation_violation(monoid, samples) is None
        result.add_row(
            monoid.name,
            "ok" if not violations else f"{len(violations)} violations",
            "yes" if distributive else "NO",
            "yes" if annihilating else "NO",
        )
    result.add_note(
        "the three problem 2-monoids violate distributivity — the structural "
        "reason Algorithm 1 cannot extend to all acyclic queries (Section 1)"
    )
    result.add_note(
        "the Shapley 2-monoid also violates annihilation-by-zero, which "
        "forces the union-of-supports join in repro.db.annotated"
    )
    return result


# ----------------------------------------------------------------------
# E12 — extension: resilience as a fourth instantiation (Question 2)
# ----------------------------------------------------------------------
def run_e12_resilience(
    sizes: tuple[int, ...] = (500, 1000, 2000, 4000),
    repeats: int = 3,
) -> ExperimentResult:
    """E12: resilience via the (N ∪ {∞}, +, min) 2-monoid — linear time."""
    from repro.problems.resilience import (
        ResilienceInstance,
        resilience,
        resilience_brute_force,
    )
    from repro.workloads.generators import correlated_database, random_database

    query = q_eq1()
    result = ExperimentResult(
        "E12",
        "Extension — resilience via Algorithm 1 (a new 2-monoid, Question 2)",
        ("|D|", "resilience", "time [s]"),
    )
    measured: list[int] = []
    times: list[float] = []
    for size in sizes:
        database = correlated_database(
            query, shared_values=size // 10, branch_values=size, seed=size
        )
        instance = ResilienceInstance.fully_endogenous(database)
        elapsed, value = time_callable(
            lambda inst=instance: resilience(query, inst), repeats=repeats
        )
        measured.append(len(database))
        times.append(elapsed)
        shown = "∞" if value == float("inf") else int(value)
        result.add_row(len(database), shown, elapsed)
    slope = loglog_slope(measured, times)
    result.add_note(f"log–log slope = {slope:.2f} (linear, like Theorem 5.8)")
    agreements = 0
    for seed in range(8):
        database = random_database(
            query, facts_per_relation=3, domain_size=2, seed=seed
        )
        instance = ResilienceInstance.fully_endogenous(database)
        if resilience(query, instance) == resilience_brute_force(query, instance):
            agreements += 1
    result.add_note(
        f"agreement with subset-enumeration brute force: {agreements}/8 seeds"
    )
    return result


# ----------------------------------------------------------------------
# E13 — the semiring/2-monoid boundary in action
# ----------------------------------------------------------------------
def run_e13_semiring_contrast(
    sizes: tuple[int, ...] = (6, 9, 12, 15),
) -> ExperimentResult:
    """E13: E[Q(D)] (semiring, easy for q_nh) vs P[Q] (2-monoid, hard).

    The same annotations evaluated under the distributive real semiring give
    the expectation for *any* acyclic query in polynomial time, while the
    marginal probability — the non-distributive 2-monoid quantity — needs
    exponential possible-world enumeration on the non-hierarchical q_nh.
    """
    from repro.problems.expected_count import expected_answer_count_direct
    from repro.workloads.generators import random_probabilistic_database

    query = q_nh()
    result = ExperimentResult(
        "E13",
        "Extension — semiring vs 2-monoid on the non-hierarchical q_nh",
        ("|D|", "E[Q(D)] time [s]", "P[Q] brute time [s]", "ratio"),
    )
    for size in sizes:
        pdb = random_probabilistic_database(
            query, facts_per_relation=size // 3, domain_size=3, seed=size
        )
        expectation_time, _ = time_callable(
            lambda db=pdb: expected_answer_count_direct(query, db), repeats=3
        )
        probability_time, _ = time_callable(
            lambda db=pdb: marginal_probability_brute_force(query, db), repeats=1
        )
        result.add_row(
            len(pdb), expectation_time, probability_time,
            round(probability_time / max(expectation_time, 1e-9), 1),
        )
    result.add_note(
        "E[Q(D)] uses a distributive semiring, so it stays polynomial for the "
        "non-hierarchical query; P[Q] is #P-hard for it and the baseline "
        "doubles per fact — the distributivity gap of Section 1, measured"
    )
    return result


# ----------------------------------------------------------------------
# E14 — extension: free-variable (grouped) evaluation
# ----------------------------------------------------------------------
def run_e14_grouped(
    sizes: tuple[int, ...] = (500, 1000, 2000, 4000),
    repeats: int = 3,
) -> ExperimentResult:
    """E14: per-answer K-annotations (GROUP BY analogue) scale linearly."""
    from repro.algebra.counting import CountingSemiring
    from repro.core.grouped import evaluate_grouped
    from repro.workloads.generators import random_probabilistic_database

    query = star_query(2)
    result = ExperimentResult(
        "E14",
        "Extension — free-variable evaluation: per-answer probability",
        ("|D|", "answers", "time [s]"),
    )
    measured: list[int] = []
    times: list[float] = []
    for size in sizes:
        pdb = random_probabilistic_database(
            query, facts_per_relation=size // 2, domain_size=size // 3,
            seed=size,
        )
        def run(pdb=pdb):
            return evaluate_grouped(
                query, {"X"}, ProbabilityMonoid(), pdb.facts(),
                lambda fact: pdb.probability(fact),
            )

        elapsed, answers = time_callable(run, repeats=repeats)
        measured.append(len(pdb))
        times.append(elapsed)
        result.add_row(len(pdb), len(answers), elapsed)
    slope = loglog_slope(measured, times)
    result.add_note(f"log–log slope = {slope:.2f} (linear)")
    # Cross-check per-answer counts against assignment grouping.
    from collections import Counter
    from repro.db.evaluation import satisfying_assignments
    from repro.workloads.generators import random_database

    database = random_database(query, facts_per_relation=50, domain_size=20, seed=14)
    grouped = evaluate_grouped(
        query, {"X"}, CountingSemiring(), database.facts(), lambda _f: 1
    )
    reference = Counter(
        (assignment["X"],)
        for assignment in satisfying_assignments(query, database)
    )
    matches = dict(grouped.items()) == dict(reference)
    result.add_note(f"per-answer counts match assignment grouping: {matches}")
    return result


# ----------------------------------------------------------------------
# E15 — extension: incremental maintenance under updates
# ----------------------------------------------------------------------
def run_e15_incremental(
    sizes: tuple[int, ...] = (1000, 2000, 4000, 8000),
    updates: int = 200,
) -> ExperimentResult:
    """E15: amortized update cost vs full re-evaluation (Question 2)."""
    import time as _time

    from repro.core.incremental import IncrementalEvaluator
    from repro.db.fact import Fact

    query = q_eq1()
    monoid = ProbabilityMonoid()
    result = ExperimentResult(
        "E15",
        "Extension — incremental maintenance under single-fact updates",
        ("|D|", "re-eval / update [s]", "incremental / update [s]", "speedup"),
    )
    for size in sizes:
        database = random_probabilistic_database(
            query, facts_per_relation=size // 3, domain_size=max(4, size // 6),
            seed=size,
        )
        annotated = KDatabase.annotate(
            query, monoid, database.facts(),
            lambda fact, db=database: db.probability(fact),
        )
        rng = random.Random(size)
        facts = [
            Fact("R", (rng.randrange(size), rng.randrange(size)))
            for _ in range(updates)
        ]
        # Full re-evaluation baseline: rebuild + run per update.
        start = _time.perf_counter()
        working = dict(
            (fact, database.probability(fact)) for fact in database.facts()
        )
        for fact in facts[: max(10, updates // 10)]:
            working[fact] = 0.5
            fresh = KDatabase.annotate(
                query, monoid, working.keys(), working.get
            )
            run_algorithm(query, fresh)
        reeval_per_update = (_time.perf_counter() - start) / max(
            10, updates // 10
        )
        # Incremental path.
        evaluator = IncrementalEvaluator(query, annotated)
        start = _time.perf_counter()
        for fact in facts:
            evaluator.update(fact, 0.5)
        incremental_per_update = (_time.perf_counter() - start) / updates
        result.add_row(
            len(database),
            reeval_per_update,
            incremental_per_update,
            round(reeval_per_update / max(incremental_per_update, 1e-9), 1),
        )
    result.add_note(
        "incremental cost is O(plan depth × group size) per update and is "
        "essentially flat in |D|; the re-evaluation baseline grows linearly "
        "(Thm 5.8), so the speedup widens with the database"
    )
    return result


ALL_EXPERIMENTS = {
    "E0": run_e0_figure1,
    "E1": run_e1_elimination_examples,
    "E2": run_e2_pqe_scaling,
    "E3": run_e3_pqe_vs_bruteforce,
    "E4": run_e4_bsm_scaling,
    "E5": run_e5_bsm_vs_baselines,
    "E6": run_e6_shapley_scaling,
    "E7": run_e7_shapley_vs_baselines,
    "E8": run_e8_hardness,
    "E9": run_e9_truncation_ablation,
    "E10": run_e10_order_ablation,
    "E11": run_e11_law_census,
    "E12": run_e12_resilience,
    "E13": run_e13_semiring_contrast,
    "E14": run_e14_grouped,
    "E15": run_e15_incremental,
}


def run_all() -> list[ExperimentResult]:
    """Run the full suite in order (used by examples/run_all_experiments.py)."""
    return [runner() for runner in ALL_EXPERIMENTS.values()]
