"""repro — a reproduction of "A Unifying Algorithm for Hierarchical Queries".

PODS 2025, by Mahmoud Abo Khamis, Jesse Comer, Phokion G. Kolaitis, Sudeepa
Roy and Val Tannen (arXiv:2506.10238).

The library implements:

* the query model and the three equivalent characterizations of hierarchical
  SJF-BCQs (:mod:`repro.query`);
* a relational substrate with exact CQ evaluation and K-annotated relations
  (:mod:`repro.db`);
* the 2-monoid algebra of Definition 5.6 with all of the paper's
  instantiations (:mod:`repro.algebra`);
* **Algorithm 1**, the unifying polynomial-time algorithm
  (:mod:`repro.core`);
* problem front-ends with independent brute-force baselines
  (:mod:`repro.problems`);
* the Theorem 4.4 NP-hardness reduction (:mod:`repro.hardness`);
* workload generators and the benchmark harness
  (:mod:`repro.workloads`, :mod:`repro.bench`).

Quickstart
----------
>>> from repro import parse_query, Database, BagSetInstance, maximize
>>> q = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)")
>>> d = Database.from_relations({"R": [(1, 5)], "S": [(1, 1), (1, 2)],
...                              "T": [(1, 2, 4)]})
>>> dr = Database.from_relations({"R": [(1, 6), (1, 7)],
...                               "T": [(1, 1, 4), (1, 2, 9)]})
>>> maximize(q, BagSetInstance(d, dr, budget=2))
4
"""

from repro.algebra import (
    BagSetMonoid,
    BooleanSemiring,
    CountingSemiring,
    ExactProbabilityMonoid,
    ProbabilityMonoid,
    ProvenanceMonoid,
    SatVector,
    ShapleyMonoid,
    TwoMonoid,
)
from repro.core import (
    CountingMonoid,
    IncrementalEvaluator,
    Plan,
    compile_plan,
    evaluate_grouped,
    evaluate_hierarchical,
    execute_plan,
    naive_lineage,
    read_once_lineage,
    render_rules,
    run_algorithm,
)
from repro.db import Database, Fact, KDatabase, KRelation, repair_cost
from repro.engine import Engine, EngineSession, register_request_family
from repro.serve import (
    Request,
    Scheduler,
    Server,
    SessionPool,
    serve_requests,
)
from repro.db.evaluation import (
    count_satisfying_assignments,
    evaluates_true,
    satisfying_assignments,
)
from repro.exceptions import (
    AlgebraError,
    NotHierarchicalError,
    NotSelfJoinFreeError,
    ParseError,
    QueryError,
    ReductionError,
    ReproError,
    SchemaError,
)
from repro.problems import (
    BagSetInstance,
    ProbabilisticDatabase,
    ResilienceInstance,
    ShapleyInstance,
    banzhaf_value,
    contingency_set,
    expected_answer_count,
    optimal_repair,
    resilience,
    marginal_probability,
    marginal_probability_brute_force,
    maximize,
    maximize_brute_force,
    maximize_greedy,
    maximize_profile,
    sat_counts,
    sat_counts_brute_force,
    shapley_value,
    shapley_values,
)
from repro.query import (
    Atom,
    BCQ,
    eliminate,
    is_hierarchical,
    make_query,
    parse_query,
)

__version__ = "1.0.0"

__all__ = [
    "AlgebraError",
    "Atom",
    "BCQ",
    "BagSetInstance",
    "BagSetMonoid",
    "BooleanSemiring",
    "CountingMonoid",
    "CountingSemiring",
    "Database",
    "Engine",
    "EngineSession",
    "ExactProbabilityMonoid",
    "Fact",
    "KDatabase",
    "KRelation",
    "NotHierarchicalError",
    "NotSelfJoinFreeError",
    "ParseError",
    "IncrementalEvaluator",
    "Plan",
    "ProbabilisticDatabase",
    "ProbabilityMonoid",
    "ProvenanceMonoid",
    "QueryError",
    "ReductionError",
    "ReproError",
    "Request",
    "ResilienceInstance",
    "Scheduler",
    "Server",
    "SessionPool",
    "SatVector",
    "SchemaError",
    "ShapleyInstance",
    "ShapleyMonoid",
    "TwoMonoid",
    "__version__",
    "banzhaf_value",
    "compile_plan",
    "contingency_set",
    "count_satisfying_assignments",
    "eliminate",
    "evaluate_grouped",
    "evaluate_hierarchical",
    "expected_answer_count",
    "evaluates_true",
    "execute_plan",
    "is_hierarchical",
    "make_query",
    "marginal_probability",
    "marginal_probability_brute_force",
    "maximize",
    "maximize_brute_force",
    "maximize_greedy",
    "maximize_profile",
    "naive_lineage",
    "optimal_repair",
    "parse_query",
    "read_once_lineage",
    "register_request_family",
    "render_rules",
    "repair_cost",
    "resilience",
    "run_algorithm",
    "serve_requests",
    "sat_counts",
    "sat_counts_brute_force",
    "satisfying_assignments",
    "shapley_value",
    "shapley_values",
]
