"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``check``       hierarchicality verdict, elimination trace, compiled plan
``count``       bag-set value ``Q(D)`` of a query on a database
``pqe``         marginal probability over a probabilistic database
``bsm``         bag-set maximization (optionally with the repair witness)
``shapley``     Shapley (and Banzhaf) values of endogenous facts
``resilience``  resilience and an optimal contingency set
``serve``       concurrent request serving from a JSON request stream
``cache``       compiled-plan cache counters (``--clear`` to drop it)
``experiments`` regenerate EXPERIMENTS.md tables
``bench``       scalar-vs-kernel + amortized-session + serving perf suite

The evaluation commands (``pqe``, ``bsm``, ``shapley``, ``resilience``) run
through the unified engine: each builds an :class:`~repro.engine.Engine`
from the command-line policy and opens one
:class:`~repro.engine.EngineSession` for all of the command's requests.

Databases are JSON files in the :mod:`repro.db.io` formats::

    {"relations": {"R": [[1, 5]], "S": [[1, 1], [1, 2]]}}           # set DB
    {"facts": [{"relation": "R", "values": [1, 5],
                "probability": "1/2"}]}                              # TID
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.perf import (
    PERF_EXPERIMENTS,
    compare_perf_documents,
    render_perf_summary,
    run_perf_suite,
    write_perf_json,
)
from repro.core.algorithm import KERNEL_MODES
from repro.core.plan import clear_plan_cache, compile_plan, plan_cache_info
from repro.db.evaluation import count_satisfying_assignments
from repro.db.io import load_database, load_probabilistic
from repro.engine import Engine
from repro.exceptions import ReproError
from repro.problems.bagset_max import BagSetInstance, optimal_repair
from repro.problems.resilience import ResilienceInstance, contingency_set
from repro.query.elimination import eliminate, policy_names
from repro.query.hierarchy import is_hierarchical
from repro.query.parser import parse_query


def _add_policy_option(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--policy",
        default="rule1_first",
        choices=policy_names(),
        help="elimination policy (min_support is cost-based)",
    )


def _add_kernel_mode_option(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--kernel-mode",
        dest="kernel_mode",
        default="auto",
        choices=KERNEL_MODES,
        help=(
            "execution tier: auto/array use the columnar numpy tier for "
            "flat-carrier monoids (falling back to the batched kernels), "
            "sharded fans eligible plans out across a shared-memory "
            "process pool (see --shard-workers), batched forces the "
            "batched kernels, scalar the per-element baseline"
        ),
    )


def _add_shard_workers_option(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--shard-workers", type=int, default=None, dest="shard_workers",
        help=(
            "process-pool size of the sharded tier (kernel-mode sharded); "
            "default: min(8, cpu count)"
        ),
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A Unifying Algorithm for Hierarchical Queries (PODS 2025)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="analyze a query")
    check.add_argument("query", help='e.g. "Q() :- R(A,B), S(A,C)"')
    _add_policy_option(check)

    count = commands.add_parser("count", help="bag-set value Q(D)")
    count.add_argument("query")
    count.add_argument("--db", required=True, help="set-database JSON file")

    pqe = commands.add_parser("pqe", help="probabilistic query evaluation")
    pqe.add_argument("query")
    pqe.add_argument("--db", required=True, help="probabilistic-database JSON file")
    pqe.add_argument("--exact", action="store_true", help="exact rationals")
    _add_policy_option(pqe)
    _add_kernel_mode_option(pqe)

    bsm = commands.add_parser("bsm", help="bag-set maximization")
    bsm.add_argument("query")
    bsm.add_argument("--db", required=True, help="base database JSON file")
    bsm.add_argument("--repair", required=True, help="repair database JSON file")
    bsm.add_argument("--budget", type=int, required=True, help="θ")
    bsm.add_argument(
        "--witness", action="store_true", help="also print an optimal repair"
    )
    _add_policy_option(bsm)
    _add_kernel_mode_option(bsm)

    shapley = commands.add_parser("shapley", help="Shapley values of facts")
    shapley.add_argument("query")
    shapley.add_argument("--exogenous", required=True, help="JSON file")
    shapley.add_argument("--endogenous", required=True, help="JSON file")
    shapley.add_argument(
        "--banzhaf", action="store_true", help="also print Banzhaf indices"
    )
    _add_policy_option(shapley)
    _add_kernel_mode_option(shapley)

    res = commands.add_parser("resilience", help="resilience of a true query")
    res.add_argument("query")
    res.add_argument("--db", required=True, help="endogenous database JSON file")
    res.add_argument("--exogenous", help="optional exogenous JSON file")
    res.add_argument(
        "--witness", action="store_true", help="also print a contingency set"
    )
    _add_kernel_mode_option(res)

    serve = commands.add_parser(
        "serve",
        help="serve a JSON request stream through the concurrent scheduler",
    )
    serve.add_argument(
        "--requests",
        required=True,
        help="request-stream JSON file (query + data + requests)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, help="scheduler worker threads"
    )
    _add_shard_workers_option(serve)
    serve.add_argument(
        "--stats", action="store_true",
        help="also print scheduler/session counters",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=None, dest="queue_limit",
        help="bound the pending-request queue (default: unbounded)",
    )
    serve.add_argument(
        "--shed-oldest", action="store_true", dest="shed_oldest",
        help=(
            "on a full queue, shed the oldest queued request instead of "
            "rejecting the new one"
        ),
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None, dest="deadline_ms",
        help=(
            "default per-request deadline in milliseconds (expired requests "
            "fail with DeadlineExceeded before execution)"
        ),
    )
    serve.add_argument(
        "--max-retries", type=int, default=0, dest="max_retries",
        help="retry budget for transient failures (default: no retries)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=None, dest="rate_limit",
        help="per-family admission rate in requests/second",
    )
    serve.add_argument(
        "--memo-limit", type=int, default=None, dest="memo_limit",
        help="LRU cap on the session result memo (default: unbounded)",
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT", dest="http_port",
        help=(
            "after serving the stream, keep an HTTP front-end listening on "
            "PORT (0 = ephemeral): POST /v1/query, POST /v1/stream, "
            "GET /metrics (Prometheus), GET /healthz"
        ),
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address for --http (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--trace-log", default=None, dest="trace_log", metavar="PATH",
        help="append one JSON span record per resolved request to PATH",
    )
    _add_policy_option(serve)
    _add_kernel_mode_option(serve)

    cache = commands.add_parser(
        "cache", help="compiled-plan cache counters"
    )
    cache.add_argument(
        "--clear", action="store_true", help="drop every memoized plan first"
    )

    experiments = commands.add_parser(
        "experiments", help="regenerate EXPERIMENTS.md tables"
    )
    experiments.add_argument(
        "ids", nargs="*", help=f"subset of {', '.join(ALL_EXPERIMENTS)}"
    )

    bench = commands.add_parser(
        "bench",
        help="scalar-vs-kernel + amortized-session perf suite (BENCH_perf.json)",
    )
    bench.add_argument(
        "ids", nargs="*", help=f"subset of {', '.join(PERF_EXPERIMENTS)}"
    )
    bench.add_argument(
        "--json", dest="json_path", help="write the machine-readable document here"
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="tiny sizes, one repeat (smoke agreement check)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing repeats"
    )
    bench.add_argument(
        "--kernel-mode",
        dest="kernel_mode",
        default=None,
        choices=KERNEL_MODES,
        help=(
            "measure only this tier against the scalar baseline (default: "
            "every available tier)"
        ),
    )
    _add_shard_workers_option(bench)
    bench.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help=(
            "diff two BENCH_perf.json documents (per-experiment speedup "
            "deltas) instead of running experiments"
        ),
    )
    return parser


def _cmd_check(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(f"query: {query}")
    hierarchical = is_hierarchical(query)
    print(f"hierarchical: {hierarchical}")
    print()
    print(f"elimination trace ({args.policy}):")
    print(eliminate(query, policy=args.policy))
    if hierarchical:
        print()
        print(compile_plan(query, policy=args.policy))
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    database = load_database(args.db)
    print(count_satisfying_assignments(query, database))
    return 0


def _engine_from(args: argparse.Namespace) -> Engine:
    """An engine configured from ``--policy`` and ``--kernel-mode``."""
    return Engine(
        policy=getattr(args, "policy", "rule1_first"),
        kernel_mode=getattr(args, "kernel_mode", "auto"),
    )


def _cmd_pqe(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    database = load_probabilistic(args.db)
    session = _engine_from(args).open(query, probabilistic=database)
    probability = session.pqe(exact=args.exact)
    if args.exact:
        print(f"{probability} ≈ {float(probability):.6f}")
    else:
        print(f"{float(probability):.6f}")
    return 0


def _cmd_bsm(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    database = load_database(args.db)
    repair = load_database(args.repair)
    instance = BagSetInstance(
        database=database, repair_database=repair, budget=args.budget
    )
    session = _engine_from(args).open(query, database=database, repair=repair)
    profile = session.bagset_profile(args.budget)
    print(f"optimal Q(D') at budget θ={args.budget}: {profile[args.budget]}")
    print(f"budget profile q(0..θ): {profile}")
    if args.witness:
        value, added = optimal_repair(query, instance)
        print(f"an optimal repair (value {value}):")
        for fact in sorted(added, key=repr):
            print(f"  + {fact}")
    return 0


def _cmd_shapley(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    session = _engine_from(args).open(
        query,
        exogenous=load_database(args.exogenous),
        endogenous=load_database(args.endogenous),
    )
    values = session.shapley_values()
    ranked = sorted(values.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    for fact, value in ranked:
        line = f"{str(fact):<40} shapley={value}"
        if args.banzhaf:
            line += f"  banzhaf={session.banzhaf_value(fact)}"
        print(line)
    return 0


def _cmd_resilience(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    exogenous = (
        load_database(args.exogenous) if args.exogenous else None
    )
    from repro.db.database import Database

    instance = ResilienceInstance(
        exogenous=exogenous or Database(),
        endogenous=load_database(args.db),
    )
    session = _engine_from(args).open(
        query, exogenous=instance.exogenous, endogenous=instance.endogenous
    )
    value = session.resilience()
    if math.isinf(value):
        print("resilience: ∞ (the exogenous facts alone satisfy the query)")
    else:
        print(f"resilience: {int(value)}")
        if args.witness:
            chosen = contingency_set(query, instance)
            assert chosen is not None
            print("a minimum contingency set:")
            for fact in sorted(chosen, key=repr):
                print(f"  - {fact}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from repro.serve import (
        AdmissionControl,
        RetryPolicy,
        Server,
        load_request_stream,
    )

    from repro.core.sharded import validate_worker_count

    try:
        validate_worker_count(args.workers, what="worker")
        if args.shard_workers is not None:
            validate_worker_count(args.shard_workers, what="shard worker")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    query, data, requests = load_request_stream(args.requests)
    if not requests:
        print("no requests in stream")
        return 0
    engine = Engine(
        policy=args.policy,
        kernel_mode=args.kernel_mode,
        memo_limit=args.memo_limit,
    )
    admission = AdmissionControl(
        queue_limit=args.queue_limit,
        shed_policy="shed_oldest" if args.shed_oldest else "reject",
        rate_limit=args.rate_limit,
        default_deadline=(
            None if args.deadline_ms is None else args.deadline_ms / 1000.0
        ),
    )
    retry = RetryPolicy(max_retries=args.max_retries)
    event_log = None
    if args.trace_log is not None:
        from repro.obs import EventLog

        event_log = EventLog(args.trace_log)
    started = time.perf_counter()
    with Server(
        query,
        engine=engine,
        workers=args.workers,
        shard_workers=args.shard_workers,
        admission=admission,
        retry=retry,
        event_log=event_log,
        **data,
    ) as server:
        # Admission may reject a submission outright (full queue, rate
        # limit); record the error in the request's slot so output order
        # still matches the stream.
        futures: list = []
        for request in requests:
            try:
                futures.append(server.submit(request))
            except ReproError as error:
                futures.append(error)
        failures = 0
        for index, (request, future) in enumerate(zip(requests, futures)):
            try:
                if isinstance(future, ReproError):
                    raise future
                print(f"[{index}] {request} = {future.result()}")
            except ReproError as error:
                failures += 1
                print(f"[{index}] {request} failed: {error}")
        elapsed = time.perf_counter() - started
        stats = server.stats()
        scheduler_stats = stats["scheduler"]
        memo = stats["session"]["memo"]
        print(
            f"served {len(requests)} requests in {elapsed:.3f}s "
            f"({len(requests) / max(elapsed, 1e-9):.1f} req/s, "
            f"{args.workers} workers)"
        )
        if args.stats:
            # One registry snapshot drives both stats() and this printer,
            # so the flat aliases can never drift from the nested view.
            from repro.serve.scheduler import HEADLINE_COUNTERS

            for key in HEADLINE_COUNTERS:
                print(f"{key}: {scheduler_stats[key]}")
            print(f"memo_hits: {memo['hits']}")
            print(f"memo_misses: {memo['misses']}")
            print(f"memo_evictions: {memo['evictions']}")
        if args.http_port is not None:
            from repro.serve.http import HttpFrontend

            with HttpFrontend(
                server, host=args.host, port=args.http_port
            ).start() as frontend:
                print(f"listening on {frontend.url}", flush=True)
                try:
                    import threading

                    threading.Event().wait()
                except KeyboardInterrupt:
                    print("shutting down")
    if event_log is not None:
        event_log.close()
    return 1 if failures else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    if args.clear:
        clear_plan_cache()
        print("plan cache cleared")
    info = plan_cache_info()
    for key in ("size", "max_size", "hits", "misses"):
        print(f"{key}: {info[key]}")
    total = info["hits"] + info["misses"]
    if total:
        print(f"hit_rate: {info['hits'] / total:.1%}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    requested = args.ids or list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}", file=sys.stderr)
        return 2
    for name in requested:
        print(ALL_EXPERIMENTS[name]().render())
        print()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.compare:
        old_path, new_path = args.compare
        if args.ids or args.json_path:
            print(
                "error: --compare takes no experiment ids or --json",
                file=sys.stderr,
            )
            return 2
        import json

        with open(old_path, encoding="utf-8") as handle:
            old_document = json.load(handle)
        with open(new_path, encoding="utf-8") as handle:
            new_document = json.load(handle)
        print(compare_perf_documents(old_document, new_document))
        return 0
    requested = args.ids or list(PERF_EXPERIMENTS)
    unknown = [name for name in requested if name not in PERF_EXPERIMENTS]
    if unknown:
        print(f"unknown perf experiment id(s): {unknown}", file=sys.stderr)
        return 2
    if args.shard_workers is not None:
        from repro.core.sharded import set_shard_workers

        set_shard_workers(args.shard_workers)
    document = run_perf_suite(
        requested, quick=args.quick, repeats=args.repeats,
        tier=args.kernel_mode,
    )
    print(render_perf_summary(document))
    if args.json_path:
        path = write_perf_json(document, args.json_path)
        print(f"\nwrote {path}")
    if not all(exp["agree"] for exp in document["experiments"].values()):
        print("error: kernel/scalar disagreement detected", file=sys.stderr)
        return 1
    return 0


_HANDLERS = {
    "check": _cmd_check,
    "count": _cmd_count,
    "pqe": _cmd_pqe,
    "bsm": _cmd_bsm,
    "shapley": _cmd_shapley,
    "resilience": _cmd_resilience,
    "serve": _cmd_serve,
    "cache": _cmd_cache,
    "experiments": _cmd_experiments,
    "bench": _cmd_bench,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
