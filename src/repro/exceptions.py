"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class QueryError(ReproError):
    """Raised when a query is malformed or violates a required property."""


class ParseError(QueryError):
    """Raised when a query string cannot be parsed."""


class NotSelfJoinFreeError(QueryError):
    """Raised when an operation requires a self-join-free query."""


class NotHierarchicalError(QueryError):
    """Raised when an operation requires a hierarchical query.

    Algorithm 1 applies only to hierarchical SJF-BCQs (Proposition 5.1 of the
    paper); feeding it a non-hierarchical query raises this error.
    """


class SchemaError(ReproError):
    """Raised when facts or relations do not match the expected schema."""


class AlgebraError(ReproError):
    """Raised when 2-monoid elements are used inconsistently."""


class ReductionError(ReproError):
    """Raised when a hardness reduction receives an invalid input."""
