"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers can
catch library failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class QueryError(ReproError):
    """Raised when a query is malformed or violates a required property."""


class ParseError(QueryError):
    """Raised when a query string cannot be parsed."""


class NotSelfJoinFreeError(QueryError):
    """Raised when an operation requires a self-join-free query."""


class NotHierarchicalError(QueryError):
    """Raised when an operation requires a hierarchical query.

    Algorithm 1 applies only to hierarchical SJF-BCQs (Proposition 5.1 of the
    paper); feeding it a non-hierarchical query raises this error.
    """


class SchemaError(ReproError):
    """Raised when facts or relations do not match the expected schema."""


class AlgebraError(ReproError):
    """Raised when 2-monoid elements are used inconsistently."""


class ReductionError(ReproError):
    """Raised when a hardness reduction receives an invalid input."""


class TransientError(ReproError):
    """A failure that may succeed on retry (the serving layer's retry class).

    The scheduler's retry policy (:class:`repro.serve.admission.RetryPolicy`)
    retries exactly this class by default; the fault-injection harness
    (:mod:`repro.serve.faults`) raises it to simulate flaky kernels, and a
    worker death re-queues the claimed requests wrapped in it when the
    re-queue budget is exhausted.
    """


class DeadlineExceeded(ReproError):
    """A request's deadline expired before its execution started.

    Deadlines are checked at claim time (see
    :class:`repro.serve.scheduler.Scheduler`), so queued-but-dead work is
    resolved with this error without paying for execution.
    """


class QueueFullError(ReproError):
    """The scheduler's bounded request queue rejected an admission.

    Raised on submit under the ``"reject"`` shed policy, or set on the
    *oldest* queued request's future under ``"shed_oldest"``.
    """


class RateLimitedError(QueueFullError):
    """A per-family token bucket rejected an admission.

    Subclasses :class:`QueueFullError` so one ``except`` clause covers both
    backpressure rejections.
    """


class CircuitOpenError(ReproError):
    """The per-session circuit breaker is open: requests fail fast.

    The breaker first degrades the session's kernel tier (array → batched,
    bit-identical results); only when failures persist on the degraded tier
    does it open and reject with this error until the cool-down elapses.
    """
