"""NP-hardness side of the dichotomy: BCBS and the Theorem 4.4 reduction."""

from repro.hardness.bcbs import (
    Graph,
    Vertex,
    complete_bipartite_graph,
    find_balanced_biclique,
    has_balanced_biclique,
    max_balanced_biclique,
)
from repro.hardness.reduction import (
    ReductionOutput,
    decide_bcbs_via_bsm,
    decide_bsm_decision_smart,
    extract_biclique_from_repair,
    reduce_bcbs,
)

__all__ = [
    "Graph",
    "ReductionOutput",
    "Vertex",
    "complete_bipartite_graph",
    "decide_bcbs_via_bsm",
    "decide_bsm_decision_smart",
    "extract_biclique_from_repair",
    "find_balanced_biclique",
    "has_balanced_biclique",
    "max_balanced_biclique",
    "reduce_bcbs",
]
