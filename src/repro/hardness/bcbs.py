"""The Balanced Complete Bipartite Subgraph (BCBS) problem.

BCBS (Garey & Johnson, problem GT24; also known as Bipartite Clique): given
an undirected self-loop-free graph ``G`` and ``k``, decide whether ``G``
contains a complete bipartite subgraph with two parts of size ``k`` each.
Theorem 4.4 reduces BCBS to Bag-Set Maximization Decision for every
non-hierarchical SJF-BCQ, establishing NP-completeness of the latter.

We implement the graph model and an exact (exponential) BCBS solver used to
validate the reduction end-to-end on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable

from repro.exceptions import ReductionError

Vertex = Hashable


@dataclass(frozen=True)
class Graph:
    """An undirected, self-loop-free graph."""

    vertices: frozenset[Vertex]
    edges: frozenset[frozenset[Vertex]]

    def __post_init__(self) -> None:
        for edge in self.edges:
            if len(edge) != 2:
                raise ReductionError(f"edge {set(edge)} is not a 2-element set")
            if not edge <= self.vertices:
                raise ReductionError(f"edge {set(edge)} uses unknown vertices")

    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[Vertex, Vertex]], vertices: Iterable[Vertex] = ()
    ) -> "Graph":
        """Build a graph from vertex pairs (self-loops are rejected)."""
        edge_set = set()
        vertex_set = set(vertices)
        for u, v in edges:
            if u == v:
                raise ReductionError(f"self-loop at {u!r} is not allowed")
            edge_set.add(frozenset({u, v}))
            vertex_set.update((u, v))
        return cls(frozenset(vertex_set), frozenset(edge_set))

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return frozenset({u, v}) in self.edges

    def neighbors(self, vertex: Vertex) -> frozenset[Vertex]:
        return frozenset(
            next(iter(edge - {vertex}))
            for edge in self.edges
            if vertex in edge
        )

    @property
    def vertex_count(self) -> int:
        return len(self.vertices)

    @property
    def edge_count(self) -> int:
        return len(self.edges)


def find_balanced_biclique(
    graph: Graph, k: int
) -> tuple[frozenset[Vertex], frozenset[Vertex]] | None:
    """Find a complete bipartite subgraph with parts of size *k*, if one exists.

    Exhaustive over k-subsets of the vertices for the first part; the second
    part is any k common neighbors.  (Because the graph has no self-loops,
    common neighbors of a set are automatically disjoint from it.)
    """
    if k <= 0:
        raise ReductionError("k must be positive")
    vertices = sorted(graph.vertices, key=repr)
    neighborhoods = {vertex: graph.neighbors(vertex) for vertex in vertices}
    for part_one in combinations(vertices, k):
        common: frozenset[Vertex] | None = None
        for vertex in part_one:
            neighborhood = neighborhoods[vertex]
            common = neighborhood if common is None else common & neighborhood
            if len(common) < k:
                break
        if common is not None and len(common) >= k:
            part_two = frozenset(sorted(common, key=repr)[:k])
            return frozenset(part_one), part_two
    return None


def has_balanced_biclique(graph: Graph, k: int) -> bool:
    """Decide BCBS by exhaustive search (exponential; test/bench scale only)."""
    return find_balanced_biclique(graph, k) is not None


def max_balanced_biclique(graph: Graph) -> int:
    """The largest *k* with a balanced k×k biclique (0 for edgeless graphs)."""
    best = 0
    k = 1
    while k <= graph.vertex_count // 2:
        if not has_balanced_biclique(graph, k):
            break
        best = k
        k += 1
    return best


def complete_bipartite_graph(left: int, right: int) -> Graph:
    """``K_{left,right}`` with vertices ``('u', i)`` and ``('v', j)``."""
    edges = [
        (("u", i), ("v", j)) for i in range(left) for j in range(right)
    ]
    vertices = [("u", i) for i in range(left)] + [("v", j) for j in range(right)]
    return Graph.from_edges(edges, vertices)
