"""The Theorem 4.4 reduction: BCBS → Bag-Set Maximization Decision.

For any non-hierarchical SJF-BCQ ``Q``, the query contains the pattern
``R(A, X...), S(A, B, Y...), T(B, Z...)`` with ``A ∉ vars(T)``,
``B ∉ vars(R)``.  Given a BCBS instance ``(G, k)``:

* the domain is ``V``; all variables outside ``{A, B}`` are pinned to a
  fixed anchor vertex ``a``;
* the edge relation is encoded into ``S`` (and every atom other than ``R``
  and ``T``) inside the base database ``D``;
* ``D`` contains no ``R`` or ``T`` facts; the repair database ``Dr``
  offers one ``R``-fact per vertex (choosing it puts the vertex in part
  ``U1``) and one ``T``-fact per vertex (part ``U2``);
* budget ``θ = 2k``, target ``τ = k²``.

Then ``G`` has a balanced ``k × k`` biclique **iff** some repair of cost
``≤ 2k`` achieves bag-set value ``≥ k²``.  The tests verify this equivalence
exhaustively on small graphs, and :func:`extract_biclique_from_repair`
recovers the planted biclique from an optimal repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.db.database import Database
from repro.db.evaluation import count_satisfying_assignments
from repro.db.fact import Fact
from repro.exceptions import ReductionError
from repro.hardness.bcbs import Graph, Vertex
from repro.problems.bagset_max import BagSetInstance, maximize_brute_force
from repro.query.atoms import Atom
from repro.query.bcq import BCQ
from repro.query.hierarchy import (
    NonHierarchicalWitness,
    find_non_hierarchical_witness,
)


@dataclass(frozen=True)
class ReductionOutput:
    """A constructed Bag-Set Maximization Decision instance plus metadata."""

    query: BCQ
    instance: BagSetInstance
    target: int
    witness: NonHierarchicalWitness
    anchor: Vertex

    @property
    def budget(self) -> int:
        return self.instance.budget


def _fact_for(atom: Atom, a_value: Vertex, b_value: Vertex, anchor: Vertex,
              witness: NonHierarchicalWitness) -> Fact:
    """The fact of *atom* under the Γ-tuple with A=a_value, B=b_value."""
    values = tuple(
        a_value if variable == witness.variable_a
        else b_value if variable == witness.variable_b
        else anchor
        for variable in atom.variables
    )
    return Fact(atom.relation, values)


def reduce_bcbs(query: BCQ, graph: Graph, k: int) -> ReductionOutput:
    """Construct the Theorem 4.4 instance ``(D, Dr, θ=2k, τ=k²)``.

    Raises
    ------
    ReductionError
        If *query* is hierarchical (the reduction needs the forbidden
        pattern) or the graph is degenerate.
    """
    if k <= 0:
        raise ReductionError("k must be positive")
    witness = find_non_hierarchical_witness(query)
    if witness is None:
        raise ReductionError(
            f"query {query} is hierarchical; Theorem 4.4 applies only to "
            "non-hierarchical queries"
        )
    if not graph.vertices:
        raise ReductionError("the graph must have at least one vertex")
    anchor = sorted(graph.vertices, key=repr)[0]

    base_facts: list[Fact] = []
    repair_facts: list[Fact] = []
    edge_pairs = [
        (u, v)
        for edge in graph.edges
        for u, v in (tuple(sorted(edge, key=repr)),)
        for u, v in ((u, v), (v, u))
    ]
    for atom in query.atoms:
        if atom in (witness.atom_r, witness.atom_t):
            continue
        # Atoms other than R and T: one fact per (ordered) edge, in D.
        base_facts.extend(
            _fact_for(atom, u, v, anchor, witness) for u, v in edge_pairs
        )
    for vertex in graph.vertices:
        repair_facts.append(
            _fact_for(witness.atom_r, vertex, anchor, anchor, witness)
        )
        repair_facts.append(
            _fact_for(witness.atom_t, anchor, vertex, anchor, witness)
        )

    instance = BagSetInstance(
        database=Database(base_facts),
        repair_database=Database(repair_facts),
        budget=2 * k,
    )
    return ReductionOutput(
        query=query,
        instance=instance,
        target=k * k,
        witness=witness,
        anchor=anchor,
    )


def decide_bcbs_via_bsm(query: BCQ, graph: Graph, k: int) -> bool:
    """Decide BCBS by reducing to BSM and brute-forcing the BSM instance.

    Exponential (as it must be for non-hierarchical queries unless P = NP);
    used to validate the reduction against the direct BCBS solver.
    """
    output = reduce_bcbs(query, graph, k)
    return maximize_brute_force(query, output.instance) >= output.target


def decide_bsm_decision_smart(output: ReductionOutput) -> bool:
    """A structure-aware exponential solver for *reduction* instances.

    Exploits that only ``R``/``T`` facts are addable and that only balanced
    choices can reach ``τ = k²``: enumerate k-subsets for each side.  Still
    exponential in k, but polynomially faster than blind subset enumeration —
    the E8 benchmark contrasts the two.
    """
    witness = output.witness
    r_facts = [
        fact
        for fact in output.instance.addable_facts()
        if fact.relation == witness.atom_r.relation
    ]
    t_facts = [
        fact
        for fact in output.instance.addable_facts()
        if fact.relation == witness.atom_t.relation
    ]
    k_squared = output.target
    k = output.budget // 2
    base = output.instance.database
    for r_chosen in combinations(r_facts, k):
        with_r = base.with_facts(r_chosen)
        for t_chosen in combinations(t_facts, k):
            repaired = with_r.with_facts(t_chosen)
            if count_satisfying_assignments(output.query, repaired) >= k_squared:
                return True
    return False


def extract_biclique_from_repair(
    output: ReductionOutput, repaired: Database
) -> tuple[frozenset[Vertex], frozenset[Vertex]]:
    """Recover ``(U1, U2)`` from a repair, per the (2) ⇒ (1) direction."""
    witness = output.witness
    a_position = witness.atom_r.variables.index(witness.variable_a)
    b_position = witness.atom_t.variables.index(witness.variable_b)
    part_one = frozenset(
        values[a_position]
        for values in repaired.tuples(witness.atom_r.relation)
    )
    part_two = frozenset(
        values[b_position]
        for values in repaired.tuples(witness.atom_t.relation)
    )
    return part_one, part_two
