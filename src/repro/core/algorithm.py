"""Algorithm 1: the unifying algorithm for hierarchical queries (Section 5.3).

Given a hierarchical SJF-BCQ ``Q`` and a K-annotated database, the algorithm
replays the elimination procedure of Proposition 5.1 over annotated relations:

* **Rule 1** (private variable ``Y`` of atom ``R``) becomes the ⊕-aggregation
  ``R'(x') = ⊕_y R(x', y)`` (line 4 of Algorithm 1);
* **Rule 2** (duplicate-variable-set atoms ``R1``, ``R2``) becomes the ⊗-join
  ``R'(x) = R1(x) ⊗ R2(x)`` (line 7).

When the query reaches the form ``Q() :- R()``, the annotation of the nullary
tuple ``()`` in ``R`` is the output.  The *same* code runs probabilistic query
evaluation, bag-set maximization, Shapley value computation, and any other
2-monoid instantiation — only the monoid and the input annotations change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from contextlib import nullcontext

from repro.algebra.base import K, TwoMonoid
from repro.core.kernels import scalar_kernels
from repro.db.annotated import KDatabase, KRelation
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.query.bcq import BCQ
from repro.query.elimination import Policy
from repro.core.plan import MergeStep, Plan, PlanStep, ProjectStep, compile_plan

StepHook = Callable[[PlanStep, KRelation], None]
"""Optional observer invoked after each executed step with its output relation."""

KERNEL_MODES = ("auto", "scalar")
"""``auto`` uses registered batched kernels; ``scalar`` forces per-element
``monoid.add``/``mul`` dispatch (the benchmark baseline)."""


def _kernel_context(kernel_mode: str):
    if kernel_mode == "auto":
        return nullcontext()
    if kernel_mode == "scalar":
        return scalar_kernels()
    raise ReproError(
        f"unknown kernel mode {kernel_mode!r}; expected one of {KERNEL_MODES}"
    )


@dataclass
class ExecutionReport:
    """Bookkeeping produced alongside the answer by :func:`execute_plan`.

    Attributes
    ----------
    result:
        The K-annotation of the terminal nullary tuple.
    steps_executed:
        Number of plan steps run.
    max_live_support:
        The largest total support size observed across live relations — the
        Lemma 6.6 quantity (it never exceeds the input size).
    """

    result: object
    steps_executed: int
    max_live_support: int


def execute_plan(
    plan: Plan,
    annotated: KDatabase[K],
    on_step: StepHook | None = None,
    *,
    kernel_mode: str = "auto",
) -> ExecutionReport:
    """Execute *plan* over *annotated* and return the result with bookkeeping.

    ``kernel_mode="scalar"`` forces per-element monoid dispatch for every
    relation operation in the run — the baseline the perf suite compares the
    batched kernels against.
    """
    with _kernel_context(kernel_mode):
        live: dict[str, KRelation[K]] = {
            relation.atom.relation: relation
            for relation in annotated.relations()
        }
        max_live = sum(len(relation) for relation in live.values())
        for index, step in enumerate(plan.steps):
            if isinstance(step, ProjectStep):
                source = live.pop(step.source.relation)
                produced = source.project_out(step.variable, step.target)
            else:
                assert isinstance(step, MergeStep)
                first = live.pop(step.first.relation)
                second = live.pop(step.second.relation)
                produced = first.merge(second, step.target)
            live[step.target.relation] = produced
            max_live = max(
                max_live, sum(len(relation) for relation in live.values())
            )
            if on_step is not None:
                on_step(step, produced)
        final = live[plan.final_relation]
    return ExecutionReport(
        result=final.annotation(()),
        steps_executed=len(plan.steps),
        max_live_support=max_live,
    )


def compile_for_database(
    query: BCQ,
    annotated: KDatabase[K],
    policy: Policy | str = "rule1_first",
):
    """Compile *query* with data statistics when the policy is cost-based.

    For ``"min_support"`` this reads the support sizes out of *annotated* and
    tells the policy whether Rule 2 merges run over support unions (the
    non-annihilating case, e.g. Shapley) or intersections.
    """
    if policy == "min_support":
        sizes = {
            relation.atom.relation: len(relation)
            for relation in annotated.relations()
        }
        return compile_plan(
            query,
            policy,
            relation_sizes=sizes,
            union_merges=not annotated.monoid.annihilates,
        )
    return compile_plan(query, policy=policy)


def run_algorithm(
    query: BCQ,
    annotated: KDatabase[K],
    policy: Policy | str = "rule1_first",
    on_step: StepHook | None = None,
    *,
    kernel_mode: str = "auto",
) -> K:
    """Run Algorithm 1 on *query* and the K-annotated database *annotated*.

    A thin adapter over the engine subsystem: opens a throwaway
    :class:`~repro.engine.session.EngineSession` bound to the pre-annotated
    database.  Raises :class:`~repro.exceptions.NotHierarchicalError` for
    non-hierarchical queries (line 10 of Algorithm 1 / Proposition 5.1).
    """
    from repro.engine import Engine

    session = Engine(policy=policy, kernel_mode=kernel_mode).open(
        query, annotated=annotated
    )
    return session.run(on_step=on_step)  # type: ignore[return-value]


def evaluate_hierarchical(
    query: BCQ,
    monoid: TwoMonoid[K],
    facts: Iterable[Fact],
    annotation_of: Callable[[Fact], K],
    policy: Policy | str = "rule1_first",
    *,
    kernel_mode: str = "auto",
) -> K:
    """Convenience wrapper: annotate *facts* with ψ = *annotation_of* and run.

    This is the shape all the problem front-ends reduce to — build the
    ψ-annotated database of Definitions 5.10/5.15 (bulk path) and execute
    the compiled plan — expressed as a one-shot
    :meth:`~repro.engine.session.EngineSession.evaluate` request.
    """
    from repro.engine import Engine

    session = Engine(policy=policy, kernel_mode=kernel_mode).open(query)
    return session.evaluate(monoid, facts, annotation_of)
