"""Algorithm 1: the unifying algorithm for hierarchical queries (Section 5.3).

Given a hierarchical SJF-BCQ ``Q`` and a K-annotated database, the algorithm
replays the elimination procedure of Proposition 5.1 over annotated relations:

* **Rule 1** (private variable ``Y`` of atom ``R``) becomes the ⊕-aggregation
  ``R'(x') = ⊕_y R(x', y)`` (line 4 of Algorithm 1);
* **Rule 2** (duplicate-variable-set atoms ``R1``, ``R2``) becomes the ⊗-join
  ``R'(x) = R1(x) ⊗ R2(x)`` (line 7).

When the query reaches the form ``Q() :- R()``, the annotation of the nullary
tuple ``()`` in ``R`` is the output.  The *same* code runs probabilistic query
evaluation, bag-set maximization, Shapley value computation, and any other
2-monoid instantiation — only the monoid and the input annotations change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from contextlib import nullcontext

from repro.algebra.base import K, TwoMonoid
from repro.core.kernels import array_kernel_for, scalar_kernels
from repro.db.annotated import ColumnarKRelation, KDatabase, KRelation
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.obs import global_registry
from repro.query.bcq import BCQ
from repro.query.elimination import Policy
from repro.core.plan import MergeStep, Plan, PlanStep, ProjectStep, compile_plan

_TIER_EXECUTIONS = global_registry().counter(
    "repro_tier_executions_total",
    "Plan executions answered by each execution tier.",
    labels=("tier",),
)
_TIER_FALLBACKS = global_registry().counter(
    "repro_tier_fallbacks_total",
    "Columnar-tier declines by reason (the run fell back to batched kernels).",
    labels=("reason",),
)
_PLAN_SECONDS = global_registry().histogram(
    "repro_plan_execution_seconds",
    "Wall-clock seconds per plan execution, by answering tier.",
    labels=("tier",),
)
# Per-step children resolved once: the hot loops pay two clock reads and
# one striped-lock add per step, nothing else.
_STEP_PROJECT = global_registry().histogram(
    "repro_plan_step_seconds",
    "Wall-clock seconds per executed plan step, by elimination rule.",
    labels=("rule",),
).labels(rule="project")
_STEP_MERGE = global_registry().histogram(
    "repro_plan_step_seconds",
    "Wall-clock seconds per executed plan step, by elimination rule.",
    labels=("rule",),
).labels(rule="merge")

StepHook = Callable[[PlanStep, KRelation], None]
"""Optional observer invoked after each executed step with its output relation."""

KERNEL_MODES = ("auto", "sharded", "array", "batched", "scalar")
"""The four execution tiers (plus the auto selector):

* ``"auto"`` — the columnar (numpy) tier when the monoid's carrier is a flat
  numeric scalar with a registered array kernel and numpy is importable,
  otherwise the batched kernels;
* ``"sharded"`` — the process-parallel tier: key-range shards of the
  columnar layout executed across a shared-memory
  ``ProcessPoolExecutor`` with one final ⊕-fold in the parent (see
  :mod:`repro.core.sharded`); delegates to the array tier for ineligible
  queries, sub-threshold inputs, or an unhealthy pool, and from there
  falls back exactly like ``"array"``;
* ``"array"`` — same selection as ``auto`` (the explicit spelling used by
  benchmarks and the CLI; like ``auto`` it transparently falls back to the
  batched tier for exact carriers or when numpy is absent);
* ``"batched"`` — registered batched kernels only, never the columnar tier
  (the PR 2 engine; the baseline the array tier is measured against);
* ``"scalar"`` — per-element ``monoid.add``/``mul`` dispatch (the original
  baseline).
"""


def _kernel_context(kernel_mode: str):
    if kernel_mode in ("auto", "sharded", "array", "batched"):
        return nullcontext()
    if kernel_mode == "scalar":
        return scalar_kernels()
    raise ReproError(
        f"unknown kernel mode {kernel_mode!r}; expected one of {KERNEL_MODES}"
    )


def _array_kernel_if_selected(kernel_mode: str, monoid):
    """The monoid's array kernel when *kernel_mode* selects the columnar
    tier, else ``None`` (also validates the mode string)."""
    if kernel_mode in ("auto", "sharded", "array"):
        return array_kernel_for(monoid)
    if kernel_mode not in KERNEL_MODES:
        raise ReproError(
            f"unknown kernel mode {kernel_mode!r}; "
            f"expected one of {KERNEL_MODES}"
        )
    return None


def _attempt_columnar(annotated: KDatabase, kernel_mode: str, executor):
    """Run *executor(array_kernel)* on the columnar tier, or return ``None``.

    The single home of the tier-selection/fallback policy shared by the
    Boolean and grouped executors: selects (and validates) the array
    kernel, honors a memoized not-representable verdict, and on
    ``OverflowError`` records that verdict on the database — so both
    engines fall back identically, now and under any future change here.
    """
    array_kernel = _array_kernel_if_selected(kernel_mode, annotated.monoid)
    if array_kernel is None:
        if kernel_mode in ("auto", "sharded", "array"):
            _TIER_FALLBACKS.labels(reason="no_kernel").inc()
        return None
    if annotated.columnar_declined(array_kernel):
        _TIER_FALLBACKS.labels(reason="declined").inc()
        return None
    try:
        return executor(array_kernel)
    except OverflowError:
        # Annotations outside the kernel dtype: not columnar-representable.
        # Memoized (until a mutation) so repeated executions skip the
        # doomed encode attempt.
        annotated.decline_columnar(array_kernel)
        _TIER_FALLBACKS.labels(reason="overflow").inc()
        return None


def _columnar_view_getter(annotated: KDatabase, array_kernel):
    """A ``(name, live_relation) → ColumnarKRelation`` accessor that passes
    step outputs through and lazily materializes cached input views."""

    def columnar(name: str, relation):
        if isinstance(relation, ColumnarKRelation):
            return relation
        return annotated.columnar_relation(name, array_kernel)

    return columnar


@dataclass
class ExecutionReport:
    """Bookkeeping produced alongside the answer by :func:`execute_plan`.

    Attributes
    ----------
    result:
        The K-annotation of the terminal nullary tuple.
    steps_executed:
        Number of plan steps run.
    max_live_support:
        The largest total support size observed across live relations — the
        Lemma 6.6 quantity (it never exceeds the input size).
    """

    result: object
    steps_executed: int
    max_live_support: int


def _merge_operands(first, second, annihilates: bool):
    """Order the two Rule 2 operands so the smaller support drives the probe.

    ``merge`` iterates/probes from its receiver, so for annihilating monoids
    (output = support intersection) building from the smaller side does less
    work.  ⊗ is commutative by the 2-monoid laws, so swapping operands never
    changes the result; non-annihilating merges walk the support union
    either way and keep the plan's order.
    """
    if annihilates and len(second) < len(first):
        return second, first
    return first, second


def execute_plan(
    plan: Plan,
    annotated: KDatabase[K],
    on_step: StepHook | None = None,
    *,
    kernel_mode: str = "auto",
) -> ExecutionReport:
    """Execute *plan* over *annotated* and return the result with bookkeeping.

    ``kernel_mode`` picks the execution tier (see :data:`KERNEL_MODES`).
    Under ``"auto"``/``"array"`` flat-carrier monoids run on the columnar
    (numpy) tier; exact carriers — and every run when numpy is absent —
    fall back to the batched kernels, and ``"scalar"`` forces per-element
    monoid dispatch (the perf-suite baseline).  Step observers (*on_step*)
    receive dict-layout relations, so instrumented runs stay on the batched
    tier.

    Every execution reports to the process-wide observability registry
    (:func:`repro.obs.global_registry`): ``repro_tier_executions_total``
    counts which tier answered, ``repro_plan_execution_seconds`` records
    its wall clock, and ``repro_tier_fallbacks_total`` classifies columnar
    declines.
    """
    started = time.perf_counter()
    if on_step is None:
        if kernel_mode == "sharded":
            executor = lambda kernel: _execute_plan_sharded(  # noqa: E731
                plan, annotated, kernel
            )
        else:
            executor = lambda kernel: _execute_plan_columnar(  # noqa: E731
                plan, annotated, kernel
            )
        report = _attempt_columnar(annotated, kernel_mode, executor)
        if report is not None:
            tier = "sharded" if kernel_mode == "sharded" else "array"
            _TIER_EXECUTIONS.labels(tier=tier).inc()
            _PLAN_SECONDS.labels(tier=tier).observe(
                time.perf_counter() - started
            )
            return report
    with _kernel_context(kernel_mode):
        live: dict[str, KRelation[K]] = {
            relation.atom.relation: relation
            for relation in annotated.relations()
        }
        annihilates = annotated.monoid.annihilates
        max_live = sum(len(relation) for relation in live.values())
        for index, step in enumerate(plan.steps):
            step_started = time.perf_counter()
            if isinstance(step, ProjectStep):
                source = live.pop(step.source.relation)
                produced = source.project_out(step.variable, step.target)
                _STEP_PROJECT.observe(time.perf_counter() - step_started)
            else:
                assert isinstance(step, MergeStep)
                first = live.pop(step.first.relation)
                second = live.pop(step.second.relation)
                build, probe = _merge_operands(first, second, annihilates)
                produced = build.merge(probe, step.target)
                _STEP_MERGE.observe(time.perf_counter() - step_started)
            live[step.target.relation] = produced
            max_live = max(
                max_live, sum(len(relation) for relation in live.values())
            )
            if on_step is not None:
                on_step(step, produced)
        final = live[plan.final_relation]
    tier = "scalar" if kernel_mode == "scalar" else "batched"
    _TIER_EXECUTIONS.labels(tier=tier).inc()
    _PLAN_SECONDS.labels(tier=tier).observe(time.perf_counter() - started)
    return ExecutionReport(
        result=final.annotation(()),
        steps_executed=len(plan.steps),
        max_live_support=max_live,
    )


def _execute_plan_sharded(
    plan: Plan, annotated: KDatabase[K], array_kernel
) -> ExecutionReport:
    """The sharded tier of :func:`execute_plan`.

    Tries the process-parallel key-range execution
    (:func:`repro.core.sharded.maybe_execute_sharded`); when it delegates —
    ineligible query, sub-threshold input, unhealthy pool — the in-process
    columnar tier runs instead, reusing the views already materialized for
    the eligibility check.  ``OverflowError`` propagates to
    :func:`_attempt_columnar` so the decline bookkeeping is shared with the
    array tier.
    """
    from repro.core.sharded import maybe_execute_sharded

    outcome = maybe_execute_sharded(plan, annotated, array_kernel)
    if outcome is not None:
        result, max_live = outcome
        return ExecutionReport(
            result=result,
            steps_executed=len(plan.steps),
            max_live_support=max_live,
        )
    return _execute_plan_columnar(plan, annotated, array_kernel)


def _execute_plan_columnar(
    plan: Plan, annotated: KDatabase[K], array_kernel
) -> ExecutionReport:
    """The columnar tier of :func:`execute_plan`.

    Input relations are materialized lazily into cached
    :class:`~repro.db.annotated.ColumnarKRelation` views (one dict → column
    conversion per relation per database, amortized across executions);
    every step then runs entirely inside numpy.  Agrees with the batched
    tier bit-identically for int/bool carriers and within the monoid
    tolerance for floats (⊕-fold order follows the key sort instead of the
    insertion order).
    """
    live: dict[str, object] = {
        relation.atom.relation: relation
        for relation in annotated.relations()
    }
    columnar = _columnar_view_getter(annotated, array_kernel)
    annihilates = annotated.monoid.annihilates
    max_live = sum(len(relation) for relation in live.values())
    for step in plan.steps:
        step_started = time.perf_counter()
        if isinstance(step, ProjectStep):
            name = step.source.relation
            source = columnar(name, live.pop(name))
            produced = source.project_out(step.variable, step.target)
            _STEP_PROJECT.observe(time.perf_counter() - step_started)
        else:
            assert isinstance(step, MergeStep)
            first = columnar(step.first.relation, live.pop(step.first.relation))
            second = columnar(
                step.second.relation, live.pop(step.second.relation)
            )
            build, probe = _merge_operands(first, second, annihilates)
            produced = build.merge(probe, step.target)
            _STEP_MERGE.observe(time.perf_counter() - step_started)
        live[step.target.relation] = produced
        max_live = max(
            max_live, sum(len(relation) for relation in live.values())
        )
    final = live[plan.final_relation]
    if isinstance(final, ColumnarKRelation):
        result = final.nullary_annotation()
    else:  # step-free plan: the final relation is an input
        result = final.annotation(())
    return ExecutionReport(
        result=result,
        steps_executed=len(plan.steps),
        max_live_support=max_live,
    )


def compile_for_database(
    query: BCQ,
    annotated: KDatabase[K],
    policy: Policy | str = "rule1_first",
):
    """Compile *query* with data statistics when the policy is cost-based.

    For ``"min_support"`` this reads the support sizes out of *annotated* and
    tells the policy whether Rule 2 merges run over support unions (the
    non-annihilating case, e.g. Shapley) or intersections.
    """
    if policy == "min_support":
        sizes = {
            relation.atom.relation: len(relation)
            for relation in annotated.relations()
        }
        return compile_plan(
            query,
            policy,
            relation_sizes=sizes,
            union_merges=not annotated.monoid.annihilates,
        )
    return compile_plan(query, policy=policy)


def run_algorithm(
    query: BCQ,
    annotated: KDatabase[K],
    policy: Policy | str = "rule1_first",
    on_step: StepHook | None = None,
    *,
    kernel_mode: str = "auto",
) -> K:
    """Run Algorithm 1 on *query* and the K-annotated database *annotated*.

    A thin adapter over the engine subsystem: opens a throwaway
    :class:`~repro.engine.session.EngineSession` bound to the pre-annotated
    database.  Raises :class:`~repro.exceptions.NotHierarchicalError` for
    non-hierarchical queries (line 10 of Algorithm 1 / Proposition 5.1).
    """
    from repro.engine import Engine

    session = Engine(policy=policy, kernel_mode=kernel_mode).open(
        query, annotated=annotated
    )
    return session.run(on_step=on_step)  # type: ignore[return-value]


def evaluate_hierarchical(
    query: BCQ,
    monoid: TwoMonoid[K],
    facts: Iterable[Fact],
    annotation_of: Callable[[Fact], K],
    policy: Policy | str = "rule1_first",
    *,
    kernel_mode: str = "auto",
) -> K:
    """Convenience wrapper: annotate *facts* with ψ = *annotation_of* and run.

    This is the shape all the problem front-ends reduce to — build the
    ψ-annotated database of Definitions 5.10/5.15 (bulk path) and execute
    the compiled plan — expressed as a one-shot
    :meth:`~repro.engine.session.EngineSession.evaluate` request.
    """
    from repro.engine import Engine

    session = Engine(policy=policy, kernel_mode=kernel_mode).open(query)
    return session.evaluate(monoid, facts, annotation_of)
