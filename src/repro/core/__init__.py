"""The paper's primary contribution: Algorithm 1 and its plan compiler."""

from repro.core.algorithm import (
    ExecutionReport,
    evaluate_hierarchical,
    execute_plan,
    run_algorithm,
)
from repro.core.grouped import (
    GroupedPlan,
    compile_grouped_plan,
    evaluate_grouped,
    execute_grouped_plan,
)
from repro.core.incremental import IncrementalEvaluator, incremental_evaluator
from repro.core.instrument import CountingMonoid
from repro.core.render import render_rules
from repro.core.lineage import (
    equivalent_boolean_functions,
    naive_lineage,
    powerset,
    read_once_lineage,
)
from repro.core.kernels import (
    GenericKernel,
    MonoidKernel,
    kernel_for,
    register_kernel,
    scalar_kernels,
)
from repro.core.plan import (
    MergeStep,
    Plan,
    PlanStep,
    ProjectStep,
    clear_plan_cache,
    compile_plan,
    plan_cache_info,
    plan_from_trace,
    set_plan_cache_size,
)

__all__ = [
    "CountingMonoid",
    "GenericKernel",
    "MonoidKernel",
    "clear_plan_cache",
    "kernel_for",
    "plan_cache_info",
    "register_kernel",
    "scalar_kernels",
    "ExecutionReport",
    "GroupedPlan",
    "IncrementalEvaluator",
    "MergeStep",
    "Plan",
    "PlanStep",
    "ProjectStep",
    "compile_grouped_plan",
    "compile_plan",
    "equivalent_boolean_functions",
    "evaluate_grouped",
    "evaluate_hierarchical",
    "execute_grouped_plan",
    "execute_plan",
    "incremental_evaluator",
    "naive_lineage",
    "plan_from_trace",
    "powerset",
    "read_once_lineage",
    "render_rules",
    "run_algorithm",
    "set_plan_cache_size",
]
