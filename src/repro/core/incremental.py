"""Incremental maintenance of Algorithm 1 under single-fact updates.

The paper's concluding remarks (Question 2) single out *answering conjunctive
queries under updates* — where hierarchical queries again mark the
tractability frontier [Berkholz–Keppeler–Schweikardt] — as a candidate for
the unifying framework.  This module supplies the natural dynamic version of
Algorithm 1 for any 2-monoid:

Because every relation in a compiled :class:`~repro.core.plan.Plan` is
consumed by exactly one later step, each input fact has a *unique
propagation chain* through the plan.  We materialize every intermediate
K-relation once, and on an annotation update we re-derive only the chain:

* through a Rule 1 step, the fact's group (tuples sharing the remaining
  variables) is ⊕-refolded — cost proportional to the group size;
* through a Rule 2 step, a single output tuple is ⊗-recomputed — O(1) pairs.

A fact update therefore costs ``O(plan depth × max group size)`` monoid
operations instead of a full ``O(|D|)`` re-run; for update-heavy workloads
(probability refresh, what-if repair exploration) this is the difference
between milliseconds and re-evaluating from scratch.  Correctness is checked
in the tests by comparing against a fresh run after every update, for all
four problem 2-monoids.
"""

from __future__ import annotations

from typing import Generic

from repro.algebra.base import K, TwoMonoid
from repro.core.plan import MergeStep, Plan, ProjectStep
from repro.db.annotated import KDatabase, KRelation
from repro.db.fact import Fact, Value
from repro.exceptions import SchemaError
from repro.query.bcq import BCQ

Key = tuple[Value, ...]


class IncrementalEvaluator(Generic[K]):
    """Maintains the output of Algorithm 1 under fact-annotation updates.

    Parameters
    ----------
    query:
        A hierarchical SJF-BCQ (compiled once; the compile hits the shared
        plan cache, and the initial :meth:`_build` runs through the batched
        kernel engine).
    annotated:
        The initial K-annotated database; it is copied into internal stage
        relations and never mutated.
    policy:
        Elimination policy for the compiled plan; ``"min_support"`` uses the
        initial database's support sizes.
    kernel_mode:
        ``"auto"``/``"array"``/``"batched"`` route the initial
        :meth:`_build` through the batched kernel engine, ``"scalar"``
        forces per-element dispatch.  The columnar (array) tier is never
        used here: the maintained stages are exactly the dict-layout
        relations single-fact updates mutate in place.  Updates re-derive
        single chains and always use scalar monoid operations; all modes
        maintain identical results (the tests check this).
    """

    def __init__(
        self,
        query: BCQ,
        annotated: KDatabase[K],
        policy: str = "rule1_first",
        *,
        kernel_mode: str = "auto",
    ):
        from repro.core.algorithm import compile_for_database

        self.query = query
        self.monoid: TwoMonoid[K] = annotated.monoid
        self.kernel_mode = kernel_mode
        self.plan: Plan = compile_for_database(query, annotated, policy)
        # Stage relations by name: the query's inputs plus every step output.
        self._stages: dict[str, KRelation[K]] = {
            relation.atom.relation: relation.copy()
            for relation in annotated.relations()
        }
        # Which step consumes each relation (each is consumed exactly once).
        self._consumer: dict[str, int] = {}
        for index, step in enumerate(self.plan.steps):
            if isinstance(step, ProjectStep):
                self._consumer[step.source.relation] = index
            else:
                self._consumer[step.first.relation] = index
                self._consumer[step.second.relation] = index
        # Group indexes for Rule 1 steps: output key -> live input keys.
        self._groups: dict[int, dict[Key, set[Key]]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Initial build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        from repro.core.algorithm import _kernel_context

        with _kernel_context(self.kernel_mode):
            self._build_stages()

    def _build_stages(self) -> None:
        for index, step in enumerate(self.plan.steps):
            if isinstance(step, ProjectStep):
                source = self._stages[step.source.relation]
                produced = source.project_out(step.variable, step.target)
                groups: dict[Key, set[Key]] = {}
                keep = _keep_positions(step)
                for values, _annotation in source.items():
                    groups.setdefault(
                        tuple(values[i] for i in keep), set()
                    ).add(values)
                self._groups[index] = groups
            else:
                assert isinstance(step, MergeStep)
                first = self._stages[step.first.relation]
                second = self._stages[step.second.relation]
                produced = first.merge(second, step.target)
            self._stages[step.target.relation] = produced

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def result(self) -> K:
        """The current output of Algorithm 1."""
        return self._stages[self.plan.final_relation].annotation(())

    def annotation(self, fact: Fact) -> K:
        """The current annotation of an input fact."""
        return self._input_relation(fact).annotation(fact.values)

    def _input_relation(self, fact: Fact) -> KRelation[K]:
        for atom in self.query.atoms:
            if atom.relation == fact.relation:
                return self._stages[fact.relation]
        raise SchemaError(f"query has no relation named {fact.relation!r}")

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def update(self, fact: Fact, annotation: K) -> K:
        """Set the annotation of *fact* and repropagate its chain.

        Setting ``monoid.zero`` deletes the fact.  Returns the new overall
        result.
        """
        relation = self._input_relation(fact)
        if len(fact.values) != relation.atom.arity:
            raise SchemaError(
                f"fact {fact} does not match the arity of {relation.atom}"
            )
        relation.set(fact.values, annotation)
        self._propagate(fact.relation, fact.values)
        return self.result

    def delete(self, fact: Fact) -> K:
        """Remove *fact* (annotation becomes the ⊕-identity)."""
        return self.update(fact, self.monoid.zero)

    def _propagate(self, relation_name: str, key: Key) -> None:
        monoid = self.monoid
        while relation_name in self._consumer:
            index = self._consumer[relation_name]
            step = self.plan.steps[index]
            if isinstance(step, ProjectStep):
                source = self._stages[step.source.relation]
                keep = _keep_positions(step)
                out_key = tuple(key[i] for i in keep)
                groups = self._groups[index]
                members = groups.setdefault(out_key, set())
                if monoid.is_zero(source.annotation(key)):
                    members.discard(key)
                else:
                    members.add(key)
                folded = monoid.add_fold(
                    source.annotation(member) for member in sorted(members, key=repr)
                )
                if not members:
                    groups.pop(out_key, None)
                self._stages[step.target.relation].set(out_key, folded)
                relation_name, key = step.target.relation, out_key
            else:
                assert isinstance(step, MergeStep)
                out_key = _align_key(step, relation_name, key)
                first_key = _key_for_side(step, step.first, out_key)
                second_key = _key_for_side(step, step.second, out_key)
                first = self._stages[step.first.relation].annotation(first_key)
                second = self._stages[step.second.relation].annotation(second_key)
                if monoid.is_zero(first) and monoid.is_zero(second):
                    merged = monoid.zero
                else:
                    merged = monoid.mul(first, second)
                self._stages[step.target.relation].set(out_key, merged)
                relation_name, key = step.target.relation, out_key


def _keep_positions(step: ProjectStep) -> tuple[int, ...]:
    return tuple(
        i for i, v in enumerate(step.source.variables) if v != step.variable
    )


def _align_key(step: MergeStep, relation_name: str, key: Key) -> Key:
    """Reorder *key* from one merge input's variable order to the target's."""
    source = step.first if step.first.relation == relation_name else step.second
    positions = tuple(
        source.variables.index(v) for v in step.target.variables
    )
    return tuple(key[i] for i in positions)


def _key_for_side(step: MergeStep, side, out_key: Key) -> Key:
    """Reorder a target-ordered key into one merge input's variable order."""
    positions = tuple(
        step.target.variables.index(v) for v in side.variables
    )
    return tuple(out_key[i] for i in positions)


def incremental_evaluator(
    query: BCQ,
    monoid: TwoMonoid[K],
    annotated: KDatabase[K] | None = None,
    *,
    kernel_mode: str = "auto",
) -> IncrementalEvaluator[K]:
    """Build an evaluator, starting from an empty database when none given."""
    if annotated is None:
        annotated = KDatabase(query, monoid)
    return IncrementalEvaluator(query, annotated, kernel_mode=kernel_mode)
