"""Rendering plans in the paper's rule notation (Eqs. 4–9).

Section 2 of the paper presents the algorithm for the Eq. (1) query as a
sequence of rules over K-annotated relations::

    T'(a, c)  ← ⊕_{d ∈ Dom} T(a, c, d)
    S'(a, c)  ← S(a, c) ⊗ T'(a, c)
    ...
    Q()       ← ⊕_{a ∈ Dom} R''(a)

:func:`render_rules` produces exactly this view of a compiled
:class:`~repro.core.plan.Plan`, which the examples and the CLI use to show
users what Algorithm 1 is about to execute.
"""

from __future__ import annotations

from repro.core.plan import MergeStep, Plan, ProjectStep
from repro.query.atoms import Atom


def _tuple_vars(atom: Atom) -> str:
    """Lower-case value names for an atom's variables, as in the paper."""
    return ", ".join(v.lower() for v in atom.variables)


def _atom_term(atom: Atom) -> str:
    return f"{atom.relation}({_tuple_vars(atom)})"


def render_rules(plan: Plan, head: str = "Q") -> str:
    """Render *plan* as the paper's sequence of ⊕/⊗ rules."""
    lines = []
    for step in plan.steps:
        if isinstance(step, ProjectStep):
            body = (
                f"⊕_{{{step.variable.lower()} ∈ Dom}} "
                f"{_atom_term(step.source)}"
            )
            lines.append(f"{_atom_term(step.target)} ← {body}")
        else:
            assert isinstance(step, MergeStep)
            lines.append(
                f"{_atom_term(step.target)} ← "
                f"{_atom_term(step.first)} ⊗ {_atom_term(step.second)}"
            )
    lines.append(f"{head}() ← {plan.final_relation}()")
    widths = max((line.index("←") for line in lines), default=0)
    aligned = []
    for line in lines:
        left, _, right = line.partition("←")
        aligned.append(f"{left.rstrip():<{widths}} ← {right.strip()}")
    return "\n".join(aligned)
