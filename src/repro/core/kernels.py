"""Batched 2-monoid kernels: the execution engine behind ``KRelation``.

Algorithm 1 spends essentially all of its time in two shapes of work:

* **⊕-folds over groups** — Rule 1 groups the support of a relation by the
  surviving positions and ⊕-folds each group (``project_out``);
* **aligned ⊗-products** — Rule 2 pairs up annotations tuple-by-tuple and
  ⊗-multiplies each pair (``merge`` / ``absorb``).

The scalar path dispatches one dynamic ``monoid.add``/``monoid.mul`` call per
element.  A :class:`MonoidKernel` instead receives the *whole batch* at once,
which lets carrier-specific implementations amortize dispatch, use Python
built-ins (``sum``, ``min``, ``max``, ``math.prod``) that run the loop in C,
and — for the Shapley 2-monoid — replace per-pair quadratic convolutions with
one big-integer multiplication (see :mod:`repro.algebra.shapley`).

Design:

* :class:`GenericKernel` is the always-correct fallback: it delegates to the
  scalar ``TwoMonoid.add``/``mul`` with identity fast paths
  (``is_zero``/``is_one``) in the ⊗ loop.  Wrapper monoids such as
  :class:`~repro.core.instrument.CountingMonoid` resolve to it, so operation
  counting keeps working.
* Concrete monoids register specialized kernels at import time via
  :func:`register_kernel` (the registrations live next to the monoids in
  :mod:`repro.algebra`).  Lookup walks the MRO, so subclasses such as
  :class:`~repro.algebra.probability.ExactProbabilityMonoid` inherit their
  parent's kernel exactly when they inherit its ``add``/``mul``.
* :func:`scalar_kernels` is a context manager that forces the generic kernel
  everywhere — the benchmark suite uses it to measure scalar-vs-kernel
  speedups on identical code paths (``execute_plan(kernel_mode="scalar")``).

Every kernel must be *extensionally equal* to the scalar path on its monoid
(same outputs, up to ``monoid.eq``); ``tests/test_kernels.py`` checks this
property on randomized relations for every bundled monoid.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Generic, Iterator, Sequence

from repro.algebra.base import K, TwoMonoid

KernelFactory = Callable[[TwoMonoid], "MonoidKernel"]


class MonoidKernel(Generic[K]):
    """Batched operations over one 2-monoid instance.

    Subclasses override :meth:`mul_aligned` and either :meth:`fold_add`
    (whole-batch specializations) or just the scalar :meth:`_add` hook the
    default left-fold consumes; every override must agree with the scalar
    fold/product over ``monoid.add``/``monoid.mul``.
    """

    def __init__(self, monoid: TwoMonoid[K]):
        self.monoid = monoid

    def _add(self, left: K, right: K) -> K:
        """Scalar ⊕ used by the default :meth:`fold_add` (override for fast
        paths without rewriting the fold loop)."""
        return self.monoid.add(left, right)

    def fold_add(self, groups: Sequence[Sequence[K]]) -> list[K]:
        """⊕-fold each group left-to-right; every group must be non-empty."""
        add = self._add
        out = []
        for group in groups:
            iterator = iter(group)
            result = next(iterator)
            for item in iterator:
                result = add(result, item)
            out.append(result)
        return out

    def mul_aligned(self, lefts: Sequence[K], rights: Sequence[K]) -> list[K]:
        """Pairwise ``lefts[i] ⊗ rights[i]``; the sequences are equal-length."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Bulk ψ-annotation (the Definitions 5.10/5.15 database build)
    # ------------------------------------------------------------------
    def map_annotations(self, annotation_of: Callable[[object], K], facts: Sequence) -> list[K]:
        """ψ over a whole batch of facts in one pass.

        The default is a single list comprehension — one C-level loop driving
        the Python-level ψ — which :meth:`KDatabase.bulk_annotate` calls once
        per relation instead of once per fact.
        """
        return [annotation_of(fact) for fact in facts]

    def annotation_is_zero(self) -> Callable[[K], bool]:
        """The ⊕-identity test :meth:`annotate_support` filters with.

        Returns a plain closure (built once per batch) that tries an identity
        comparison against ``monoid.zero`` before falling back to
        :meth:`TwoMonoid.is_zero`.  Kernels may override *this* — never
        :meth:`annotate_support` itself — when their carrier affords a
        cheaper classification (e.g. the Shapley ψ-spikes); the staging
        semantics live in exactly one place.
        """
        zero = self.monoid.zero
        is_zero = self.monoid.is_zero
        return lambda annotation: annotation is zero or is_zero(annotation)

    def annotate_support(
        self, keys: Sequence, annotations: Sequence[K]
    ) -> dict:
        """Build a support mapping from aligned ``(key, ψ)`` batches.

        Matches the semantics of repeated :meth:`KRelation.set` calls: a later
        occurrence of a key wins, and ⊕-identity annotations are dropped (a
        trailing zero deletes earlier occurrences of its key).  The mapping is
        built with one ``dict`` constructor call and filtered with
        :meth:`annotation_is_zero`.
        """
        staged = dict(zip(keys, annotations))
        drop = self.annotation_is_zero()
        dropped = [
            key for key, annotation in staged.items() if drop(annotation)
        ]
        for key in dropped:
            del staged[key]
        return staged

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.monoid.name!r}>"


class GenericKernel(MonoidKernel[K]):
    """Scalar fallback: per-element ``monoid.add``/``monoid.mul`` dispatch.

    Groups are folded left-to-right starting from their first element — the
    pre-kernel execution order.  The ⊗ loop short-circuits on ⊗-identity
    operands and, for annihilating monoids, on ⊕-identity operands, so
    instrumentation wrappers (:class:`~repro.core.instrument.CountingMonoid`)
    may observe *fewer* ⊗ applications than the historical per-tuple engine —
    never more, and never in a different order — which keeps the Theorem 6.7
    O(|D|) operation bound (an upper bound) observable.
    """

    def mul_aligned(self, lefts: Sequence[K], rights: Sequence[K]) -> list[K]:
        monoid = self.monoid
        mul = monoid.mul
        is_one = monoid.is_one
        is_zero = monoid.is_zero
        annihilates = monoid.annihilates
        zero = monoid.zero
        out = []
        for left, right in zip(lefts, rights):
            if is_one(right):
                out.append(left)
            elif is_one(left):
                out.append(right)
            elif annihilates and (is_zero(left) or is_zero(right)):
                out.append(zero)
            else:
                out.append(mul(left, right))
        return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[type, KernelFactory] = {}
_REGISTRY_VERSION = 0
_FORCE_GENERIC = False


def register_kernel(monoid_type: type, factory: KernelFactory) -> None:
    """Register *factory* as the kernel builder for *monoid_type*.

    The factory receives the monoid instance (kernels may depend on instance
    parameters such as the Shapley vector length).  Registration is keyed by
    class and resolved along the MRO, so only register a subclass separately
    when it overrides ``add``/``mul``.
    """
    global _REGISTRY_VERSION
    _REGISTRY[monoid_type] = factory
    _REGISTRY_VERSION += 1


def kernel_for(monoid: TwoMonoid[K]) -> MonoidKernel[K]:
    """The kernel serving *monoid*: its registered one, or the generic fallback.

    The built kernel is memoized on the monoid instance itself (its lifetime
    is exactly the monoid's — no global cache to leak), invalidated when the
    registry changes.  Inside a :func:`scalar_kernels` block every monoid
    gets the generic (scalar-dispatch) kernel regardless of registrations.
    """
    if _FORCE_GENERIC:
        return GenericKernel(monoid)
    cached = getattr(monoid, "_kernel_cache", None)
    if cached is not None and cached[0] == _REGISTRY_VERSION:
        return cached[1]
    factory: KernelFactory = GenericKernel
    for klass in type(monoid).__mro__:
        registered = _REGISTRY.get(klass)
        if registered is not None:
            factory = registered
            break
    kernel = factory(monoid)
    try:
        monoid._kernel_cache = (_REGISTRY_VERSION, kernel)
    except AttributeError:  # slots/frozen monoid: rebuild per call
        pass
    return kernel


@contextmanager
def scalar_kernels() -> Iterator[None]:
    """Force the generic scalar kernel everywhere inside the block.

    Used by the perf suite to time the scalar baseline on the exact same
    batched execution path, isolating the kernel contribution.
    """
    global _FORCE_GENERIC
    previous = _FORCE_GENERIC
    _FORCE_GENERIC = True
    try:
        yield
    finally:
        _FORCE_GENERIC = previous


def kernels_forced_scalar() -> bool:
    """True inside a :func:`scalar_kernels` block (for tests/diagnostics)."""
    return _FORCE_GENERIC
