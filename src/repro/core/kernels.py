"""Batched 2-monoid kernels: the execution engine behind ``KRelation``.

Algorithm 1 spends essentially all of its time in two shapes of work:

* **⊕-folds over groups** — Rule 1 groups the support of a relation by the
  surviving positions and ⊕-folds each group (``project_out``);
* **aligned ⊗-products** — Rule 2 pairs up annotations tuple-by-tuple and
  ⊗-multiplies each pair (``merge`` / ``absorb``).

The scalar path dispatches one dynamic ``monoid.add``/``monoid.mul`` call per
element.  A :class:`MonoidKernel` instead receives the *whole batch* at once,
which lets carrier-specific implementations amortize dispatch, use Python
built-ins (``sum``, ``min``, ``max``, ``math.prod``) that run the loop in C,
and — for the Shapley 2-monoid — replace per-pair quadratic convolutions with
one big-integer multiplication (see :mod:`repro.algebra.shapley`).

Design:

* :class:`GenericKernel` is the always-correct fallback: it delegates to the
  scalar ``TwoMonoid.add``/``mul`` with identity fast paths
  (``is_zero``/``is_one``) in the ⊗ loop.  Wrapper monoids such as
  :class:`~repro.core.instrument.CountingMonoid` resolve to it, so operation
  counting keeps working.
* Concrete monoids register specialized kernels at import time via
  :func:`register_kernel` (the registrations live next to the monoids in
  :mod:`repro.algebra`).  Lookup walks the MRO, so subclasses such as
  :class:`~repro.algebra.probability.ExactProbabilityMonoid` inherit their
  parent's kernel exactly when they inherit its ``add``/``mul``.
* :func:`scalar_kernels` is a context manager that forces the generic kernel
  everywhere — the benchmark suite uses it to measure scalar-vs-kernel
  speedups on identical code paths (``execute_plan(kernel_mode="scalar")``).

On top of the batched tier sits an optional third, **columnar** tier: when
numpy is importable and the monoid registers an :class:`ArrayKernel`, it
supplies the vectorized ⊕-fold (``ufunc.reduceat`` over sorted group
boundaries) and elementwise ⊗ that the columnar relation layout in
:mod:`repro.db.annotated` drives.  numpy is an *optional* dependency:
:func:`numpy_or_none` guards the import, the exact rational carriers
(Fractions) and provenance trees never get an array kernel, and every
caller falls back to the batched tier when :func:`array_kernel_for`
returns ``None``.

Vector carriers — the bag-set and Shapley monoids, whose elements are
fixed-length coefficient vectors — get a third shape of array kernel:
:class:`VectorArrayKernel`, whose annotations are *packed rows* of a 2-D
array driven by :class:`~repro.db.annotated.PackedColumnarKRelation`.
Registration and resolution are identical; only the annotation layout (and
therefore the row hooks) differs.

Every kernel must be *extensionally equal* to the scalar path on its monoid
(same outputs, up to ``monoid.eq``); ``tests/test_kernels.py`` and
``tests/test_array_kernels.py`` check this property on randomized relations
for every bundled monoid.

Example — resolve a batched kernel and run the two batch shapes:

>>> from repro.algebra.counting import CountingSemiring
>>> from repro.core.kernels import kernel_for, scalar_kernels
>>> kernel = kernel_for(CountingSemiring())
>>> kernel.fold_add([[2, 3], [4]])      # ⊕-fold each group (Rule 1)
[5, 4]
>>> kernel.mul_aligned([2, 3], [5, 7])  # aligned ⊗-products (Rule 2)
[10, 21]
>>> with scalar_kernels():              # the perf suite's scalar baseline
...     type(kernel_for(CountingSemiring())).__name__
'GenericKernel'
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Generic, Iterator, Optional, Sequence

from repro.algebra.base import K, TwoMonoid

KernelFactory = Callable[[TwoMonoid], "MonoidKernel"]
ArrayKernelFactory = Callable[[TwoMonoid, object], "Optional[ArrayKernel]"]

# ----------------------------------------------------------------------
# Optional numpy (the columnar tier's only dependency)
# ----------------------------------------------------------------------
_NUMPY_UNRESOLVED = object()
_numpy_module: object = _NUMPY_UNRESOLVED


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it is not importable.

    The probe result is cached for the life of the process;
    :func:`_reset_numpy_probe` (tests only) re-runs it, so a test can block
    the import via ``sys.modules`` and exercise the no-numpy fallback.
    """
    global _numpy_module
    if _numpy_module is _NUMPY_UNRESOLVED:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def _reset_numpy_probe() -> None:
    """Forget the cached numpy probe (tests re-probe under a blocked import)."""
    global _numpy_module, _ARRAY_REGISTRY_VERSION
    with _registry_lock:
        _numpy_module = _NUMPY_UNRESOLVED
        # Array kernels close over the probed module; invalidate their caches.
        _ARRAY_REGISTRY_VERSION += 1


class MonoidKernel(Generic[K]):
    """Batched operations over one 2-monoid instance.

    Subclasses override :meth:`mul_aligned` and either :meth:`fold_add`
    (whole-batch specializations) or just the scalar :meth:`_add` hook the
    default left-fold consumes; every override must agree with the scalar
    fold/product over ``monoid.add``/``monoid.mul``.
    """

    def __init__(self, monoid: TwoMonoid[K]):
        self.monoid = monoid

    def _add(self, left: K, right: K) -> K:
        """Scalar ⊕ used by the default :meth:`fold_add` (override for fast
        paths without rewriting the fold loop)."""
        return self.monoid.add(left, right)

    def fold_add(self, groups: Sequence[Sequence[K]]) -> list[K]:
        """⊕-fold each group left-to-right; every group must be non-empty."""
        add = self._add
        out = []
        for group in groups:
            iterator = iter(group)
            result = next(iterator)
            for item in iterator:
                result = add(result, item)
            out.append(result)
        return out

    def mul_aligned(self, lefts: Sequence[K], rights: Sequence[K]) -> list[K]:
        """Pairwise ``lefts[i] ⊗ rights[i]``; the sequences are equal-length."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Bulk ψ-annotation (the Definitions 5.10/5.15 database build)
    # ------------------------------------------------------------------
    def map_annotations(self, annotation_of: Callable[[object], K], facts: Sequence) -> list[K]:
        """ψ over a whole batch of facts in one pass.

        The default is a single list comprehension — one C-level loop driving
        the Python-level ψ — which :meth:`KDatabase.bulk_annotate` calls once
        per relation instead of once per fact.
        """
        return [annotation_of(fact) for fact in facts]

    def annotation_is_zero(self) -> Callable[[K], bool]:
        """The ⊕-identity test :meth:`annotate_support` filters with.

        Returns a plain closure (built once per batch) that tries an identity
        comparison against ``monoid.zero`` before falling back to
        :meth:`TwoMonoid.is_zero`.  Kernels may override *this* — never
        :meth:`annotate_support` itself — when their carrier affords a
        cheaper classification (e.g. the Shapley ψ-spikes); the staging
        semantics live in exactly one place.
        """
        zero = self.monoid.zero
        is_zero = self.monoid.is_zero
        return lambda annotation: annotation is zero or is_zero(annotation)

    def annotate_support(
        self, keys: Sequence, annotations: Sequence[K]
    ) -> dict:
        """Build a support mapping from aligned ``(key, ψ)`` batches.

        Matches the semantics of repeated :meth:`KRelation.set` calls: a later
        occurrence of a key wins, and ⊕-identity annotations are dropped (a
        trailing zero deletes earlier occurrences of its key).  The mapping is
        built with one ``dict`` constructor call and filtered with
        :meth:`annotation_is_zero`.
        """
        staged = dict(zip(keys, annotations))
        drop = self.annotation_is_zero()
        dropped = [
            key for key, annotation in staged.items() if drop(annotation)
        ]
        for key in dropped:
            del staged[key]
        return staged

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.monoid.name!r}>"


class GenericKernel(MonoidKernel[K]):
    """Scalar fallback: per-element ``monoid.add``/``monoid.mul`` dispatch.

    Groups are folded left-to-right starting from their first element — the
    pre-kernel execution order.  The ⊗ loop short-circuits on ⊗-identity
    operands and, for annihilating monoids, on ⊕-identity operands, so
    instrumentation wrappers (:class:`~repro.core.instrument.CountingMonoid`)
    may observe *fewer* ⊗ applications than the historical per-tuple engine —
    never more, and never in a different order — which keeps the Theorem 6.7
    O(|D|) operation bound (an upper bound) observable.
    """

    def mul_aligned(self, lefts: Sequence[K], rights: Sequence[K]) -> list[K]:
        monoid = self.monoid
        mul = monoid.mul
        is_one = monoid.is_one
        is_zero = monoid.is_zero
        annihilates = monoid.annihilates
        zero = monoid.zero
        out = []
        for left, right in zip(lefts, rights):
            if is_one(right):
                out.append(left)
            elif is_one(left):
                out.append(right)
            elif annihilates and (is_zero(left) or is_zero(right)):
                out.append(zero)
            else:
                out.append(mul(left, right))
        return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[type, KernelFactory] = {}
_REGISTRY_VERSION = 0
#: Serializes registry mutation (both registries share it: registrations are
#: rare, lookups are lock-free dict reads).  The serving layer's worker
#: threads resolve kernels concurrently, so the mutation side must never
#: leave either mapping in a partially-updated state.
_registry_lock = threading.RLock()
#: Per-thread :func:`scalar_kernels` forcing.  Thread-local rather than a
#: process global so one worker timing the scalar tier never flips another
#: concurrently-running worker off its batched/columnar tier (and the
#: restore on block exit cannot race a second thread's save).
_force_generic = threading.local()


def _forced_generic() -> bool:
    return getattr(_force_generic, "value", False)


def register_kernel(monoid_type: type, factory: KernelFactory) -> None:
    """Register *factory* as the kernel builder for *monoid_type*.

    The factory receives the monoid instance (kernels may depend on instance
    parameters such as the Shapley vector length).  Registration is keyed by
    class and resolved along the MRO, so only register a subclass separately
    when it overrides ``add``/``mul``.
    """
    global _REGISTRY_VERSION
    with _registry_lock:
        _REGISTRY[monoid_type] = factory
        _REGISTRY_VERSION += 1


def kernel_for(monoid: TwoMonoid[K]) -> MonoidKernel[K]:
    """The kernel serving *monoid*: its registered one, or the generic fallback.

    The built kernel is memoized on the monoid instance itself (its lifetime
    is exactly the monoid's — no global cache to leak), invalidated when the
    registry changes.  Inside a :func:`scalar_kernels` block every monoid
    gets the generic (scalar-dispatch) kernel regardless of registrations.
    """
    if _forced_generic():
        return GenericKernel(monoid)
    cached = getattr(monoid, "_kernel_cache", None)
    if cached is not None and cached[0] == _REGISTRY_VERSION:
        return cached[1]
    factory: KernelFactory = GenericKernel
    for klass in type(monoid).__mro__:
        registered = _REGISTRY.get(klass)
        if registered is not None:
            factory = registered
            break
    kernel = factory(monoid)
    try:
        monoid._kernel_cache = (_REGISTRY_VERSION, kernel)
    except AttributeError:  # slots/frozen monoid: rebuild per call
        pass
    return kernel


@contextmanager
def scalar_kernels() -> Iterator[None]:
    """Force the generic scalar kernel everywhere inside the block.

    Used by the perf suite to time the scalar baseline on the exact same
    batched execution path, isolating the kernel contribution.  The forcing
    is **per thread**: ``execute_plan(kernel_mode="scalar")`` enters this
    block on whichever worker thread runs it, without perturbing the tier
    of plans executing concurrently on other threads.
    """
    previous = _forced_generic()
    _force_generic.value = True
    try:
        yield
    finally:
        _force_generic.value = previous


def kernels_forced_scalar() -> bool:
    """True inside a :func:`scalar_kernels` block (for tests/diagnostics)."""
    return _forced_generic()


# ----------------------------------------------------------------------
# Array kernels: the columnar (numpy) tier
# ----------------------------------------------------------------------
class ArrayKernel(Generic[K]):
    """Vectorized operations over one *flat-carrier* 2-monoid.

    Where a :class:`MonoidKernel` receives Python lists, an ``ArrayKernel``
    receives numpy arrays: annotation columns of the columnar relation layout
    (:class:`repro.db.annotated.ColumnarKRelation`).  Subclasses set
    :attr:`dtype` and implement the two batched shapes of Algorithm 1:

    * :meth:`fold_groups` — Rule 1: ⊕-reduce contiguous segments of a sorted
      annotation array, one segment per surviving key (``ufunc.reduceat``);
    * :meth:`mul_arrays` — Rule 2: elementwise ⊗ of two aligned columns.

    Plus :meth:`zero_mask`, the vectorized ⊕-identity test used to keep the
    support invariant (annotations equal to ``monoid.zero`` are dropped).
    Every method must agree with the scalar ``monoid.add``/``mul`` up to the
    monoid's equality tolerance — bit-identically for int/bool carriers,
    where reduction order cannot change the result.
    """

    #: numpy dtype of the annotation column (set by subclasses).
    dtype: object = None

    def __init__(self, monoid: TwoMonoid[K], np):
        self.monoid = monoid
        self.np = np

    # -- conversion ----------------------------------------------------
    def to_array(self, annotations: Sequence[K]):
        """Pack a batch of carrier scalars into one annotation column.

        May raise ``OverflowError`` for values outside the dtype's range
        (e.g. Python ints beyond int64); callers treat that as "this
        database is not columnar-representable" and fall back to the
        batched tier.
        """
        return self.np.asarray(annotations, dtype=self.dtype)

    def empty_column(self):
        return self.np.empty(0, dtype=self.dtype)

    def to_scalar(self, value) -> K:
        """One numpy scalar back to the native Python carrier."""
        return value.item()

    def to_scalars(self, column) -> list:
        """A whole annotation column back to native Python scalars."""
        return column.tolist()

    # -- the two batched operations ------------------------------------
    def fold_groups(self, annotations, starts):
        """⊕-reduce ``annotations[starts[i]:starts[i+1]]`` for every ``i``.

        *annotations* is already permuted into group order and *starts*
        (``intp``, strictly increasing, ``starts[0] == 0``) marks each
        group's first index; the last group runs to the end of the array.
        """
        raise NotImplementedError

    def mul_arrays(self, lefts, rights):
        """Elementwise ``lefts[i] ⊗ rights[i]`` over aligned columns."""
        raise NotImplementedError

    def zero_mask(self, column):
        """Boolean mask of entries equal to the ⊕-identity (``monoid.zero``)."""
        return column == self.monoid.zero

    # -- layout hooks (overridden by packed-row kernels) ----------------
    #: Whether annotations are packed multi-slot rows (2-D/3-D arrays) —
    #: the columnar layer then builds
    #: :class:`~repro.db.annotated.PackedColumnarKRelation` views.
    packed_rows = False

    #: Whether the shared-scan fuser may stack several queries' annotation
    #: columns into one 2-D array driven by this kernel's ufuncs
    #: (:mod:`repro.core.fused`).  True for the flat scalar kernels: their
    #: ``fold_groups``/``mul_arrays``/``zero_mask`` are plain axis-0
    #: ufunc.reduceat / elementwise operations, which numpy applies
    #: column-independently to 2-D inputs with bit-identical per-column
    #: results.  Kernels whose annotations are already multi-axis rows
    #: (:class:`VectorArrayKernel`) override this to False — stacking would
    #: collide with the packed axes — and fall back to serial execution.
    stackable = True

    def where_rows(self, found, matched):
        """*matched* with rows where ``~found`` replaced by ``monoid.zero``.

        The union-merge helper: probe rows missing from the other side get
        the ⊕-identity annotation (``a ⊗ 0`` need not be ``0`` in a general
        2-monoid).  Scalar columns use one ``np.where``; packed-row kernels
        override with a row-wise assignment.
        """
        return self.np.where(found, matched, self.monoid.zero)

    def concat_rows(self, first, second):
        """Concatenate two annotation arrays along the row axis.

        Packed-row kernels override to reconcile differing slot widths
        before concatenating.
        """
        return self.np.concatenate([first, second])

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.monoid.name!r}>"


class ExactObjectArrayKernel(ArrayKernel[K]):
    """Array kernel over ``dtype=object`` columns of exact Python values.

    Unbounded-int carriers (counting, (max, ×)) must never be squeezed into
    a fixed-width dtype: int64 arithmetic *wraps silently* on overflow,
    which would corrupt answers under the default ``auto`` tier with no
    exception to trigger the batched fallback.  Object columns keep the
    numpy grouping/alignment machinery (the key columns stay int64) while
    the ⊕/⊗ arithmetic runs on the stored Python ints — exact at any
    magnitude, still one C-dispatched loop per batch instead of a Python
    call per tuple.
    """

    dtype = object

    def to_scalar(self, value) -> K:
        # Object columns store the carrier value itself, not a numpy scalar.
        return value


class VectorArrayKernel(ArrayKernel[K]):
    """Array kernel over *vector* carriers packed as 2-D annotation rows.

    Where a scalar :class:`ArrayKernel` stores one annotation per array
    entry, a vector kernel packs each carrier vector into one **row** of a
    2-D (or, for the two-slice Shapley carrier, 3-D) array: one column per
    vector slot, trimmed to the widest slot actually used.  The columnar
    relation layer (:class:`~repro.db.annotated.PackedColumnarKRelation`)
    only ever indexes, filters and concatenates whole rows, so all the key
    grouping and alignment machinery is shared with the scalar tier; the
    per-row ⊕/⊗ arithmetic — batched sliding-window convolutions with a
    guarded ``int64`` fast path and an exact fallback — lives in the
    concrete kernels next to their monoids (:mod:`repro.algebra.bagset`,
    :mod:`repro.algebra.shapley`), built on :mod:`repro.algebra.packed`.

    Subclasses implement :meth:`zero_row` (the ⊕-identity as one packed
    row) on top of the scalar-kernel contract.
    """

    packed_rows = True
    stackable = False

    def zero_row(self, width):
        """``monoid.zero`` packed as a single row of *width* slots."""
        raise NotImplementedError

    def pad_rows(self, rows, width):
        """Right-pad the slot axis to *width* (trailing slots are zeros)."""
        from repro.algebra.packed import pad_rows

        return pad_rows(self.np, rows, width)

    def where_rows(self, found, matched):
        out = matched.copy()
        out[~found] = self.zero_row(matched.shape[-1])
        return out

    def concat_rows(self, first, second):
        np = self.np
        width = max(first.shape[-1], second.shape[-1])
        return np.concatenate(
            [self.pad_rows(first, width), self.pad_rows(second, width)]
        )


_ARRAY_REGISTRY: dict[type, ArrayKernelFactory] = {}
_ARRAY_REGISTRY_VERSION = 0


def register_array_kernel(
    monoid_type: type, factory: ArrayKernelFactory
) -> None:
    """Register *factory* as the array-kernel builder for *monoid_type*.

    The factory receives the monoid instance and the probed numpy module; it
    may return ``None`` to decline (the standard guard for subclasses whose
    carrier is not the flat scalar the kernel vectorizes — e.g. the exact
    rational probability/real monoids, which inherit ``add``/``mul`` but
    carry :class:`~fractions.Fraction`).  Resolution walks the MRO exactly
    like :func:`register_kernel`.
    """
    global _ARRAY_REGISTRY_VERSION
    with _registry_lock:
        _ARRAY_REGISTRY[monoid_type] = factory
        _ARRAY_REGISTRY_VERSION += 1


def array_kernel_for(monoid: TwoMonoid[K]) -> ArrayKernel[K] | None:
    """The array kernel serving *monoid*, or ``None``.

    ``None`` — meaning "use the batched tier" — when numpy is not
    importable, inside a :func:`scalar_kernels` block, when no factory is
    registered along the monoid's MRO, or when the registered factory
    declines the instance.  The result is memoized on the monoid instance,
    invalidated when the registry (or the numpy probe) changes.
    """
    if _forced_generic() or numpy_or_none() is None:
        return None
    cached = getattr(monoid, "_array_kernel_cache", None)
    if cached is not None and cached[0] == _ARRAY_REGISTRY_VERSION:
        return cached[1]
    kernel: ArrayKernel | None = None
    for klass in type(monoid).__mro__:
        factory = _ARRAY_REGISTRY.get(klass)
        if factory is not None:
            kernel = factory(monoid, numpy_or_none())
            break
    try:
        monoid._array_kernel_cache = (_ARRAY_REGISTRY_VERSION, kernel)
    except AttributeError:  # slots/frozen monoid: rebuild per call
        pass
    return kernel


# ----------------------------------------------------------------------
# Monoid transport: moving monoid instances across process boundaries
# ----------------------------------------------------------------------
_TRANSPORT_CACHE_ATTRS = ("_kernel_cache", "_array_kernel_cache")


def monoid_payload(monoid: TwoMonoid[K]):
    """A picklable description of *monoid* for the sharded tier's workers.

    Monoid instances are plain Python objects, but :func:`kernel_for` and
    :func:`array_kernel_for` memoize built kernels *on* them — and an
    :class:`ArrayKernel` holds a reference to the numpy module, which does
    not pickle.  The payload is the monoid's type plus its ``__dict__``
    minus those cache attributes; slotted/frozen monoids (which never grew
    the caches) ship as themselves.  Workers rebuild with
    :func:`restore_monoid` and warm their own per-process kernel caches.
    """
    state = getattr(monoid, "__dict__", None)
    if state is None:
        return (type(monoid), None, monoid)
    clean = {
        key: value
        for key, value in state.items()
        if key not in _TRANSPORT_CACHE_ATTRS
    }
    return (type(monoid), clean, None)


def restore_monoid(payload) -> TwoMonoid:
    """Rebuild the monoid described by a :func:`monoid_payload` tuple."""
    monoid_type, state, whole = payload
    if state is None:
        return whole
    monoid = object.__new__(monoid_type)
    monoid.__dict__.update(state)
    return monoid
