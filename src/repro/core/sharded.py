"""The sharded execution tier: process-parallel key-range plan execution.

``kernel_mode="sharded"`` lifts the columnar tier across process boundaries.
The parent partitions every columnar relation by contiguous ranges of the
*shard root* variable's interned int64 code — the variable shared by every
atom, whose existence makes key-range partitioning a congruence for the
whole plan (see :func:`repro.core.plan.shard_root`) — exports the sorted
key/annotation arrays into ``multiprocessing.shared_memory`` blocks
(:meth:`repro.db.annotated.KDatabase.shard_export`), and runs the *complete*
compiled plan per shard on a persistent :class:`ProcessPoolExecutor`.  Each
worker attaches the blocks zero-copy, replays the same Rule-1 ``reduceat``
⊕-folds and Rule-2 ``searchsorted`` alignments as the in-process columnar
executor, and returns its shard's nullary annotation; the parent finishes
with **one ⊕-fold** of the per-shard results in shard (ascending key-range)
order.

Why this is sound: while two or more atoms are live, the root variable is
never private, so every Rule-1 group key and every Rule-2 alignment key
contains the root column and no group or match ever crosses a shard
boundary — per-shard intermediates are exactly the global intermediates
restricted to the shard.  Once a single atom remains, the residual steps
are pure ⊕-projections down to the nullary answer, and ⊕ associativity/
commutativity makes per-shard folds followed by the final parent fold equal
to the global fold.  Exact carriers (int/bool/vector) are therefore
bit-identical to the array tier under any shard count; float carriers agree
within the same tolerance discipline the array tier already documents
(⊕-fold association differs, the value does not).

Degradation ladder: ineligible queries (no shared variable), step-free
plans, inputs under the auto-selection threshold, pool failures that
survive a rebuild, and worker-side exceptions all *delegate to the array
tier* — results never depend on the pool being healthy.  Both numpy and
the process pool stay strictly optional.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import time
from collections import OrderedDict
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager

from repro.core.kernels import kernel_for, monoid_payload, restore_monoid
from repro.core.plan import MergeStep, Plan, ProjectStep, shard_root
from repro.exceptions import ReproError

# ----------------------------------------------------------------------
# Worker-count validation (shared by Scheduler / Server / CLI / this tier)
# ----------------------------------------------------------------------
#: The single accepted worker-count range, shared by ``--workers``,
#: ``--shard-workers``, the Scheduler and this module so every surface
#: rejects the same values with the same message.
MAX_WORKER_COUNT = 128


def validate_worker_count(value, *, what: str = "worker") -> int:
    """Validate a worker count once, identically, for every entry point.

    Accepts integers in ``[1, MAX_WORKER_COUNT]`` and raises
    :class:`~repro.exceptions.ReproError` otherwise (bools are rejected —
    ``True`` is not a worker count).  Returns the validated value.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ReproError(
            f"{what} count must be an integer between 1 and "
            f"{MAX_WORKER_COUNT}, got {value!r}"
        )
    if not 1 <= value <= MAX_WORKER_COUNT:
        raise ReproError(
            f"{what} count must be an integer between 1 and "
            f"{MAX_WORKER_COUNT}, got {value!r}"
        )
    return value


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
#: Auto-selection threshold: shard only when total support rows × carrier
#: width clears this, else delegate to the in-process array tier.  Measured
#: with ``repro bench``: below ~tens of thousands of carrier cells the
#: per-task pickling/IPC overhead (~1–2 ms per shard) dominates the fold
#: work and the array tier wins.
DEFAULT_SHARD_THRESHOLD = 16384

_config_lock = threading.RLock()
_shard_workers = max(1, min(8, os.cpu_count() or 1))
_shard_count_override: int | None = None
_shard_threshold = DEFAULT_SHARD_THRESHOLD

_pool = None
_pool_workers = 0
_pool_lock = threading.RLock()

_fault_hook = None

_stats_lock = threading.Lock()
_stats = {
    "dispatches": 0,
    "shards_run": 0,
    "delegated_root": 0,
    "delegated_steps": 0,
    "delegated_threshold": 0,
    "fallbacks": 0,
    "pool_rebuilds": 0,
    "worker_kills": 0,
}
_last_error: str | None = None

#: Per-future result timeout (seconds): a hung pool degrades to the array
#: tier instead of hanging the caller (CI additionally hard-caps the job).
SHARD_TASK_TIMEOUT = 120.0


def shard_workers() -> int:
    """The configured process-pool size of the sharded tier."""
    return _shard_workers


def set_shard_workers(count: int) -> None:
    """Set the pool size; an existing pool is rebuilt on next dispatch."""
    global _shard_workers
    validate_worker_count(count, what="shard worker")
    with _config_lock:
        _shard_workers = count


def shard_count() -> int:
    """Shards per dispatch: the override when set, else one per worker."""
    override = _shard_count_override
    return override if override is not None else _shard_workers


def shard_threshold() -> int:
    """The rows × carrier-width floor below which sharding delegates."""
    return _shard_threshold


def set_shard_threshold(threshold: int) -> None:
    if not isinstance(threshold, int) or threshold < 0:
        raise ReproError(
            f"shard threshold must be a non-negative integer, got {threshold!r}"
        )
    global _shard_threshold
    with _config_lock:
        _shard_threshold = threshold


@contextmanager
def shard_config(*, workers=None, shards=None, threshold=None):
    """Temporarily override the tier configuration (tests and the bench).

    ``shards`` decouples the partition count from the pool size — shard
    invariance is a property of the partition, so tests sweep 1/2/3/7
    shards without needing 7 processes.
    """
    global _shard_workers, _shard_count_override, _shard_threshold
    with _config_lock:
        saved = (_shard_workers, _shard_count_override, _shard_threshold)
        if workers is not None:
            validate_worker_count(workers, what="shard worker")
            _shard_workers = workers
        if shards is not None:
            validate_worker_count(shards, what="shard")
            _shard_count_override = shards
        if threshold is not None:
            _shard_threshold = threshold
    try:
        yield
    finally:
        with _config_lock:
            _shard_workers, _shard_count_override, _shard_threshold = saved


def set_shard_fault_hook(hook) -> None:
    """Install ``hook() -> bool`` consulted before each dispatch; ``True``
    SIGKILLs one live pool process (chaos injection — see
    :mod:`repro.serve.faults`).  Pass ``None`` to clear."""
    global _fault_hook
    _fault_hook = hook


def sharded_stats() -> dict:
    """Counters of the sharded tier (dispatches, delegations, rebuilds)."""
    with _stats_lock:
        snapshot = dict(_stats)
    snapshot["workers"] = _shard_workers
    snapshot["threshold"] = _shard_threshold
    snapshot["last_error"] = _last_error
    return snapshot


def reset_sharded_stats() -> None:
    global _last_error
    with _stats_lock:
        for key in _stats:
            _stats[key] = 0
        _last_error = None


def _obs_events():
    """The ``repro_sharded_events_total`` family, registered on first use.

    Lazy so importing this module (which the engine does eagerly) never
    races registry construction during interpreter startup; the registry
    itself is process-global, matching the module-global ``_stats``.
    """
    global _obs_family
    if _obs_family is None:
        from repro.obs import global_registry

        _obs_family = global_registry().counter(
            "repro_sharded_events_total",
            "Sharded-tier lifecycle events "
            "(dispatches, delegations, rebuilds, fallbacks).",
            labels=("event",),
        )
    return _obs_family


_obs_family = None


def _count(key: str, amount: int = 1) -> None:
    with _stats_lock:
        _stats[key] += amount
    _obs_events().labels(event=key).inc(amount)


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
def _worker_init() -> None:
    """Per-process warmup: importing the algebra package registers every
    batched and array kernel, so the first shard task pays no registry
    misses (plans arrive pre-compiled, so there is no plan-cache cold
    start either)."""
    import repro.algebra  # noqa: F401


def _get_pool():
    """The persistent process pool, built lazily at the configured size."""
    global _pool, _pool_workers
    workers = _shard_workers
    with _pool_lock:
        if _pool is None or _pool_workers != workers:
            if _pool is not None:
                _pool.shutdown(wait=False, cancel_futures=True)
            from concurrent.futures import ProcessPoolExecutor

            _pool = ProcessPoolExecutor(
                max_workers=workers, initializer=_worker_init
            )
            _pool_workers = workers
        return _pool


def _rebuild_pool() -> None:
    """Discard a broken pool; the next dispatch builds a fresh one."""
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None
    _count("pool_rebuilds")


def shutdown_shard_pool() -> None:
    """Shut the pool down (idempotent; re-created on next dispatch)."""
    global _pool
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
            _pool = None


atexit.register(shutdown_shard_pool)


def _noop() -> None:
    return None


def _kill_one_pool_worker(pool) -> None:
    """SIGKILL one live pool process (the chaos-injection primitive)."""
    processes = getattr(pool, "_processes", None)
    if not processes:
        pool.submit(_noop).result(timeout=SHARD_TASK_TIMEOUT)
        processes = getattr(pool, "_processes", None)
    if not processes:
        return
    pid = next(iter(processes))
    try:
        os.kill(pid, signal.SIGKILL)
    except (OSError, ProcessLookupError):
        return
    _count("worker_kills")
    # Give the executor's management thread a beat to notice the death so
    # the breakage surfaces on this dispatch, not a later one.
    time.sleep(0.05)


def _maybe_inject_fault(pool) -> None:
    hook = _fault_hook
    if hook is None:
        return
    try:
        kill = bool(hook())
    except Exception:
        return
    if kill:
        _kill_one_pool_worker(pool)


# ----------------------------------------------------------------------
# Worker side: attach shared memory, replay the plan, return one fold
# ----------------------------------------------------------------------
class _SnapshotInterner:
    """A length-only stand-in for the parent's value interner.

    Workers never decode values — the only interner property the columnar
    operations read is ``len()`` (the radix of composite-key packing), and
    shipping the snapshot length keeps every shard packing with the exact
    radix the parent's arrays were encoded under.
    """

    __slots__ = ("_length",)

    def __init__(self, length: int) -> None:
        self._length = length

    def __len__(self) -> int:
        return self._length


#: Per-process cache of attached shared-memory blocks, keyed by block name.
#: Exports are reused across plan executions (version-fingerprint keyed in
#: the parent), so workers typically attach each block once per database
#: generation instead of once per task.
_ATTACHMENTS: "OrderedDict[str, tuple]" = OrderedDict()
_ATTACHMENT_LIMIT = 64


def _attach_view(transport, lo: int, hi: int, np):
    """Materialize one transported array restricted to ``[lo, hi)``.

    ``("data", array)`` chunks were sliced in the parent and pass through;
    ``("shm", name, dtype, shape)`` attaches the named block (cached per
    process) and returns a zero-copy slice of the mapped array.
    """
    if transport[0] == "data":
        return transport[1]
    _, name, dtype, shape = transport
    cached = _ATTACHMENTS.get(name)
    if cached is None:
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(name=name)
        try:
            # Under "spawn", pre-3.13 attach spuriously registers with the
            # worker's own resource tracker, which would unlink the
            # parent's block when this worker exits; undo it — the parent
            # owns the lifecycle.  Under "fork" the tracker is shared with
            # the parent, and unregistering would strip the parent's own
            # registration instead.
            import multiprocessing
            from multiprocessing import resource_tracker

            if multiprocessing.get_start_method(allow_none=True) != "fork":
                resource_tracker.unregister(block._name, "shared_memory")
        except Exception:
            pass
        array = np.ndarray(shape, dtype=dtype, buffer=block.buf)
        _ATTACHMENTS[name] = (block, array)
        while len(_ATTACHMENTS) > _ATTACHMENT_LIMIT:
            stale_name, (stale_block, _stale) = _ATTACHMENTS.popitem(
                last=False
            )
            try:
                stale_block.close()
            except BufferError:
                # A view from this very task still references the buffer;
                # keep the attachment alive instead.
                _ATTACHMENTS[stale_name] = (stale_block, _stale)
                break
    else:
        _ATTACHMENTS.move_to_end(name)
        block, array = cached
    return array[lo:hi]


def _execute_shard(task: dict):
    """Run the complete plan over one shard; returns ``(result, max_live)``.

    The worker-side mirror of ``_execute_plan_columnar``: same step loop,
    same build/probe orientation (so per-shard intermediates match the
    global run row-for-row), ending in the shard's nullary annotation.
    """
    from repro.core.algorithm import _merge_operands
    from repro.core.kernels import array_kernel_for
    from repro.db.annotated import columnar_relation_class

    monoid = restore_monoid(task["monoid"])
    kernel = array_kernel_for(monoid)
    if kernel is None:
        raise ReproError(
            f"shard worker has no array kernel for monoid {monoid.name!r}"
        )
    np = kernel.np
    interner = _SnapshotInterner(task["interner_len"])
    view_class = columnar_relation_class(kernel)
    live: dict[str, object] = {}
    for entry in task["relations"]:
        lo, hi = entry["lo"], entry["hi"]
        columns = tuple(
            _attach_view(transport, lo, hi, np)
            for transport in entry["columns"]
        )
        annotations = _attach_view(entry["annotations"], lo, hi, np)
        atom = entry["atom"]
        live[atom.relation] = view_class(
            atom, kernel, columns, annotations, interner
        )
    plan: Plan = task["plan"]
    annihilates = monoid.annihilates
    max_live = sum(len(relation) for relation in live.values())
    for step in plan.steps:
        if isinstance(step, ProjectStep):
            source = live.pop(step.source.relation)
            produced = source.project_out(step.variable, step.target)
        else:
            assert isinstance(step, MergeStep)
            first = live.pop(step.first.relation)
            second = live.pop(step.second.relation)
            build, probe = _merge_operands(first, second, annihilates)
            produced = build.merge(probe, step.target)
        live[step.target.relation] = produced
        max_live = max(
            max_live, sum(len(relation) for relation in live.values())
        )
    final = live[plan.final_relation]
    return final.nullary_annotation(), max_live


# ----------------------------------------------------------------------
# Parent side: dispatch, retry/respawn, final ⊕-fold
# ----------------------------------------------------------------------
def _run_shard_tasks(tasks: list[dict]) -> list[tuple]:
    """Submit every shard task, surviving pool breakage by rebuilding.

    A SIGKILLed (or otherwise dead) pool process marks the whole
    ``ProcessPoolExecutor`` broken; the executor never self-heals, so the
    respawn lives here — rebuild the pool and resubmit the *entire* batch
    (shard results are deterministic, so re-execution is free of
    double-count hazards).  After ``attempts`` consecutive breakages the
    last error propagates and the caller delegates to the array tier.
    """
    attempts = 3
    last_error: BaseException | None = None
    for _ in range(attempts):
        pool = _get_pool()
        _maybe_inject_fault(pool)
        try:
            futures = [pool.submit(_execute_shard, task) for task in tasks]
            return [
                future.result(timeout=SHARD_TASK_TIMEOUT)
                for future in futures
            ]
        except FuturesTimeoutError as exc:
            _rebuild_pool()
            raise ReproError(
                f"sharded tier timed out after {SHARD_TASK_TIMEOUT}s"
            ) from exc
        except BrokenPoolError as exc:
            last_error = exc
            _rebuild_pool()
    raise last_error  # type: ignore[misc]


try:  # concurrent.futures.process is stdlib, but keep the tier importable
    from concurrent.futures.process import BrokenProcessPool as BrokenPoolError
except Exception:  # pragma: no cover - no multiprocessing support
    class BrokenPoolError(Exception):
        pass


def maybe_execute_sharded(plan: Plan, annotated, kernel):
    """Try the sharded tier; ``(result, max_live)`` or ``None`` to delegate.

    Delegation (→ array tier, which reuses the columnar views materialized
    here) happens when the query has no shard-root variable, the plan is
    step-free, the input is under the rows × carrier-width threshold, or
    the pool fails beyond repair.  ``OverflowError`` from view
    materialization propagates so the caller's decline bookkeeping fires
    exactly as for the array tier.
    """
    root = shard_root(plan.query)
    if root is None:
        _count("delegated_root")
        return None
    if not plan.steps:
        _count("delegated_steps")
        return None
    views = {
        relation.atom.relation: annotated.columnar_relation(
            relation.atom.relation, kernel
        )
        for relation in annotated.relations()
    }
    rows = sum(len(view) for view in views.values())
    width = max(
        (
            int(view.annotations.shape[-1])
            for view in views.values()
            if view.annotations.ndim > 1
        ),
        default=1,
    )
    if rows * width < _shard_threshold:
        _count("delegated_threshold")
        return None
    shards = shard_count()
    root_positions = {
        atom.relation: atom.variables.index(root)
        for atom in plan.query.atoms
    }
    monoid = kernel.monoid
    global _last_error
    try:
        export = annotated.shard_export(kernel, shards, root_positions)
        payload_monoid = monoid_payload(monoid)
        tasks = [
            {
                "plan": plan,
                "monoid": payload_monoid,
                "interner_len": export.interner_len,
                "relations": export.task_payload(shard),
            }
            for shard in range(shards)
        ]
        outcomes = _run_shard_tasks(tasks)
    except OverflowError:
        raise
    except Exception as exc:
        with _stats_lock:
            _last_error = f"{type(exc).__name__}: {exc}"
        _count("fallbacks")
        return None
    values = [outcome[0] for outcome in outcomes]
    folded = kernel_for(monoid).fold_add([values])[0]
    max_live = sum(outcome[1] for outcome in outcomes)
    _count("dispatches")
    _count("shards_run", len(tasks))
    return folded, max_live
