"""Instrumentation wrappers for 2-monoids.

:class:`CountingMonoid` delegates to an underlying 2-monoid while counting
⊕ and ⊗ applications.  Theorem 6.7 states Algorithm 1 performs ``O(|D|)``
such operations; the tests and the scaling benchmarks verify this directly by
wrapping the problem monoids.
"""

from __future__ import annotations

from repro.algebra.base import K, TwoMonoid


class CountingMonoid(TwoMonoid[K]):
    """A pass-through 2-monoid that counts its ⊕/⊗ applications."""

    def __init__(self, inner: TwoMonoid[K]):
        self.inner = inner
        self.name = f"counting({inner.name})"
        self.add_count = 0
        self.mul_count = 0

    @property
    def zero(self) -> K:
        return self.inner.zero

    @property
    def one(self) -> K:
        return self.inner.one

    def add(self, left: K, right: K) -> K:
        self.add_count += 1
        return self.inner.add(left, right)

    def mul(self, left: K, right: K) -> K:
        self.mul_count += 1
        return self.inner.mul(left, right)

    def eq(self, left: K, right: K) -> bool:
        return self.inner.eq(left, right)

    @property
    def annihilates(self) -> bool:
        return self.inner.annihilates

    @property
    def operation_count(self) -> int:
        """Total ⊕ plus ⊗ applications since construction or :meth:`reset`."""
        return self.add_count + self.mul_count

    def reset(self) -> None:
        self.add_count = 0
        self.mul_count = 0
