"""Shared-scan fusion: many compatible queries in one columnar pass.

The serving workloads this repo targets send *batches* of requests against
one database — most often the same hierarchical query under different
parameter bindings (``Q(c)`` for varying constants ``c``, lifted by
:class:`~repro.core.plan.ParameterizedPlan`).  Evaluated one at a time,
every request re-runs the identical lexsort + ``reduceat`` ⊕-folds and
``searchsorted`` ⊗-alignments over the same
:class:`~repro.db.annotated.ColumnarKRelation` views; the key-column work
dominates and the per-request annotation arithmetic is cheap.  This module
amortizes the key-column work across a whole batch:

* group tasks by ``(annotated database identity, plan.scan_signature)`` —
  members of one group read the same relations, with the same interned key
  columns, through the identical step sequence;
* stack the members' annotation columns into one 2-D array (one column per
  member) and run the plan **once** over
  :class:`~repro.db.annotated.PackedColumnarKRelation` views driven by a
  :class:`_StackedKernel`, so each lexsort, each group-boundary scan and
  each ``searchsorted`` is paid once per step for the whole group — and
  the Rule-1 sort itself is shared with serial executions through the base
  views' sort caches;
* de-multiplex the final nullary row back into per-task scalars.

Bit-identicality to sequential evaluation is by construction, not by
tolerance.  Three properties make it a theorem:

1. **Value-independent schedules.**  The stacked kernel's
   :meth:`_StackedKernel.zero_mask` is constantly false, so no elimination
   step ever drops rows: every intermediate's support depends only on the
   shared base supports and the plan — never on any member's annotation
   values or stacking width.  In particular the size-based build/probe
   orientation of Rule-2 merges (``_merge_operands``) and every lexsort
   group boundary are identical for *every* width, including width 1.
2. **Column-independent arithmetic.**  Every flat-carrier
   :class:`~repro.core.kernels.ArrayKernel` (those with
   ``stackable = True``) folds with an ``axis=0`` ``ufunc.reduceat`` and
   multiplies elementwise, so column ``i`` of a width-``k`` run evolves
   exactly as it would in a width-1 run over the same row schedule.
3. **Width-1 is the serial definition.**  The engine's serial path for a
   parameterized request *is* a width-1 fused execution over the same base
   database object (`EngineSession` routes ``pqe(binding=…)`` through
   :func:`execute_fused` with a single task).  Fused therefore equals
   serial bit-for-bit — the two differ only in stacking width.

Masked-out rows carry the monoid's exact ⊕-identity instead of being
dropped; in every flat 2-monoid that identity is a bit-exact no-op under
both ⊕ and ⊗ (``x·1.0``, ``x+0``, ``min(x, +inf)``, ``max(x, -inf)``,
``x or False``), so keeping the rows changes cost, never values.

Decline conditions — a task (or a whole group) falls back to its serial
``fallback()`` thunk whenever the theorem's premises don't hold:

* the resolved kernel mode is ``batched``/``scalar``, or numpy is absent;
* the monoid's kernel is not ``stackable`` (packed vector carriers — their
  zero masks and row shapes are already 2-D);
* the task carries no binding (unbound tasks follow the standard serial
  executor, whose zero-dropping schedule a shared no-drop pass must not
  second-guess);
* the database has declined the columnar tier for this kernel, or view
  materialization overflows the kernel dtype (the group then declines and
  the database is marked, memoizing the decision per relation version).

Groups of one are executed through the same stacked machinery (that *is*
the serial path) but are not counted as fusion wins: ``fused_batches`` /
``fused_queries`` only count groups of two or more.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.algorithm import _array_kernel_if_selected, _merge_operands
from repro.core.plan import MergeStep, Plan, ProjectStep, binding_occurrences
from repro.db.annotated import KDatabase, PackedColumnarKRelation
from repro.exceptions import ReproError

#: A canonical binding: sorted ``(variable, value)`` pairs (see
#: :meth:`repro.core.plan.ParameterizedPlan.bind`).
Binding = Sequence[tuple]

_UNSET = object()


class _StackedKernel:
    """An :class:`ArrayKernel` adapter that runs ``width`` queries per row.

    Wraps a ``stackable`` flat kernel so the annotation array becomes 2-D —
    ``(rows, width)``, one column per fused task — while the key columns,
    and therefore every sort, boundary scan and alignment, stay 1-D and
    shared.  ⊕/⊗ delegate straight to the base kernel, whose ``axis=0``
    reduceats and elementwise products are column-independent.

    ``packed_rows = True`` routes construction through
    :class:`~repro.db.annotated.PackedColumnarKRelation`, whose inherited
    elimination operations only ever index, filter and concatenate whole
    rows.  ``zero_mask`` is constantly false: fused execution never drops
    rows, which is what pins the step schedule to be width-independent
    (see the module docstring's bit-identicality argument).
    """

    packed_rows = True
    stackable = False

    def __init__(self, base, width: int):
        self.base = base
        self.monoid = base.monoid
        self.np = base.np
        self.dtype = base.dtype
        self.width = width

    # -- conversion ----------------------------------------------------
    def to_array(self, annotations):
        """Broadcast scalar carriers to width-wide rows (zero fills only)."""
        np = self.np
        column = self.base.to_array(list(annotations))
        return np.repeat(column.reshape((-1, 1)), self.width, axis=1)

    def empty_column(self):
        return self.base.empty_column().reshape((0, self.width))

    def to_scalar(self, row):
        raise ReproError(
            "stacked annotations demultiplex per task; read columns via "
            "the base kernel"
        )

    def to_scalars(self, annotations):
        raise ReproError(
            "stacked annotations demultiplex per task; read columns via "
            "the base kernel"
        )

    # -- the two batched shapes of Algorithm 1 -------------------------
    def fold_groups(self, annotations, starts):
        return self.base.fold_groups(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return self.base.mul_arrays(lefts, rights)

    # -- layout hooks used by the generic elimination code -------------
    def zero_mask(self, annotations):
        # Constantly false — see the class docstring.  Masked-out tuples
        # stay in the support carrying the exact ⊕-identity instead.
        return self.np.zeros(annotations.shape[0], dtype=bool)

    def where_rows(self, found, matched):
        return self.np.where(
            found[:, None], matched, self.monoid.zero
        )

    def concat_rows(self, first, second):
        return self.np.concatenate([first, second])


def stack_token(kernel):
    """Hashable fusion-compatibility token for *kernel*, or ``None``.

    Two tasks may share one stacked pass only if their kernels would do the
    same arithmetic; the token captures that — kernel type plus the
    monoid's identity-relevant state (tolerances, exactness flags), via
    the same state extraction the sharded tier ships to its workers.
    ``None`` means "not stackable": packed vector kernels, kernels whose
    monoid state is unhashable, or no kernel at all (batched/scalar
    modes).  Memoized on the kernel instance.
    """
    if kernel is None or not getattr(kernel, "stackable", False):
        return None
    cached = getattr(kernel, "_fused_stack_token", _UNSET)
    if cached is not _UNSET:
        return cached
    from repro.core.kernels import monoid_payload

    kind, state, instance = monoid_payload(kernel.monoid)
    if instance is not None:
        token = (type(kernel), kind, id(instance))
    else:
        token = (type(kernel), kind, tuple(sorted(state.items())))
        try:
            hash(token)
        except TypeError:
            token = None
    try:
        kernel._fused_stack_token = token
    except AttributeError:  # slotted kernel subclass: skip the memo
        pass
    return token


@dataclass
class FusedTask:
    """One query of a batch: a plan over an annotated database, plus how to
    answer it alone if fusion declines.

    ``binding`` is the canonical sorted ``(variable, value)`` tuple of a
    lifted parameterized query, or ``None`` for an unbound task (which
    always takes ``fallback``).  ``fallback`` must return the task's final
    scalar annotation through the standard serial path.
    """

    plan: Plan
    annotated: KDatabase
    fallback: Callable[[], object]
    binding: Binding | None = None


@dataclass
class FusedReport:
    """Results of :func:`execute_fused`, aligned with the input tasks.

    ``fused_batches`` counts executed groups of two or more tasks;
    ``fused_queries`` counts the tasks inside those groups.  Width-1
    groups and fallbacks contribute to neither.
    """

    results: list = field(default_factory=list)
    fused_batches: int = 0
    fused_queries: int = 0


def execute_fused(
    tasks: Iterable[FusedTask], *, kernel_mode: str = "auto"
) -> FusedReport:
    """Answer a batch of tasks, sharing one columnar pass per fusion group.

    Grouping key: ``(id(annotated), plan.scan_signature, stack_token)`` —
    same database object, same relation/step shape, same arithmetic.
    Ineligible tasks (see the module docstring's decline conditions) and
    groups whose view materialization overflows run their ``fallback``
    instead; results are positionally aligned with *tasks* either way.
    """
    tasks = list(tasks)
    results: list = [None] * len(tasks)
    groups: dict[tuple, list[int]] = {}
    kernels: dict[int, object] = {}
    solo: list[int] = []
    for index, task in enumerate(tasks):
        kernel = _array_kernel_if_selected(kernel_mode, task.annotated.monoid)
        token = stack_token(kernel)
        if (
            token is None
            or task.binding is None
            or task.annotated.columnar_declined(kernel)
        ):
            solo.append(index)
            continue
        key = (id(task.annotated), task.plan.scan_signature, token)
        groups.setdefault(key, []).append(index)
        kernels[index] = kernel
    report = FusedReport(results)
    for members in groups.values():
        group = [tasks[index] for index in members]
        outcome = _execute_group(group, kernels[members[0]])
        if outcome is None:
            solo.extend(members)
            continue
        if len(members) > 1:
            report.fused_batches += 1
            report.fused_queries += len(members)
        for index, value in zip(members, outcome):
            results[index] = value
    for index in solo:
        results[index] = tasks[index].fallback()
    events = _obs_events()
    if report.fused_batches:
        events.labels(event="batches").inc(report.fused_batches)
        events.labels(event="queries").inc(report.fused_queries)
    if solo:
        events.labels(event="serial_fallbacks").inc(len(solo))
    return report


def _obs_events():
    """The ``repro_fused_events_total`` family, registered on first use."""
    global _obs_family
    if _obs_family is None:
        from repro.obs import global_registry

        _obs_family = global_registry().counter(
            "repro_fused_events_total",
            "Shared-scan fusion outcomes "
            "(batches run, queries fused, serial fallbacks).",
            labels=("event",),
        )
    return _obs_family


_obs_family = None


def _binding_masks(plan: Plan, binding, base_views, np):
    """Per-relation boolean row masks selecting the binding's section.

    For each relation mentioning a bound variable: ``True`` where every
    bound position's interned key code equals the bound value's code.  A
    value the interner has never seen selects nothing — the task's answer
    is then the monoid's zero, exactly as ``σ_{X=c}`` over facts that
    don't exist.
    """
    values = dict(binding)
    occurrences = binding_occurrences(plan.query, tuple(values))
    masks = {}
    for relation, positions in occurrences.items():
        view = base_views[relation]
        codes = view.interner._codes
        mask = None
        for position, variable in positions:
            code = codes.get(values[variable])
            if code is None:
                mask = np.zeros(len(view), dtype=bool)
                break
            column_mask = view.columns[position] == code
            mask = column_mask if mask is None else mask & column_mask
        masks[relation] = mask
    return masks


def _execute_group(group: list[FusedTask], kernel):
    """One stacked pass over a fusion group; ``None`` → decline to serial."""
    leader = group[0]
    annotated = leader.annotated
    plan = leader.plan
    np = kernel.np
    width = len(group)
    stacked_kernel = _StackedKernel(kernel, width)
    zero = kernel.monoid.zero
    try:
        base_views = {
            atom.relation: annotated.columnar_relation(atom.relation, kernel)
            for atom in plan.query.atoms
        }
        masks = [
            _binding_masks(plan, task.binding, base_views, np)
            for task in group
        ]
        live: dict[str, PackedColumnarKRelation] = {}
        for atom in plan.query.atoms:
            name = atom.relation
            view = base_views[name]
            column = view.annotations
            stacked = np.empty((len(view), width), dtype=column.dtype)
            for position, task_masks in enumerate(masks):
                mask = task_masks.get(name)
                if mask is None:
                    stacked[:, position] = column
                else:
                    stacked[:, position] = np.where(mask, column, zero)
            live[name] = PackedColumnarKRelation(
                view.atom,
                stacked_kernel,
                view.columns,
                stacked,
                view.interner,
                sort_cache=view._sort_cache,
            )
        annihilates = kernel.monoid.annihilates
        for step in plan.steps:
            if isinstance(step, ProjectStep):
                source = live.pop(step.source.relation)
                produced = source.project_out(step.variable, step.target)
            else:
                assert isinstance(step, MergeStep)
                first = live.pop(step.first.relation)
                second = live.pop(step.second.relation)
                build, probe = _merge_operands(first, second, annihilates)
                produced = build.merge(probe, step.target)
            live[step.target.relation] = produced
    except OverflowError:
        annotated.decline_columnar(kernel)
        return None
    final = live[plan.final_relation]
    if len(final) == 0:
        return [zero] * width
    row = final.annotations[0]
    return [kernel.to_scalar(row[position]) for position in range(width)]
