"""Compilation of elimination traces into executable plans.

Algorithm 1 "mirrors the elimination steps" of Proposition 5.1 (Section 5.3):
each Rule 1 application becomes a ⊕-aggregation and each Rule 2 application a
⊗-join.  We compile the elimination trace of a hierarchical query *once* into
a :class:`Plan` — a linear sequence of :class:`ProjectStep`/:class:`MergeStep`
over named annotated relations — and then execute it against any 2-monoid and
any annotated database.  This separates the query-dependent work (polynomial
in the fixed query size) from the data-dependent work, matching the paper's
data-complexity accounting.

Compiled plans are memoized in a small LRU cache keyed by the query
structure, the policy name, and (for cost-based policies) the relation-size
statistics.  Repeated evaluations of the same query — the incremental
engine's rebuilds, benchmark sweeps, serving workloads replaying one query
shape over many databases — skip recompilation entirely.  Callable policies
bypass the cache (they may be stateful, e.g. the random E10 policies).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Mapping, Union

from repro.exceptions import NotHierarchicalError, ReproError
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ
from repro.query.elimination import (
    EliminationTrace,
    Policy,
    Rule1Step,
    Rule2Step,
    eliminate,
)


@dataclass(frozen=True)
class ProjectStep:
    """Rule 1: ``target(x') = ⊕_y source(x', y)`` over the private variable."""

    source: Atom
    variable: Variable
    target: Atom

    def __str__(self) -> str:
        return (
            f"{self.target.relation} := ⊕[{self.variable}] {self.source.relation}"
        )


@dataclass(frozen=True)
class MergeStep:
    """Rule 2: ``target(x) = first(x) ⊗ second(x)`` over equal variable sets.

    The compiled order of ``first``/``second`` is the elimination trace's;
    the executors may swap the operands at runtime so the smaller support
    drives the probe (sound because ⊗ is commutative — see
    ``_merge_operands`` in :mod:`repro.core.algorithm`).  Plans therefore
    stay data-independent while the build-side choice uses the actual
    support sizes of the database being executed.
    """

    first: Atom
    second: Atom
    target: Atom

    def __str__(self) -> str:
        return (
            f"{self.target.relation} := "
            f"{self.first.relation} ⊗ {self.second.relation}"
        )


PlanStep = Union[ProjectStep, MergeStep]


@dataclass(frozen=True)
class Plan:
    """An executable compilation of the elimination procedure for one query."""

    query: BCQ
    steps: tuple[PlanStep, ...]
    final_relation: str

    def __str__(self) -> str:
        lines = [f"plan for {self.query}:"]
        lines.extend(f"  {step}" for step in self.steps)
        lines.append(f"  return {self.final_relation}()")
        return "\n".join(lines)

    @property
    def project_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, ProjectStep))

    @property
    def merge_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, MergeStep))

    @property
    def scan_signature(self) -> tuple:
        """The hashable shape that decides shared-scan fusibility.

        Two plans with equal scan signatures read the same relations with
        the same key columns (the query's atoms) and run the identical
        sequence of elimination steps over them — so a fused executor can
        stack their annotation columns and drive one lexsort +
        multi-column ⊕-fold / one ``searchsorted`` ⊗-alignment per step
        for the whole group (see :mod:`repro.core.fused`).  Everything the
        columnar operators touch is determined by this triple; only the
        annotation *values* (the per-query ψ and parameter bindings)
        differ within a group.
        """
        return (self.query.atoms, self.steps, self.final_relation)


@dataclass(frozen=True)
class ParameterizedPlan:
    """A plan compiled once for a query with free *parameter* variables.

    Constant lifting: the query language has no constant symbols, so a
    parameterized query ``Q(c)`` is realized as the **unchanged** compiled
    plan plus a *binding vector* — one value per parameter variable —
    applied as an annotation mask: every support tuple whose value at a
    bound variable's position differs from the binding gets the monoid's
    ⊕-identity, which the support invariant treats exactly like an absent
    tuple.  Because the mask only restricts each relation to the section
    ``σ_{X=c}``, eliminating the plan over the masked database computes
    ``Q(c)`` for any 2-monoid, and every binding of one parameterized plan
    shares the plan's scan signature — the ideal shared-scan fusion group.

    ``occurrences`` lists, per relation, the ``(column position,
    parameter index)`` pairs where a parameter variable occurs — the only
    query-dependent data a masking executor needs.
    """

    plan: Plan
    variables: tuple[Variable, ...]
    occurrences: tuple[tuple[str, tuple[tuple[int, int], ...]], ...]

    def bind(self, values: tuple) -> tuple[tuple[Variable, object], ...]:
        """The canonical binding for one vector of parameter *values*."""
        if len(values) != len(self.variables):
            raise ReproError(
                f"expected {len(self.variables)} binding value(s) for "
                f"parameters {self.variables}, got {len(values)}"
            )
        return tuple(sorted(zip(self.variables, values)))

    def __str__(self) -> str:
        parameters = ", ".join(self.variables)
        return f"parameterized[{parameters}] {self.plan}"


def binding_occurrences(
    query: BCQ, variables: tuple[Variable, ...] | list[Variable]
) -> dict[str, tuple[tuple[int, Variable], ...]]:
    """Where each bound variable occurs: ``relation → ((position, var), …)``.

    The shared lookup behind constant lifting (see
    :class:`ParameterizedPlan`): the serial path uses it to zero ψ on
    mismatching facts, the fused path to mask annotation columns against
    interned key columns.  Raises for variables the query never mentions —
    a binding that silently constrained nothing would be a wrong answer,
    not a no-op.
    """
    mentioned = set()
    occurrences: dict[str, tuple[tuple[int, Variable], ...]] = {}
    wanted = tuple(variables)
    for atom in query.atoms:
        positions = tuple(
            (position, variable)
            for position, variable in enumerate(atom.variables)
            if variable in wanted
        )
        if positions:
            occurrences[atom.relation] = positions
            mentioned.update(variable for _, variable in positions)
    missing = [variable for variable in wanted if variable not in mentioned]
    if missing:
        raise ReproError(
            f"cannot bind variable(s) {missing}: not mentioned by {query}"
        )
    return occurrences


def parameterize_plan(
    query: BCQ,
    variables: tuple[Variable, ...] | list[Variable],
    *,
    policy: Policy | str = "rule1_first",
    relation_sizes: Mapping[str, int] | None = None,
    union_merges: bool = False,
) -> ParameterizedPlan:
    """Compile ``Q(variables…)`` once into a :class:`ParameterizedPlan`.

    The underlying :func:`compile_plan` call goes through the process-wide
    plan cache, so a serving workload answering ``Q(c)`` for millions of
    distinct constants ``c`` compiles exactly one plan and varies only the
    binding vector.
    """
    wanted = tuple(variables)
    if len(set(wanted)) != len(wanted):
        raise ReproError(f"duplicate parameter variable in {wanted}")
    occurrences = binding_occurrences(query, wanted)
    plan = compile_plan(query, policy, relation_sizes, union_merges)
    return ParameterizedPlan(
        plan=plan,
        variables=wanted,
        occurrences=tuple(
            (relation, tuple(
                (position, wanted.index(variable))
                for position, variable in positions
            ))
            for relation, positions in sorted(occurrences.items())
        ),
    )


#: Maximum number of (query, policy, sizes) entries kept compiled.
PLAN_CACHE_SIZE = 256

_plan_cache: "OrderedDict[tuple, Plan]" = OrderedDict()
_plan_cache_hits = 0
_plan_cache_misses = 0
#: Protects the cache mapping, the counters and ``PLAN_CACHE_SIZE``: the
#: cache is process-wide, and the serving layer compiles plans from many
#: worker threads at once.  Compilation itself (``eliminate``) runs outside
#: the lock — only the get/insert/evict bookkeeping is serialized.
_plan_cache_lock = threading.RLock()


def compile_plan(
    query: BCQ,
    policy: Policy | str = "rule1_first",
    relation_sizes: Mapping[str, int] | None = None,
    union_merges: bool = False,
) -> Plan:
    """Compile *query* into a :class:`Plan` (memoized for string policies).

    Parameters
    ----------
    query:
        A SJF-BCQ.
    policy:
        Elimination policy name or function; names include the cost-based
        ``"min_support"``.
    relation_sizes / union_merges:
        Statistics for cost-based policies — see
        :func:`repro.query.elimination.make_min_support_policy`.

    Raises
    ------
    NotHierarchicalError
        When the elimination procedure gets stuck — i.e., exactly when the
        query is not hierarchical (Proposition 5.1).
    """
    global _plan_cache_hits, _plan_cache_misses
    if not isinstance(policy, str):
        return plan_from_trace(
            eliminate(query, policy, relation_sizes, union_merges)
        )
    sizes_key = (
        None if relation_sizes is None
        else tuple(sorted(relation_sizes.items()))
    )
    key = (query, policy, sizes_key, union_merges)
    with _plan_cache_lock:
        cached = _plan_cache.get(key)
        if cached is not None:
            _plan_cache.move_to_end(key)
            _plan_cache_hits += 1
            return cached
        _plan_cache_misses += 1
    # Compile outside the lock: two threads missing on the same key both
    # compile, but plans are deterministic per key, so last-insert-wins is
    # harmless and the (potentially expensive) elimination never blocks
    # other threads' cache hits.
    plan = plan_from_trace(
        eliminate(query, policy, relation_sizes, union_merges)
    )
    with _plan_cache_lock:
        _plan_cache[key] = plan
        while len(_plan_cache) > PLAN_CACHE_SIZE:
            _plan_cache.popitem(last=False)
    return plan


def plan_cache_info() -> dict[str, int]:
    """Hit/miss/size counters of the plan cache (for tests and diagnostics)."""
    with _plan_cache_lock:
        return {
            "hits": _plan_cache_hits,
            "misses": _plan_cache_misses,
            "size": len(_plan_cache),
            "max_size": PLAN_CACHE_SIZE,
        }


def clear_plan_cache() -> None:
    """Drop every memoized plan and reset the counters."""
    global _plan_cache_hits, _plan_cache_misses
    with _plan_cache_lock:
        _plan_cache.clear()
        _plan_cache_hits = 0
        _plan_cache_misses = 0


def _register_plan_cache_gauges() -> None:
    """Expose the plan cache as callback gauges on the global registry.

    Callback gauges read :func:`plan_cache_info` only at scrape time, so
    the compile hot path carries no extra bookkeeping.
    """
    from repro.obs import global_registry

    registry = global_registry()
    for field, help_text in (
        ("hits", "Plan-cache hits since start (or last explicit clear)."),
        ("misses", "Plan-cache misses since start (or last explicit clear)."),
        ("size", "Plans currently memoized in the plan cache."),
    ):
        gauge = registry.gauge(f"repro_plan_cache_{field}", help_text).labels()
        gauge.set_function(
            lambda field=field: plan_cache_info()[field]
        )


_register_plan_cache_gauges()


def set_plan_cache_size(size: int) -> None:
    """Resize the plan cache, evicting oldest entries when shrinking.

    The :class:`~repro.engine.engine.Engine` configuration surface for the
    cache; hit/miss counters are preserved.  Safe against concurrent
    :func:`compile_plan` calls: the length check and each eviction happen
    under the cache lock, so the loop can neither pop from an empty cache
    (``KeyError``) nor evict below the new limit while inserts race it.
    """
    global PLAN_CACHE_SIZE
    if size < 1:
        raise ReproError(f"plan cache size must be positive, got {size}")
    with _plan_cache_lock:
        PLAN_CACHE_SIZE = size
        while len(_plan_cache) > PLAN_CACHE_SIZE:
            _plan_cache.popitem(last=False)


def shard_root(query: BCQ) -> Variable | None:
    """The variable shared by *every* atom of *query*, or ``None``.

    This is the eligibility test for the sharded tier.  For a hierarchical
    query with a variable ``X`` present in all atoms, partitioning every
    relation by contiguous ranges of ``X``'s interned code is a congruence
    for the whole plan: while two or more atoms remain live, ``X`` is never
    private (it appears elsewhere), so every Rule 1 group and every Rule 2
    alignment key contains ``X`` and stays inside one shard; once a single
    atom remains, the residual steps are pure ⊕-projections down to the
    nullary answer, and ⊕-commutativity/associativity makes the per-shard
    fold followed by one parent fold equal to the global fold.  Queries with
    no such variable (disconnected queries, queries with nullary atoms)
    return ``None`` and must run on a non-sharded tier.

    Ties are broken by the first atom's argument order so the choice is
    deterministic across processes.
    """
    atoms = query.atoms
    if not atoms or any(atom.is_nullary for atom in atoms):
        return None
    shared = None
    for candidate in atoms[0].variables:
        if all(atom.contains(candidate) for atom in atoms[1:]):
            shared = candidate
            break
    return shared


def plan_from_trace(trace: EliminationTrace) -> Plan:
    """Convert a successful elimination trace into a plan."""
    if not trace.success:
        raise NotHierarchicalError(
            f"query {trace.query} is not hierarchical; "
            f"elimination got stuck at {trace.final_query}"
        )
    steps: list[PlanStep] = []
    for step in trace.steps:
        if isinstance(step, Rule1Step):
            steps.append(
                ProjectStep(
                    source=step.source, variable=step.variable, target=step.target
                )
            )
        else:
            assert isinstance(step, Rule2Step)
            steps.append(
                MergeStep(first=step.first, second=step.second, target=step.target)
            )
    return Plan(
        query=trace.query,
        steps=tuple(steps),
        final_relation=trace.final_relation,
    )
