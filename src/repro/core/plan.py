"""Compilation of elimination traces into executable plans.

Algorithm 1 "mirrors the elimination steps" of Proposition 5.1 (Section 5.3):
each Rule 1 application becomes a ⊕-aggregation and each Rule 2 application a
⊗-join.  We compile the elimination trace of a hierarchical query *once* into
a :class:`Plan` — a linear sequence of :class:`ProjectStep`/:class:`MergeStep`
over named annotated relations — and then execute it against any 2-monoid and
any annotated database.  This separates the query-dependent work (polynomial
in the fixed query size) from the data-dependent work, matching the paper's
data-complexity accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.exceptions import NotHierarchicalError
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ
from repro.query.elimination import (
    EliminationTrace,
    Policy,
    Rule1Step,
    Rule2Step,
    eliminate,
)


@dataclass(frozen=True)
class ProjectStep:
    """Rule 1: ``target(x') = ⊕_y source(x', y)`` over the private variable."""

    source: Atom
    variable: Variable
    target: Atom

    def __str__(self) -> str:
        return (
            f"{self.target.relation} := ⊕[{self.variable}] {self.source.relation}"
        )


@dataclass(frozen=True)
class MergeStep:
    """Rule 2: ``target(x) = first(x) ⊗ second(x)`` over equal variable sets."""

    first: Atom
    second: Atom
    target: Atom

    def __str__(self) -> str:
        return (
            f"{self.target.relation} := "
            f"{self.first.relation} ⊗ {self.second.relation}"
        )


PlanStep = Union[ProjectStep, MergeStep]


@dataclass(frozen=True)
class Plan:
    """An executable compilation of the elimination procedure for one query."""

    query: BCQ
    steps: tuple[PlanStep, ...]
    final_relation: str

    def __str__(self) -> str:
        lines = [f"plan for {self.query}:"]
        lines.extend(f"  {step}" for step in self.steps)
        lines.append(f"  return {self.final_relation}()")
        return "\n".join(lines)

    @property
    def project_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, ProjectStep))

    @property
    def merge_count(self) -> int:
        return sum(1 for step in self.steps if isinstance(step, MergeStep))


def compile_plan(query: BCQ, policy: Policy | str = "rule1_first") -> Plan:
    """Compile *query* into a :class:`Plan`.

    Raises
    ------
    NotHierarchicalError
        When the elimination procedure gets stuck — i.e., exactly when the
        query is not hierarchical (Proposition 5.1).
    """
    trace = eliminate(query, policy=policy)
    return plan_from_trace(trace)


def plan_from_trace(trace: EliminationTrace) -> Plan:
    """Convert a successful elimination trace into a plan."""
    if not trace.success:
        raise NotHierarchicalError(
            f"query {trace.query} is not hierarchical; "
            f"elimination got stuck at {trace.final_query}"
        )
    steps: list[PlanStep] = []
    for step in trace.steps:
        if isinstance(step, Rule1Step):
            steps.append(
                ProjectStep(
                    source=step.source, variable=step.variable, target=step.target
                )
            )
        else:
            assert isinstance(step, Rule2Step)
            steps.append(
                MergeStep(first=step.first, second=step.second, target=step.target)
            )
    return Plan(
        query=trace.query,
        steps=tuple(steps),
        final_relation=trace.final_relation,
    )
