"""Algorithm 1 with free variables: per-answer K-annotations.

The paper's concluding remarks point at conjunctive queries with *free
access patterns* as a natural extension target.  This module implements the
straightforward generalization: given a hierarchical query and a set of
**free** variables ``F``, run the elimination procedure but never project a
free variable away.  If the procedure terminates with a single atom over
exactly ``F``, the result is a K-relation mapping every answer tuple over
``F`` to its K-annotation:

* counting semiring → the bag-set count of each answer (GROUP BY COUNT),
* probability 2-monoid → the marginal probability of each answer,
* bag-set 2-monoid → the repair-budget profile of each answer, etc.

The procedure succeeds exactly for queries that are hierarchical *and* keep
``F`` upward-closed in the variable hierarchy (every free variable's at-set
contains the at-set of each variable eliminated below it) — the analogue of
free-connexity for this elimination.  Other queries raise
:class:`~repro.exceptions.NotHierarchicalError` with a description of where
elimination got stuck; Boolean queries (``F = ∅``) reduce to the ordinary
plan with a nullary result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.algebra.base import K, TwoMonoid
from repro.core.plan import MergeStep, PlanStep, ProjectStep
from repro.db.annotated import KDatabase, KRelation
from repro.db.fact import Fact
from repro.exceptions import NotHierarchicalError, QueryError
from repro.query.atoms import Variable
from repro.query.bcq import BCQ
from repro.query.elimination import (
    _FreshNames,
    applicable_rule1_steps,
    applicable_rule2_steps,
    apply_step,
)


@dataclass(frozen=True)
class AbsorbStep:
    """Fold an all-free atom into a superset atom: ``target(y) = big(y) ⊗
    small(y|X)`` (the free-connex rule; see :meth:`KRelation.absorb`)."""

    small: "object"
    big: "object"
    target: "object"

    def __str__(self) -> str:
        return (
            f"{self.target.relation} := "
            f"{self.big.relation} ⊗ {self.small.relation}[subset]"
        )


@dataclass(frozen=True)
class GroupedPlan:
    """A compiled free-variable plan: steps plus the answer atom."""

    query: BCQ
    free_variables: frozenset[Variable]
    steps: tuple[object, ...]
    final_relation: str

    def __str__(self) -> str:
        free = ", ".join(sorted(self.free_variables))
        lines = [f"grouped plan for {self.query} with free variables ({free}):"]
        lines.extend(f"  {step}" for step in self.steps)
        lines.append(f"  return {self.final_relation}")
        return "\n".join(lines)


def compile_grouped_plan(
    query: BCQ, free_variables: Iterable[Variable]
) -> GroupedPlan:
    """Compile the free-variable elimination of *query*.

    Raises
    ------
    QueryError
        If a declared free variable does not occur in the query.
    NotHierarchicalError
        If elimination gets stuck before reaching a single atom over exactly
        the free variables (non-hierarchical query, or free variables not
        upward-closed in the hierarchy).
    """
    query.require_self_join_free()
    free = frozenset(free_variables)
    missing = free - query.variables
    if missing:
        raise QueryError(
            f"free variables {sorted(missing)} do not occur in {query}"
        )
    fresh = _FreshNames({atom.relation for atom in query.atoms})
    current = query
    steps: list[object] = []

    def is_done(q: BCQ) -> bool:
        return len(q.atoms) == 1 and q.atoms[0].variable_set == free

    while not is_done(current):
        rule1 = [
            step
            for step in applicable_rule1_steps(current, fresh)
            if step.variable not in free
        ]
        rule2 = applicable_rule2_steps(current, fresh)
        absorb = _applicable_absorb_steps(current, free, fresh)
        if rule1:
            step = rule1[0]
            steps.append(
                ProjectStep(
                    source=step.source, variable=step.variable, target=step.target
                )
            )
        elif rule2:
            step = rule2[0]
            steps.append(
                MergeStep(first=step.first, second=step.second, target=step.target)
            )
        elif absorb:
            step = absorb[0]
            steps.append(step)
        else:
            raise NotHierarchicalError(
                f"free-variable elimination of {query} with free set "
                f"{sorted(free)} got stuck at {current}; the query must be "
                "hierarchical with the free variables upward-closed in the "
                "variable hierarchy"
            )
        current = _apply_grouped_step(current, step)
    return GroupedPlan(
        query=query,
        free_variables=free,
        steps=tuple(steps),
        final_relation=current.atoms[0].relation,
    )


def _applicable_absorb_steps(query: BCQ, free, fresh) -> list[AbsorbStep]:
    """All-free atoms foldable into a strict-superset atom (free-connex rule)."""
    from itertools import permutations

    steps = []
    for small, big in permutations(query.atoms, 2):
        if small.variable_set <= free and small.variable_set < big.variable_set:
            target = big.renamed(fresh.derive(big.relation))
            steps.append(AbsorbStep(small=small, big=big, target=target))
    return steps


def _apply_grouped_step(query: BCQ, step) -> BCQ:
    from repro.query.elimination import Rule1Step, Rule2Step

    if isinstance(step, AbsorbStep):
        return query.merge_atoms(step.big, step.small, step.target)
    if isinstance(step, (Rule1Step, Rule2Step)):
        return apply_step(query, step)
    if isinstance(step, ProjectStep):
        return apply_step(
            query,
            Rule1Step(source=step.source, variable=step.variable, target=step.target),
        )
    assert isinstance(step, MergeStep)
    return apply_step(
        query, Rule2Step(first=step.first, second=step.second, target=step.target)
    )


def execute_grouped_plan(
    plan: GroupedPlan, annotated: KDatabase[K], *, kernel_mode: str = "auto"
) -> KRelation[K]:
    """Execute a grouped plan, returning the answer K-relation over ``F``.

    Every relation operation routes through the kernel tier *kernel_mode*
    selects — the columnar (numpy) tier for flat-carrier monoids under
    ``"auto"``/``"array"``, the batched kernels otherwise, the scalar
    baseline under ``"scalar"`` — exactly like the Boolean
    :func:`~repro.core.algorithm.execute_plan`.  The columnar answer
    relation is decoded back to the dict layout, so callers always receive
    a :class:`KRelation`.
    """
    from repro.core.algorithm import (
        _attempt_columnar,
        _kernel_context,
        _merge_operands,
    )

    answer = _attempt_columnar(
        annotated,
        kernel_mode,
        lambda kernel: _execute_grouped_columnar(plan, annotated, kernel),
    )
    if answer is not None:
        return answer
    annihilates = annotated.monoid.annihilates
    with _kernel_context(kernel_mode):
        live: dict[str, KRelation[K]] = {
            relation.atom.relation: relation
            for relation in annotated.relations()
        }
        for step in plan.steps:
            if isinstance(step, ProjectStep):
                source = live.pop(step.source.relation)
                live[step.target.relation] = source.project_out(
                    step.variable, step.target
                )
            elif isinstance(step, AbsorbStep):
                small = live.pop(step.small.relation)
                big = live.pop(step.big.relation)
                live[step.target.relation] = big.absorb(small, step.target)
            else:
                first = live.pop(step.first.relation)
                second = live.pop(step.second.relation)
                build, probe = _merge_operands(first, second, annihilates)
                live[step.target.relation] = build.merge(probe, step.target)
        return live[plan.final_relation]


def _execute_grouped_columnar(
    plan: GroupedPlan, annotated: KDatabase[K], array_kernel
) -> KRelation[K]:
    """Columnar tier of :func:`execute_grouped_plan` (including absorbs)."""
    from repro.core.algorithm import _columnar_view_getter, _merge_operands
    from repro.db.annotated import ColumnarKRelation

    live: dict[str, object] = {
        relation.atom.relation: relation
        for relation in annotated.relations()
    }
    columnar = _columnar_view_getter(annotated, array_kernel)
    annihilates = annotated.monoid.annihilates
    for step in plan.steps:
        if isinstance(step, ProjectStep):
            name = step.source.relation
            source = columnar(name, live.pop(name))
            live[step.target.relation] = source.project_out(
                step.variable, step.target
            )
        elif isinstance(step, AbsorbStep):
            small = columnar(step.small.relation, live.pop(step.small.relation))
            big = columnar(step.big.relation, live.pop(step.big.relation))
            live[step.target.relation] = big.absorb(small, step.target)
        else:
            first = columnar(step.first.relation, live.pop(step.first.relation))
            second = columnar(
                step.second.relation, live.pop(step.second.relation)
            )
            build, probe = _merge_operands(first, second, annihilates)
            live[step.target.relation] = build.merge(probe, step.target)
    final = live[plan.final_relation]
    if isinstance(final, ColumnarKRelation):
        return final.to_krelation()
    return final


def evaluate_grouped(
    query: BCQ,
    free_variables: Iterable[Variable],
    monoid: TwoMonoid[K],
    facts: Iterable[Fact],
    annotation_of,
    *,
    kernel_mode: str = "auto",
) -> KRelation[K]:
    """Annotate, compile and execute in one call (free-variable analogue of
    :func:`repro.core.algorithm.evaluate_hierarchical`).

    A thin adapter over :meth:`repro.engine.session.EngineSession.grouped`.
    """
    from repro.engine import Engine

    session = Engine(kernel_mode=kernel_mode).open(query)
    return session.grouped(
        free_variables, monoid, annotation_of=annotation_of, facts=facts
    )
