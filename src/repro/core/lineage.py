"""Boolean lineage of queries over databases.

Two independent constructions:

* :func:`naive_lineage` — the textbook DNF lineage (∨ over satisfying
  assignments of the ∧ of their facts), defined for *any* SJF-BCQ.  Generally
  **not** decomposable: facts repeat across assignments.
* :func:`read_once_lineage` — Algorithm 1 instantiated with the provenance
  2-monoid (Definition 6.2) and unique leaf symbols per fact.  By Lemma 6.3
  the result is decomposable, i.e. a *read-once* formula; this only exists
  for hierarchical queries.

The two are logically equivalent Boolean functions (checked exhaustively in
the tests), which is the concrete content of Theorem 6.4's universality:
every problem's answer is φ(read-once lineage).
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable

from repro.algebra.provenance import (
    ProvTree,
    ProvenanceMonoid,
    conjoin,
    disjoin,
    false_tree,
    leaf,
    truth_value,
)
from repro.core.algorithm import run_algorithm
from repro.db.annotated import KDatabase
from repro.db.database import Database
from repro.db.evaluation import satisfying_assignments
from repro.db.fact import Fact
from repro.query.bcq import BCQ


def naive_lineage(query: BCQ, database: Database) -> ProvTree:
    """DNF lineage: ``∨_assignments ∧_atoms fact(assignment, atom)``.

    Leaf symbols are the :class:`~repro.db.fact.Fact` objects themselves.
    """
    lineage = false_tree()
    for assignment in satisfying_assignments(query, database):
        clause = None
        for atom in query.atoms:
            values = tuple(assignment[v] for v in atom.variables)
            fact_leaf = leaf(Fact(atom.relation, values))
            clause = fact_leaf if clause is None else conjoin(clause, fact_leaf)
        assert clause is not None
        lineage = disjoin(lineage, clause)
    return lineage


def read_once_lineage(query: BCQ, database: Database) -> ProvTree:
    """Read-once lineage via Algorithm 1 over the provenance 2-monoid.

    Requires *query* to be hierarchical; the output is decomposable
    (Lemma 6.3) and logically equivalent to :func:`naive_lineage`.
    """
    monoid = ProvenanceMonoid()
    annotated = KDatabase.annotate(
        query, monoid, database.facts(), lambda fact: leaf(fact)
    )
    return run_algorithm(query, annotated)


def equivalent_boolean_functions(
    left: ProvTree, right: ProvTree, symbols: Iterable | None = None
) -> bool:
    """Exhaustively check that two trees define the same Boolean function.

    Exponential in the number of symbols; intended for tests on small
    instances only.
    """
    universe = sorted(
        set(symbols) if symbols is not None else left.support | right.support,
        key=repr,
    )
    for size in range(len(universe) + 1):
        for chosen in combinations(universe, size):
            chosen_set = frozenset(chosen)
            if truth_value(left, chosen_set) != truth_value(right, chosen_set):
                return False
    return True


def powerset(items: Iterable) -> Iterable[tuple]:
    """All subsets of *items* (used by brute-force baselines and tests)."""
    materialized = list(items)
    return chain.from_iterable(
        combinations(materialized, size) for size in range(len(materialized) + 1)
    )
