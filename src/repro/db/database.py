"""Set database instances: finite sets of facts grouped per relation.

This is the paper's input model: a database instance over a schema is a *set*
of facts (no duplicates — bag semantics appears only in query *outputs*).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.db.fact import Fact, Value
from repro.db.schema import Schema
from repro.exceptions import SchemaError


class Database:
    """An immutable-by-convention set of facts, indexed per relation.

    Construction accepts facts, ``(relation, values)`` pairs, or a mapping
    ``relation -> iterable of value tuples`` (see :meth:`from_relations`).
    """

    def __init__(self, facts: Iterable[Fact] = (), schema: Schema | None = None):
        self._relations: dict[str, set[tuple[Value, ...]]] = {}
        self._size = 0
        for fact in facts:
            self._add(fact)
        self._schema = schema
        if schema is not None:
            schema.validate_facts(self.facts())
            for relation in schema:
                self._relations.setdefault(relation, set())

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_relations(
        cls,
        relations: Mapping[str, Iterable[tuple[Value, ...] | list[Value]]],
        schema: Schema | None = None,
    ) -> "Database":
        """Build a database from ``{"R": [(1, 5), ...], "S": [...]}``."""
        facts = [
            Fact(relation, tuple(values))
            for relation, tuples in relations.items()
            for values in tuples
        ]
        return cls(facts, schema=schema)

    def _add(self, fact: Fact) -> None:
        bucket = self._relations.setdefault(fact.relation, set())
        if fact.values not in bucket:
            bucket.add(fact.values)
            self._size += 1

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    @property
    def relations(self) -> tuple[str, ...]:
        """The relation symbols with at least one declared bucket."""
        return tuple(sorted(self._relations))

    def tuples(self, relation: str) -> frozenset[tuple[Value, ...]]:
        """The set of value tuples stored for *relation* (empty if unknown)."""
        return frozenset(self._relations.get(relation, ()))

    def facts(self) -> Iterator[Fact]:
        """Iterate over all facts in deterministic order."""
        for relation in sorted(self._relations):
            for values in sorted(self._relations[relation], key=repr):
                yield Fact(relation, values)

    def active_domain(self) -> frozenset[Value]:
        """All values occurring anywhere in the database."""
        return frozenset(
            value
            for tuples in self._relations.values()
            for values in tuples
            for value in values
        )

    def __contains__(self, fact: Fact) -> bool:
        return fact.values in self._relations.get(fact.relation, ())

    def __len__(self) -> int:
        """``|D|``: the number of facts."""
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        return frozenset(self.facts()) == frozenset(other.facts())

    def __hash__(self) -> int:
        return hash(frozenset(self.facts()))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{relation}:{len(self._relations[relation])}"
            for relation in sorted(self._relations)
        )
        return f"Database({parts})"

    # ------------------------------------------------------------------
    # Set-algebraic operations (all return new databases)
    # ------------------------------------------------------------------
    def with_facts(self, extra: Iterable[Fact]) -> "Database":
        """Return this database with *extra* facts added (set union)."""
        return Database([*self.facts(), *extra])

    def without_facts(self, removed: Iterable[Fact]) -> "Database":
        """Return this database with the given facts removed."""
        removed_set = set(removed)
        return Database(fact for fact in self.facts() if fact not in removed_set)

    def union(self, other: "Database") -> "Database":
        return self.with_facts(other.facts())

    def difference(self, other: "Database") -> "Database":
        return self.without_facts(other.facts())

    def restrict(self, relations: Iterable[str]) -> "Database":
        """Keep only the facts of the given relation symbols."""
        keep = set(relations)
        return Database(fact for fact in self.facts() if fact.relation in keep)

    def validate_against(self, query) -> None:
        """Raise :class:`SchemaError` unless all facts fit the query's schema."""
        schema = Schema.of_query(query)
        for fact in self.facts():
            schema.validate_fact(fact)


def repair_cost(original: Database, repaired: Database) -> int:
    """``cost(D, D')``: the number of facts added by the repair (Def. 4.1).

    Raises :class:`SchemaError` if *repaired* is not a superset of *original*
    (repairs only add facts).
    """
    original_facts = frozenset(original.facts())
    repaired_facts = frozenset(repaired.facts())
    if not original_facts <= repaired_facts:
        raise SchemaError("a repair must contain every fact of the original database")
    return len(repaired_facts - original_facts)
