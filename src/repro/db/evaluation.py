"""Conjunctive-query evaluation over set databases.

Provides the three primitives the paper's problems are built on:

* :func:`evaluates_true` — Boolean (set) semantics ``D ⊨ Q``;
* :func:`count_satisfying_assignments` — the bag-set value ``Q(D)``, i.e. the
  number of distinct satisfying assignments of ``Q`` over ``D``;
* :func:`satisfying_assignments` — enumeration of the assignments themselves.

Evaluation is backtracking search over the atoms with hash indexes built on
the join positions, after a greedy join-order pass (bound-variables-first,
then smallest relation).  This is exact and deliberately simple; it is the
*baseline substrate*, not the paper's contribution — Algorithm 1 lives in
:mod:`repro.core`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.db.database import Database
from repro.db.fact import Value
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ

Assignment = Mapping[Variable, Value]


def _order_atoms(query: BCQ, database: Database) -> list[Atom]:
    """Greedy join order: prefer atoms sharing variables with already-placed ones,
    breaking ties by smaller relation, then by fewer unbound variables."""
    remaining = list(query.atoms)
    ordered: list[Atom] = []
    bound: set[Variable] = set()
    while remaining:
        def score(atom: Atom) -> tuple[int, int, int]:
            unbound = len(atom.variable_set - bound)
            shares = 0 if (atom.variable_set & bound) or not ordered else 1
            return (shares, unbound, len(database.tuples(atom.relation)))

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variable_set
    return ordered


class _AtomIndex:
    """Hash index of one relation keyed on the atom positions bound at probe time."""

    def __init__(self, atom: Atom, database: Database, bound_before: set[Variable]):
        self.atom = atom
        self.key_positions = tuple(
            i for i, v in enumerate(atom.variables) if v in bound_before
        )
        self.free_positions = tuple(
            i for i, v in enumerate(atom.variables) if v not in bound_before
        )
        self.free_variables = tuple(atom.variables[i] for i in self.free_positions)
        self._index: dict[tuple[Value, ...], list[tuple[Value, ...]]] = {}
        for values in database.tuples(atom.relation):
            key = tuple(values[i] for i in self.key_positions)
            self._index.setdefault(key, []).append(values)

    def probe(self, assignment: dict[Variable, Value]) -> list[tuple[Value, ...]]:
        key = tuple(
            assignment[self.atom.variables[i]] for i in self.key_positions
        )
        return self._index.get(key, [])


def satisfying_assignments(
    query: BCQ, database: Database
) -> Iterator[dict[Variable, Value]]:
    """Enumerate all satisfying assignments of *query* over *database*.

    Each yielded dict maps every variable of the query to a value; the number
    of yields equals ``Q(D)`` under bag-set semantics.
    """
    ordered = _order_atoms(query, database)
    indexes: list[_AtomIndex] = []
    bound: set[Variable] = set()
    for atom in ordered:
        indexes.append(_AtomIndex(atom, database, bound))
        bound |= atom.variable_set

    assignment: dict[Variable, Value] = {}

    def extend(depth: int) -> Iterator[dict[Variable, Value]]:
        if depth == len(indexes):
            yield dict(assignment)
            return
        index = indexes[depth]
        for values in index.probe(assignment):
            for position, variable in zip(index.free_positions, index.free_variables):
                assignment[variable] = values[position]
            yield from extend(depth + 1)
        for variable in index.free_variables:
            assignment.pop(variable, None)

    yield from extend(0)


def count_satisfying_assignments(query: BCQ, database: Database) -> int:
    """``Q(D)`` under bag-set semantics: the number of satisfying assignments."""
    return sum(1 for _ in satisfying_assignments(query, database))


def evaluates_true(query: BCQ, database: Database) -> bool:
    """``D ⊨ Q``: Boolean semantics, with early exit on the first witness."""
    for _ in satisfying_assignments(query, database):
        return True
    return False
