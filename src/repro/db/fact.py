"""Facts: ground atoms ``R(a, b, ...)`` over a countable value domain.

Values can be any hashable Python objects (ints and strings in practice).
A fact is positional: its values align with the variable order of the query
atom over the same relation symbol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

Value = Hashable
"""Domain values are arbitrary hashable objects."""


@dataclass(frozen=True, order=True)
class Fact:
    """A ground fact ``relation(values...)``."""

    relation: str
    values: tuple[Value, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    @property
    def arity(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"


def make_fact(relation: str, values: Iterable[Value]) -> Fact:
    """Convenience constructor accepting any iterable of values."""
    return Fact(relation, tuple(values))
