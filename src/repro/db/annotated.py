"""K-annotated relations and databases (the inputs of Algorithm 1).

A K-annotated relation formally assigns an element of the 2-monoid ``K`` to
*every* tuple in ``Dom^X``; we store only the tuples whose annotation differs
from ``K.zero`` (the *support*, Definition 6.5) plus, transiently, tuples the
algorithm computes.  Absent tuples implicitly carry ``K.zero``.

The subtle point, inherited from the weakness of 2-monoids: ``a ⊗ 0 = 0``
need **not** hold (the Shapley 2-monoid violates it).  A Rule 2 merge must
therefore evaluate every tuple in the *union* of the two supports — a tuple
present on one side only gets ``a ⊗ 0``, which can be non-zero.  Only when
the monoid declares :attr:`~repro.algebra.base.TwoMonoid.annihilates` may the
join skip one-sided tuples.

Execution strategy: the elimination operations *collect-then-batch*.  They
first gather the whole workload — ⊕-groups for Rule 1, aligned annotation
pairs for Rule 2 — and then hand it to the monoid's batched
:class:`~repro.core.kernels.MonoidKernel` in one call, instead of issuing a
dynamic ``monoid.add``/``mul`` per tuple.  The kernel registry picks a
carrier-specialized implementation when one is registered and the
always-correct scalar fallback otherwise (see :mod:`repro.core.kernels`).

On top of the dict layout sits an optional **columnar** tier
(:class:`ColumnarKRelation`): support tuples stored as parallel int64 key
columns (domain values dictionary-encoded through a per-database
:class:`_ValueInterner`) plus one numpy annotation array.  On this layout
Rule 1 is ``lexsort`` + segment-boundary detection + one ``reduceat``-style
⊕-fold, and Rule 2 is sorted-key alignment (``searchsorted`` intersection
for annihilating monoids, a union merge otherwise) followed by one
elementwise ⊗ — no per-tuple Python at all after materialization.  Views
are materialized lazily from the dict form and cached on the
:class:`KDatabase` across plan executions (sessions replay one annotated
database many times); any mutation of a relation bumps its version and
invalidates only that relation's view.

Vector carriers — the bag-set multiplicity profiles and Shapley ``#Sat``
polynomials — ride the same machinery through
:class:`PackedColumnarKRelation`: the annotation array becomes **2-D** (one
row per tuple, one column per vector slot; Shapley adds a false/true slice
axis), and the generic operations only ever index, filter and concatenate
whole rows, delegating the row arithmetic — batched sliding-window
convolutions with a guarded int64 fast path — to the monoid's
:class:`~repro.core.kernels.VectorArrayKernel`.
"""

from __future__ import annotations

import math
import threading
import weakref
from operator import itemgetter
from typing import Callable, Generic, Iterable, Iterator, Mapping, Sequence

from repro.algebra.base import K, TwoMonoid
from repro.db.database import Database
from repro.db.fact import Fact, Value
from repro.exceptions import AlgebraError, SchemaError
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ


def _kernel_for(monoid: TwoMonoid[K]):
    # Imported lazily: repro.core.algorithm imports this module at class-def
    # time, so a module-level import of repro.core here would be circular.
    from repro.core.kernels import kernel_for

    return kernel_for(monoid)


def _tuple_picker(
    positions: tuple[int, ...]
) -> Callable[[tuple[Value, ...]], tuple[Value, ...]]:
    """A C-level callable mapping a tuple to ``tuple(t[i] for i in positions)``.

    ``itemgetter`` already returns a tuple for two or more indices; the
    nullary/unary shapes need wrapping.  These run once per support tuple in
    the elimination hot loops, so avoiding a Python-level generator per tuple
    matters.
    """
    if len(positions) == 0:
        return lambda values: ()
    if len(positions) == 1:
        index = positions[0]
        return lambda values: (values[index],)
    return itemgetter(*positions)


class KRelation(Generic[K]):
    """A K-annotated relation over the variables of one atom.

    Tuples are stored positionally, aligned with ``atom.variables``.
    Annotations equal to ``monoid.zero`` are dropped on construction, so the
    stored mapping is exactly the support.
    """

    def __init__(
        self,
        atom: Atom,
        monoid: TwoMonoid[K],
        annotations: Mapping[tuple[Value, ...], K] | None = None,
    ):
        self.atom = atom
        self.monoid = monoid
        self._annotations: dict[tuple[Value, ...], K] = {}
        #: Mutation counter: bumped by every write so cached columnar views
        #: (see :meth:`KDatabase.columnar_relation`) can detect staleness.
        self._version = 0
        #: Optional mutation listener installed by an owning
        #: :class:`KDatabase` when invalidation hooks are registered; called
        #: (with no arguments) after every version bump.  ``None`` keeps the
        #: hot write path at a single attribute load.
        self._on_mutate: Callable[[], None] | None = None
        if annotations:
            for values, annotation in annotations.items():
                self.set(values, annotation)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def annotation(self, values: tuple[Value, ...]) -> K:
        """The annotation of *values* (``zero`` for absent tuples)."""
        return self._annotations.get(tuple(values), self.monoid.zero)

    def set(self, values: tuple[Value, ...], annotation: K) -> None:
        """Set an annotation, keeping the zero-dropping invariant."""
        values = tuple(values)
        if len(values) != self.atom.arity:
            raise SchemaError(
                f"tuple {values} has arity {len(values)}; atom {self.atom} "
                f"expects {self.atom.arity}"
            )
        self._version += 1
        if self.monoid.is_zero(annotation):
            self._annotations.pop(values, None)
        else:
            self._annotations[values] = annotation
        on_mutate = self._on_mutate
        if on_mutate is not None:
            on_mutate()

    def bulk_load(
        self,
        keys: Sequence[tuple[Value, ...]],
        annotations: Sequence[K],
    ) -> None:
        """Load aligned ``(tuple, annotation)`` batches in one kernel pass.

        Semantically equivalent to calling :meth:`set` once per pair — later
        occurrences of a key win, ⊕-identity annotations drop the key — but
        the support dict is produced by the monoid kernel's
        :meth:`~repro.core.kernels.MonoidKernel.annotate_support` in one
        ``dict`` constructor call instead of a per-tuple ``set`` dispatch.
        This is the hot path of the bulk ψ-annotation build
        (:meth:`KDatabase.bulk_annotate`); *keys* must already be tuples
        (e.g. :attr:`~repro.db.fact.Fact.values`).
        """
        if len(keys) != len(annotations):
            raise SchemaError(
                f"bulk_load got {len(keys)} tuples but "
                f"{len(annotations)} annotations"
            )
        arity = self.atom.arity
        bad = next((values for values in keys if len(values) != arity), None)
        if bad is not None:
            raise SchemaError(
                f"tuple {bad} has arity {len(bad)}; atom {self.atom} "
                f"expects {arity}"
            )
        self._version += 1
        if not self._annotations:
            self._annotations = _kernel_for(self.monoid).annotate_support(
                keys, annotations
            )
        else:
            # Merging into existing support: a zero-annotated key in the
            # batch must still delete any earlier entry, so replay with set
            # semantics.
            annotations_dict = self._annotations
            is_zero = self.monoid.is_zero
            for values, annotation in dict(zip(keys, annotations)).items():
                if is_zero(annotation):
                    annotations_dict.pop(values, None)
                else:
                    annotations_dict[values] = annotation
        on_mutate = self._on_mutate
        if on_mutate is not None:
            on_mutate()

    def copy(self) -> "KRelation[K]":
        """An independent copy (same atom/monoid, cloned support dict)."""
        clone = KRelation(self.atom, self.monoid)
        clone._annotations = dict(self._annotations)
        return clone

    def support(self) -> frozenset[tuple[Value, ...]]:
        """The tuples with non-zero annotation (Definition 6.5)."""
        return frozenset(self._annotations)

    def items(self) -> Iterator[tuple[tuple[Value, ...], K]]:
        return iter(self._annotations.items())

    def __len__(self) -> int:
        """The *size* of the relation: its support cardinality (Def. 6.5)."""
        return len(self._annotations)

    def __repr__(self) -> str:
        return f"KRelation({self.atom}, |support|={len(self)})"

    # ------------------------------------------------------------------
    # The two elimination operations of Algorithm 1
    # ------------------------------------------------------------------
    def project_out(self, variable: Variable, target: Atom) -> "KRelation[K]":
        """Rule 1 (line 4): ``R'(x') = ⊕_y R(x', y)``.

        Groups the support by the remaining positions, then ⊕-folds all the
        groups in one batched kernel call.  Tuples outside the support
        contribute the ⊕-identity and are skipped.
        """
        if variable not in self.atom.variable_set:
            raise AlgebraError(f"{variable} does not occur in {self.atom}")
        keep_positions = tuple(
            i for i, v in enumerate(self.atom.variables) if v != variable
        )
        pick = _tuple_picker(keep_positions)
        monoid = self.monoid
        groups: dict[tuple[Value, ...], list[K]] = {}
        for values, annotation in self._annotations.items():
            key = pick(values)
            members = groups.get(key)
            if members is None:
                groups[key] = [annotation]
            else:
                members.append(annotation)
        folded = _kernel_for(monoid).fold_add(list(groups.values()))
        result = KRelation(target, monoid)
        annotations = result._annotations
        is_zero = monoid.is_zero
        for key, annotation in zip(groups, folded):
            if not is_zero(annotation):
                annotations[key] = annotation
        return result

    def merge(self, other: "KRelation[K]", target: Atom) -> "KRelation[K]":
        """Rule 2 (line 7): ``R'(x) = R1(x) ⊗ R2(x)``.

        Evaluates the union of the two supports (see module docstring for why
        the union — not the intersection — is required in general), or just
        this relation's support when the monoid annihilates by zero and the
        other side's missing tuples would zero out anyway.  The aligned
        annotation pairs are collected first and ⊗-multiplied in one batched
        kernel call; when a source atom already lists the target's variables
        in order, its tuples are used as keys directly with no re-tupling.
        """
        if self.atom.variable_set != other.atom.variable_set:
            raise AlgebraError(
                f"cannot merge {self.atom} with {other.atom}: "
                "different variable sets"
            )
        monoid = self.monoid
        if monoid is not other.monoid:
            raise AlgebraError("cannot merge relations over different monoids")
        # Positional alignment: both sides' tuples reordered to target's
        # order.  The identity permutation is skipped entirely.
        if other.atom.variables == target.variables:
            other_by_key: Mapping[tuple[Value, ...], K] = other._annotations
        else:
            align_other = _tuple_picker(
                tuple(other.atom.variables.index(v) for v in target.variables)
            )
            other_by_key = {
                align_other(values): annotation
                for values, annotation in other.items()
            }
        self_identity = self.atom.variables == target.variables
        align_self = (
            None
            if self_identity
            else _tuple_picker(
                tuple(self.atom.variables.index(v) for v in target.variables)
            )
        )
        zero = monoid.zero
        keys: list[tuple[Value, ...]] = []
        lefts: list[K] = []
        rights: list[K] = []
        for values, annotation in self._annotations.items():
            key = values if self_identity else align_self(values)
            keys.append(key)
            lefts.append(annotation)
            rights.append(other_by_key.get(key, zero))
        if not monoid.annihilates:
            present = (
                self._annotations if self_identity else frozenset(keys)
            )
            for key, other_annotation in other_by_key.items():
                if key not in present:
                    keys.append(key)
                    lefts.append(zero)
                    rights.append(other_annotation)
        products = _kernel_for(monoid).mul_aligned(lefts, rights)
        result = KRelation(target, monoid)
        annotations = result._annotations
        is_zero = monoid.is_zero
        for key, product in zip(keys, products):
            if not is_zero(product):
                annotations[key] = product
        return result

    def absorb(self, smaller: "KRelation[K]", target: Atom) -> "KRelation[K]":
        """Semi-join-style merge of an atom over a variable *subset*.

        ``R'(y) = self(y) ⊗ smaller(y|X)`` where ``X ⊂ Y``.  Used only by the
        free-variable engine (:mod:`repro.core.grouped`) to fold an atom whose
        remaining variables are all free into a superset atom.  Each tuple of
        *smaller* may annotate many output tuples, so this is sound only when
        no later ⊕ ever folds two outputs sharing a *smaller* tuple — the
        grouped engine guarantees that by never projecting free variables —
        and only for monoids with annihilation-by-zero (otherwise tuples
        absent from this relation but whose projection hits *smaller* would
        need non-zero annotations over an unbounded domain).
        """
        monoid = self.monoid
        if monoid is not smaller.monoid:
            raise AlgebraError("cannot absorb a relation over a different monoid")
        if not monoid.annihilates:
            raise AlgebraError(
                f"absorb requires annihilation-by-zero; {monoid.name} lacks it"
            )
        if not smaller.atom.variable_set < self.atom.variable_set:
            raise AlgebraError(
                f"{smaller.atom} is not over a strict variable subset of {self.atom}"
            )
        if target.variable_set != self.atom.variable_set:
            raise AlgebraError(
                f"target {target} must keep the variable set of {self.atom}"
            )
        self_identity = self.atom.variables == target.variables
        align_self = (
            None
            if self_identity
            else _tuple_picker(
                tuple(self.atom.variables.index(v) for v in target.variables)
            )
        )
        project_small = _tuple_picker(
            tuple(target.variables.index(v) for v in smaller.atom.variables)
        )
        smaller_annotations = smaller._annotations
        zero = monoid.zero
        keys: list[tuple[Value, ...]] = []
        lefts: list[K] = []
        rights: list[K] = []
        for values, annotation in self._annotations.items():
            key = values if self_identity else align_self(values)
            projected = project_small(key)
            keys.append(key)
            lefts.append(annotation)
            rights.append(smaller_annotations.get(projected, zero))
        products = _kernel_for(monoid).mul_aligned(lefts, rights)
        result = KRelation(target, monoid)
        annotations = result._annotations
        is_zero = monoid.is_zero
        for key, product in zip(keys, products):
            if not is_zero(product):
                annotations[key] = product
        return result


class _ValueInterner:
    """A bijective value ↔ int64-code dictionary shared by one database.

    Codes are assigned in first-seen order, so equal domain values (under
    Python ``==``/``hash`` — the same notion the dict layout keys on) get
    equal codes **across relations**, which is what lets the columnar merge
    compare keys by integer comparison alone.
    """

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict = {}
        self._values: list = []

    def __len__(self) -> int:
        return len(self._values)

    def encode_column(self, np, values: Iterable[Value], count: int):
        """One int64 code array for *count* domain values.

        The single remaining per-tuple Python loop of the columnar tier: it
        runs once per relation materialization (cached across executions),
        not once per plan step.
        """
        codes = self._codes
        interned = self._values
        out = np.empty(count, dtype=np.int64)
        index = 0
        for value in values:
            code = codes.get(value)
            if code is None:
                code = len(interned)
                codes[value] = code
                interned.append(value)
            out[index] = code
            index += 1
        return out

    def decode(self, code: int) -> Value:
        return self._values[code]


class ColumnarKRelation(Generic[K]):
    """Array-backed view of a :class:`KRelation`: the columnar tier's layout.

    Support tuples live as parallel int64 key columns (one per atom
    position, dictionary-encoded through the database's
    :class:`_ValueInterner`) plus one numpy annotation column typed by the
    monoid's :class:`~repro.core.kernels.ArrayKernel`.  The three
    elimination operations mirror :class:`KRelation`'s semantics exactly —
    same zero-dropping, same union-vs-intersection Rule 2 discipline — but
    run their grouping, alignment and arithmetic entirely inside numpy.
    """

    __slots__ = (
        "atom", "kernel", "columns", "annotations", "interner", "_sort_cache"
    )

    def __init__(
        self, atom, kernel, columns, annotations, interner, sort_cache=None
    ):
        self.atom = atom
        self.kernel = kernel
        self.columns = columns
        self.annotations = annotations
        self.interner = interner
        # Lexsort memo for Rule 1 over *this* view's key columns, keyed by
        # the kept-position tuple: ``keep → (order, group starts)``.  Only
        # cached base-relation views carry a dict (set by the database-level
        # builders); single-use intermediates keep ``None`` and sort
        # directly.  Stacked fused views share their base view's dict, so
        # the sort is computed once per relation version across serial *and*
        # fused executions.  Entries depend only on the (immutable) key
        # columns, so concurrent readers may at worst duplicate a sort.
        self._sort_cache = sort_cache

    @classmethod
    def from_relation(
        cls, relation: KRelation[K], kernel, interner: _ValueInterner
    ) -> "ColumnarKRelation[K]":
        """Materialize the dict layout (may raise ``OverflowError`` for
        annotations outside the kernel dtype's range — callers fall back to
        the batched tier)."""
        np = kernel.np
        annotations = relation._annotations
        count = len(annotations)
        keys = annotations.keys()
        columns = tuple(
            interner.encode_column(
                np, (key[position] for key in keys), count
            )
            for position in range(relation.atom.arity)
        )
        packed = kernel.to_array(list(annotations.values()))
        return cls(
            relation.atom, kernel, columns, packed, interner, sort_cache={}
        )

    def __len__(self) -> int:
        return int(self.annotations.shape[0])

    def __repr__(self) -> str:
        return f"ColumnarKRelation({self.atom}, |support|={len(self)})"

    def to_krelation(self) -> KRelation[K]:
        """Decode back to the dict layout (used for final/grouped outputs)."""
        result = KRelation(self.atom, self.kernel.monoid)
        decode = self.interner._values
        columns = [column.tolist() for column in self.columns]
        annotations = self.kernel.to_scalars(self.annotations)
        support = result._annotations
        for index, annotation in enumerate(annotations):
            key = tuple(decode[column[index]] for column in columns)
            support[key] = annotation
        return result

    def nullary_annotation(self) -> K:
        """The annotation of ``()`` — the terminal read of Algorithm 1."""
        if self.atom.arity != 0:
            raise AlgebraError(
                f"{self.atom} is not nullary; cannot read the () annotation"
            )
        if len(self) == 0:
            return self.kernel.monoid.zero
        return self.kernel.to_scalar(self.annotations[0])

    # ------------------------------------------------------------------
    # Key plumbing
    # ------------------------------------------------------------------
    def _aligned_columns(self, target: Atom):
        """This relation's key columns reordered to *target*'s variables."""
        if self.atom.variables == target.variables:
            return self.columns
        variables = self.atom.variables
        return tuple(
            self.columns[variables.index(v)] for v in target.variables
        )

    # ------------------------------------------------------------------
    # The elimination operations, columnar
    # ------------------------------------------------------------------
    def project_out(
        self, variable: Variable, target: Atom
    ) -> "ColumnarKRelation[K]":
        """Rule 1: sort by the surviving columns, ⊕-reduce each segment."""
        if variable not in self.atom.variable_set:
            raise AlgebraError(f"{variable} does not occur in {self.atom}")
        kernel = self.kernel
        np = kernel.np
        keep = tuple(
            i for i, v in enumerate(self.atom.variables) if v != variable
        )
        n = len(self)
        columns = tuple(self.columns[i] for i in keep)
        if n == 0:
            return type(self)(
                target, kernel, columns, self.annotations, self.interner
            )
        if not columns:
            # Projecting to the nullary atom: one group, one fold.
            starts = np.zeros(1, dtype=np.intp)
            folded = kernel.fold_groups(self.annotations, starts)
            keep_mask = ~kernel.zero_mask(folded)
            return type(self)(
                target, kernel, (), folded[keep_mask], self.interner
            )
        cache = self._sort_cache
        cached = None if cache is None else cache.get(keep)
        if cached is None:
            order = np.lexsort(columns[::-1])
            sorted_columns = tuple(column[order] for column in columns)
            boundary = np.zeros(n, dtype=bool)
            boundary[0] = True
            for column in sorted_columns:
                boundary[1:] |= column[1:] != column[:-1]
            starts = np.flatnonzero(boundary)
            if cache is not None:
                cache[keep] = (order, starts)
        else:
            order, starts = cached
        folded = kernel.fold_groups(self.annotations[order], starts)
        group_rows = order[starts]
        out_columns = tuple(column[group_rows] for column in columns)
        folded, out_columns = _drop_zeros(kernel, folded, out_columns)
        return type(self)(
            target, kernel, out_columns, folded, self.interner
        )

    def merge(
        self, other: "ColumnarKRelation[K]", target: Atom
    ) -> "ColumnarKRelation[K]":
        """Rule 2: sorted-key alignment, then one elementwise ⊗.

        Annihilating monoids intersect the supports (``searchsorted`` of
        this side's composite ids in the other side's sorted ids); the
        general 2-monoid case walks the support *union* — matched pairs get
        ``a ⊗ b``, one-sided tuples ``a ⊗ 0`` / ``0 ⊗ b``, exactly like the
        dict layout.
        """
        if self.atom.variable_set != other.atom.variable_set:
            raise AlgebraError(
                f"cannot merge {self.atom} with {other.atom}: "
                "different variable sets"
            )
        kernel = self.kernel
        monoid = kernel.monoid
        if monoid is not other.kernel.monoid:
            raise AlgebraError("cannot merge relations over different monoids")
        np = kernel.np
        self_columns = self._aligned_columns(target)
        other_columns = other._aligned_columns(target)
        n_self, n_other = len(self), len(other)
        self_ids, other_ids = _paired_ids(
            np, self_columns, other_columns, n_self, n_other,
            len(self.interner),
        )
        if monoid.annihilates:
            # Intersection: one-sided tuples would ⊗-annihilate anyway.
            # Orient the lookup so the argsort runs over the SMALLER side
            # and the larger side only pays a searchsorted probe.
            if n_self <= n_other:
                found, matched_rows = _sorted_lookup(np, other_ids, self_ids)
                left = self.annotations[matched_rows[found]]
                right = other.annotations[found]
                matched_columns = other_columns
            else:
                found, matched_rows = _sorted_lookup(np, self_ids, other_ids)
                left = self.annotations[found]
                right = other.annotations[matched_rows[found]]
                matched_columns = self_columns
            products = kernel.mul_arrays(left, right)
            out_columns = tuple(
                column[found] for column in matched_columns
            )
        else:
            found, matched_rows = _sorted_lookup(np, self_ids, other_ids)
            # Union: self rows against matched-or-zero, then other-only rows
            # against zero (a ⊗ 0 need not be 0 in a general 2-monoid).
            zero_value = monoid.zero
            if n_other:
                matched_annotations = other.annotations[matched_rows]
            else:
                matched_annotations = kernel.to_array([zero_value] * n_self)
            right = kernel.where_rows(found, matched_annotations)
            products_self = kernel.mul_arrays(self.annotations, right)
            other_only = np.ones(n_other, dtype=bool)
            other_only[matched_rows[found]] = False
            only_annotations = other.annotations[other_only]
            zeros = kernel.to_array([zero_value] * int(other_only.sum()))
            products_other = kernel.mul_arrays(zeros, only_annotations)
            products = kernel.concat_rows(products_self, products_other)
            out_columns = tuple(
                np.concatenate([mine, theirs[other_only]])
                for mine, theirs in zip(self_columns, other_columns)
            )
        products, out_columns = _drop_zeros(kernel, products, out_columns)
        return type(self)(
            target, kernel, out_columns, products, self.interner
        )

    def absorb(
        self, smaller: "ColumnarKRelation[K]", target: Atom
    ) -> "ColumnarKRelation[K]":
        """Columnar semi-join merge over a variable subset (grouped engine).

        Same soundness conditions as :meth:`KRelation.absorb` — in
        particular annihilation-by-zero, which is what licenses keeping only
        the matched rows.
        """
        kernel = self.kernel
        monoid = kernel.monoid
        if monoid is not smaller.kernel.monoid:
            raise AlgebraError("cannot absorb a relation over a different monoid")
        if not monoid.annihilates:
            raise AlgebraError(
                f"absorb requires annihilation-by-zero; {monoid.name} lacks it"
            )
        if not smaller.atom.variable_set < self.atom.variable_set:
            raise AlgebraError(
                f"{smaller.atom} is not over a strict variable subset of {self.atom}"
            )
        if target.variable_set != self.atom.variable_set:
            raise AlgebraError(
                f"target {target} must keep the variable set of {self.atom}"
            )
        np = kernel.np
        self_columns = self._aligned_columns(target)
        projected = tuple(
            self_columns[target.variables.index(v)]
            for v in smaller.atom.variables
        )
        n_self, n_small = len(self), len(smaller)
        self_ids, small_ids = _paired_ids(
            np, projected, smaller.columns, n_self, n_small,
            len(self.interner),
        )
        found, matched_rows = _sorted_lookup(np, self_ids, small_ids)
        left = self.annotations[found]
        right = smaller.annotations[matched_rows[found]]
        products = kernel.mul_arrays(left, right)
        out_columns = tuple(column[found] for column in self_columns)
        products, out_columns = _drop_zeros(kernel, products, out_columns)
        return type(self)(
            target, kernel, out_columns, products, self.interner
        )


class PackedColumnarKRelation(ColumnarKRelation[K]):
    """Columnar view whose annotations are *packed vector rows*.

    The layout for vector carriers (bag-set multiplicity profiles, Shapley
    ``#Sat`` polynomials): the annotation array is 2-D — one row per support
    tuple, one column per vector slot, trimmed to the widest slot in use
    (the Shapley carrier packs its false/true slices along a middle axis,
    shape ``(n, 2, w)``).  Every elimination operation is inherited: the
    generic code only indexes, filters and concatenates whole rows through
    the kernel's layout hooks, and the row arithmetic — batched
    sliding-window convolutions with a guarded int64 fast path and an exact
    big-int fallback — lives in the monoid's
    :class:`~repro.core.kernels.VectorArrayKernel`.
    """

    __slots__ = ()

    @property
    def packed_width(self) -> int:
        """Slots stored per vector row (≤ the monoid's truncation length)."""
        return int(self.annotations.shape[-1])

    def __repr__(self) -> str:
        return (
            f"PackedColumnarKRelation({self.atom}, |support|={len(self)}, "
            f"width={self.packed_width}, dtype={self.annotations.dtype})"
        )


def columnar_relation_class(kernel) -> type:
    """The columnar-view class serving *kernel*'s annotation layout."""
    return (
        PackedColumnarKRelation
        if getattr(kernel, "packed_rows", False)
        else ColumnarKRelation
    )


def _drop_zeros(kernel, annotations, columns):
    """Filter ⊕-identity annotations out of an op result (the support
    invariant), shared by all three columnar elimination operations."""
    zero = kernel.zero_mask(annotations)
    if not zero.any():
        return annotations, columns
    keep = ~zero
    return annotations[keep], tuple(column[keep] for column in columns)


def _paired_ids(np, left_columns, right_columns, n_left, n_right, radix):
    """Composite int64 ids for two aligned column sets, comparable across
    the pair (equal composite keys ⇔ equal ids).

    Radix-packs the per-position codes when the interner is small enough to
    fit int64; otherwise falls back to ``np.unique(axis=0)`` inverse codes
    over the *stacked* rows of both sides (stacking is what keeps the
    fallback's codes consistent between the two relations).
    """
    arity = len(left_columns)
    if arity == 0:
        return (
            np.zeros(n_left, dtype=np.int64),
            np.zeros(n_right, dtype=np.int64),
        )
    if arity == 1:
        return left_columns[0], right_columns[0]
    packed = _pack_ids(np, left_columns, radix)
    if packed is not None:
        return packed, _pack_ids(np, right_columns, radix)
    stacked = np.concatenate(
        [np.stack(left_columns, axis=1), np.stack(right_columns, axis=1)]
    )
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1).astype(np.int64, copy=False)
    return inverse[:n_left], inverse[n_left:]


def _sorted_lookup(np, probe_ids, build_ids):
    """Sort-merge probe: for each probe id, whether it occurs in *build_ids*
    and at which (original) row.

    Returns ``(found, rows)`` — a boolean mask over the probe side and an
    index array into the build side (meaningful where ``found``).  Build-side
    ids are distinct (relation supports are keyed), so one ``argsort`` + one
    ``searchsorted`` suffice.
    """
    n_build = build_ids.shape[0]
    if n_build == 0:
        return (
            np.zeros(probe_ids.shape[0], dtype=bool),
            np.zeros(probe_ids.shape[0], dtype=np.intp),
        )
    order = np.argsort(build_ids, kind="stable")
    sorted_ids = build_ids[order]
    positions = np.minimum(
        np.searchsorted(sorted_ids, probe_ids), n_build - 1
    )
    found = sorted_ids[positions] == probe_ids
    return found, order[positions]


def _pack_ids(np, columns, radix: int):
    """Radix-pack per-position code columns into one int64 id per row.

    Order- and equality-preserving for any relations sharing the interner
    the codes came from.  Returns ``None`` when ``radix**len(columns)``
    could overflow int64 (callers fall back to unique-inverse codes).
    """
    radix = max(radix, 1)
    if len(columns) * math.log2(radix) >= 62:
        return None
    packed = columns[0].astype(np.int64, copy=True)
    for column in columns[1:]:
        packed *= radix
        packed += column
    return packed


class ShardExport:
    """A shared-memory snapshot of every columnar view, split by key range.

    The storage side of the sharded tier (``kernel_mode="sharded"``): each
    relation's columnar view is re-sorted by the interned code of the shard
    *root* variable (the variable shared by every atom — see
    :func:`repro.core.plan.shard_root`), the sorted key/annotation arrays
    are copied once into ``multiprocessing.shared_memory`` blocks, and the
    shard boundaries become per-relation ``[lo, hi)`` row ranges computed
    with one ``searchsorted`` per relation.  Workers attach the named
    blocks and build zero-copy array views of their range; object-dtype
    annotation arrays (exact big-int carriers) and empty arrays cannot live
    in shared memory and fall back to pickled per-shard chunks.

    Boundaries are code *quantiles* of the concatenated root columns, so
    balanced databases split evenly while skewed ones (all rows one key)
    degenerate gracefully — duplicate cut codes simply leave the middle
    shards empty, and every row still lands in exactly one shard.

    The parent owns the blocks: :meth:`close` unlinks them, and the
    :class:`KDatabase` cache closes a stale export before building its
    replacement.
    """

    def __init__(self, np, shard_count: int):
        self.np = np
        self.shard_count = shard_count
        self.interner_len = 0
        self.relations: list[dict] = []
        self.total_rows = 0
        self.max_width = 1
        self._blocks: list = []
        self._closed = False

    def _export_array(self, array):
        """One picklable transport for *array*: a named shared-memory block
        (``("shm", name, dtype, shape)``) or the parent-side array itself
        (``("data", array)`` — object dtype and empty arrays)."""
        np = self.np
        array = np.ascontiguousarray(array)
        if array.dtype == object or array.nbytes == 0:
            return ("data", array)
        from multiprocessing import shared_memory

        block = shared_memory.SharedMemory(create=True, size=array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf)
        view[:] = array
        self._blocks.append(block)
        return ("shm", block.name, array.dtype.str, array.shape)

    def add_relation(self, atom, columns, annotations, offsets) -> None:
        """Record one re-sorted relation (*offsets* has shard_count+1 rows)."""
        self.relations.append(
            {
                "atom": atom,
                "columns": [self._export_array(column) for column in columns],
                "annotations": self._export_array(annotations),
                "offsets": [int(offset) for offset in offsets],
            }
        )
        self.total_rows += int(annotations.shape[0])
        if annotations.ndim > 1:
            self.max_width = max(
                self.max_width, int(annotations.shape[-1])
            )

    def task_payload(self, shard: int) -> list[dict]:
        """The per-relation slice descriptors shipped to one shard task.

        Shared-memory transports pass through with their ``[lo, hi)`` range
        (the worker slices its attached view); ``("data", …)`` transports
        are sliced *here* so each shard pickles only its own chunk.
        """
        payload = []
        for entry in self.relations:
            lo = entry["offsets"][shard]
            hi = entry["offsets"][shard + 1]
            columns = [
                transport if transport[0] == "shm"
                else ("data", transport[1][lo:hi])
                for transport in entry["columns"]
            ]
            annotations = entry["annotations"]
            if annotations[0] != "shm":
                annotations = ("data", annotations[1][lo:hi])
            payload.append(
                {
                    "atom": entry["atom"],
                    "columns": columns,
                    "annotations": annotations,
                    "lo": lo,
                    "hi": hi,
                }
            )
        return payload

    def close(self) -> None:
        """Release every shared-memory block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for block in self._blocks:
            try:
                block.close()
                block.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._blocks = []


class KDatabase(Generic[K]):
    """A K-annotated database: one :class:`KRelation` per atom of a query."""

    def __init__(self, query: BCQ, monoid: TwoMonoid[K]):
        query.require_self_join_free()
        self.query = query
        self.monoid = monoid
        self._relations: dict[str, KRelation[K]] = {
            atom.relation: KRelation(atom, monoid) for atom in query.atoms
        }
        # Columnar-view cache (the array tier): one interner + one view per
        # relation, reused across plan executions until a relation mutates.
        self._interner: _ValueInterner | None = None
        self._columnar: dict[str, tuple[int, ColumnarKRelation[K]]] = {}
        self._columnar_kernel = None
        # Memoized "not columnar-representable" verdict (kernel, version
        # fingerprint): a database whose packing overflowed must not re-pay
        # the failed encode attempt on every execution.
        self._columnar_declined: tuple | None = None
        # Shared-memory shard export cache (the sharded tier):
        # (kernel, shard_count, root_positions, fingerprint) → ShardExport.
        self._shard_export: tuple | None = None
        # Protects the columnar-view cache, the decline memo and the hook
        # list: concurrent plan executions over one shared database (the
        # serving layer) materialize views lazily from worker threads.
        self._lock = threading.RLock()
        #: Version-keyed invalidation hooks: ``hook(database, name, version)``
        #: fires after any mutation of the named relation.  Installed lazily
        #: onto the relations so the unhooked write path stays free.
        self._invalidation_hooks: list[Callable[["KDatabase[K]", str, int], None]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def annotate(
        cls,
        query: BCQ,
        monoid: TwoMonoid[K],
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
        *,
        columnar: bool = False,
    ) -> "KDatabase[K]":
        """Annotate *facts* with ``annotation_of`` (the ψ of Defs. 5.10/5.15).

        Uses the bulk build path (:meth:`bulk_annotate`): facts are grouped
        per relation, ψ is computed in one batched kernel pass per group, and
        each relation's support dict is built in one constructor call —
        instead of a per-fact relation lookup and ``set`` dispatch.
        ``columnar=True`` additionally seeds the array tier's columnar views
        from the same pass (see :meth:`bulk_annotate`).
        """
        annotated = cls(query, monoid)
        annotated.bulk_annotate(facts, annotation_of, columnar=columnar)
        return annotated

    def bulk_annotate(
        self,
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
        *,
        columnar: bool = False,
    ) -> None:
        """Annotate *facts* in bulk (equivalent to per-fact :meth:`set` calls).

        Groups the facts per relation in one pass, resolves every relation
        once, then computes ψ for each group via the monoid kernel's
        :meth:`~repro.core.kernels.MonoidKernel.map_annotations` and hands the
        aligned batch to :meth:`KRelation.bulk_load`.  Raises
        :class:`~repro.exceptions.SchemaError` for facts naming a relation
        the query does not mention, exactly like the per-fact path.

        With ``columnar=True`` (sessions pass it when the engine runs the
        array tier) and a flat-carrier monoid, each relation's
        :class:`ColumnarKRelation` view is built **in the same pass, straight
        from the fact stream** — key columns encoded from the fact tuples and
        the annotation column packed from the freshly-computed ψ batch — and
        seeded into the columnar cache, instead of being re-derived later by
        a second walk over the support dict
        (:meth:`ColumnarKRelation.from_relation`).  The direct build is only
        taken when the batch maps one-to-one onto the loaded support (no
        duplicate keys, no ⊕-identity drops), which is exactly when the two
        constructions coincide; otherwise the view materializes lazily as
        before.
        """
        grouped: dict[str, list[Fact]] = {}
        for fact in facts:
            bucket = grouped.get(fact.relation)
            if bucket is None:
                grouped[fact.relation] = [fact]
            else:
                bucket.append(fact)
        # Resolve every relation before loading anything, so an unknown
        # relation fails before any partial annotation lands.
        resolved = [
            (self.relation(name), bucket) for name, bucket in grouped.items()
        ]
        kernel = _kernel_for(self.monoid)
        array_kernel = None
        if columnar:
            from repro.core.kernels import array_kernel_for

            array_kernel = array_kernel_for(self.monoid)
        for relation, bucket in resolved:
            annotations = kernel.map_annotations(annotation_of, bucket)
            keys = [fact.values for fact in bucket]
            was_empty = len(relation) == 0
            relation.bulk_load(keys, annotations)
            if (
                array_kernel is not None
                and was_empty
                and len(relation) == len(keys)
            ):
                self._seed_columnar(relation, array_kernel, keys, annotations)

    @classmethod
    def from_database(
        cls,
        query: BCQ,
        monoid: TwoMonoid[K],
        database: Database,
        annotation_of: Callable[[Fact], K] | None = None,
    ) -> "KDatabase[K]":
        """Annotate every fact of *database* (defaulting to ``monoid.one``)."""
        database.validate_against(query)
        fn = annotation_of or (lambda _fact: monoid.one)
        return cls.annotate(query, monoid, database.facts(), fn)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def relation(self, name: str) -> KRelation[K]:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no annotated relation named {name!r}") from None

    def set(self, fact: Fact, annotation: K) -> None:
        relation = self.relation(fact.relation)
        relation.set(fact.values, annotation)

    def annotation(self, fact: Fact) -> K:
        return self.relation(fact.relation).annotation(fact.values)

    def relations(self) -> Iterator[KRelation[K]]:
        return iter(self._relations.values())

    def size(self) -> int:
        """``|D|`` for annotated databases: total support size (Def. 6.5)."""
        return sum(len(relation) for relation in self._relations.values())

    # ------------------------------------------------------------------
    # Columnar views (the array execution tier)
    # ------------------------------------------------------------------
    def columnar_relation(self, name: str, kernel) -> ColumnarKRelation[K]:
        """The columnar view of one relation, cached across executions.

        *kernel* is the monoid's :class:`~repro.core.kernels.ArrayKernel`.
        Views are materialized lazily, share one :class:`_ValueInterner`
        (so merges can compare keys by integer id), and are invalidated
        per-relation by the :class:`KRelation` version counter — a session
        replaying one annotated database across many requests pays the
        dict → column conversion once per relation, not once per run.
        Thread-safe: the cache (and the shared interner) is only ever read
        or written under the database lock, so concurrent plan executions
        over one shared database materialize each view exactly once.
        """
        relation = self.relation(name)
        with self._lock:
            if self._columnar_kernel is not kernel:
                # Registry change or first use: drop views built by another
                # kernel instance (their annotation dtype may differ).
                self._columnar.clear()
                self._columnar_kernel = kernel
            if self._interner is None:
                self._interner = _ValueInterner()
            cached = self._columnar.get(name)
            if cached is not None and cached[0] == relation._version:
                return cached[1]
            view = columnar_relation_class(kernel).from_relation(
                relation, kernel, self._interner
            )
            self._columnar[name] = (relation._version, view)
            return view

    def _seed_columnar(
        self,
        relation: KRelation[K],
        kernel,
        keys: Sequence[tuple[Value, ...]],
        annotations: Sequence[K],
    ) -> None:
        """Build and cache a columnar view straight from a bulk ψ batch.

        Called by :meth:`bulk_annotate` only when the batch landed
        one-to-one in the support dict (so the dict's insertion order is the
        batch order and the two constructions agree element-for-element).
        An ``OverflowError`` from the annotation packing records the decline
        verdict, exactly like a failed lazy materialization.
        """
        np = kernel.np
        name = relation.atom.relation
        with self._lock:
            if self._columnar_kernel is not kernel:
                self._columnar.clear()
                self._columnar_kernel = kernel
            if self._interner is None:
                self._interner = _ValueInterner()
            count = len(keys)
            try:
                columns = tuple(
                    self._interner.encode_column(
                        np, (key[position] for key in keys), count
                    )
                    for position in range(relation.atom.arity)
                )
                packed = kernel.to_array(list(annotations))
            except OverflowError:
                self.decline_columnar(kernel)
                return
            view = columnar_relation_class(kernel)(
                relation.atom, kernel, columns, packed, self._interner,
                sort_cache={},
            )
            self._columnar[name] = (relation._version, view)

    def columnar_cache_info(self) -> dict[str, int]:
        """Cached-view count and interner size (tests/diagnostics)."""
        with self._lock:
            return {
                "relations": len(self._columnar),
                "interned_values": (
                    0 if self._interner is None else len(self._interner)
                ),
            }

    def _version_fingerprint(self) -> int:
        """Strictly increases with any relation mutation (version bumps)."""
        return sum(
            relation._version for relation in self._relations.values()
        )

    def columnar_declined(self, kernel) -> bool:
        """Whether a previous columnar materialization with *kernel* failed
        (``OverflowError``) and no relation has mutated since."""
        with self._lock:
            return self._columnar_declined == (
                kernel, self._version_fingerprint()
            )

    def decline_columnar(self, kernel) -> None:
        """Record a failed columnar materialization (executors call this
        after catching ``OverflowError`` so later runs skip the attempt)."""
        with self._lock:
            self._columnar_declined = (kernel, self._version_fingerprint())

    # ------------------------------------------------------------------
    # Shared-memory shard export (the sharded execution tier)
    # ------------------------------------------------------------------
    def shard_export(
        self,
        kernel,
        shard_count: int,
        root_positions: Mapping[str, int],
    ) -> ShardExport:
        """The :class:`ShardExport` of this database, cached across runs.

        *root_positions* maps each relation name to the column index of the
        shard-root variable in that relation's atom.  The export is keyed by
        (kernel, shard count, positions, version fingerprint): any relation
        mutation — or a different shard geometry — closes the stale export
        (unlinking its shared-memory blocks) and builds a fresh one.  May
        raise ``OverflowError`` exactly like :meth:`columnar_relation`;
        callers fall back through the usual decline path.
        """
        positions_key = tuple(sorted(root_positions.items()))
        with self._lock:
            fingerprint = self._version_fingerprint()
            cached = self._shard_export
            if (
                cached is not None
                and cached[0] is kernel
                and cached[1] == shard_count
                and cached[2] == positions_key
                and cached[3] == fingerprint
            ):
                return cached[4]
            views = {
                name: self.columnar_relation(name, kernel)
                for name in self._relations
            }
            np = kernel.np
            roots = {
                name: view.columns[root_positions[name]]
                for name, view in views.items()
            }
            export = ShardExport(np, shard_count)
            export.interner_len = len(self._interner)
            all_roots = [codes for codes in roots.values() if codes.shape[0]]
            if all_roots and shard_count > 1:
                merged = np.sort(np.concatenate(all_roots))
                cut_rows = (
                    np.arange(1, shard_count) * merged.shape[0]
                ) // shard_count
                cuts = merged[cut_rows]
            else:
                cuts = np.empty(0, dtype=np.int64)
            for name, view in views.items():
                root = roots[name]
                order = np.argsort(root, kind="stable")
                columns = tuple(column[order] for column in view.columns)
                annotations = view.annotations[order]
                if cuts.shape[0]:
                    inner = np.searchsorted(root[order], cuts, side="left")
                else:
                    inner = np.zeros(shard_count - 1, dtype=np.intp)
                offsets = [0, *inner.tolist(), root.shape[0]]
                export.add_relation(view.atom, columns, annotations, offsets)
            if cached is not None:
                cached[4].close()
            self._shard_export = (
                kernel, shard_count, positions_key, fingerprint, export
            )
            # Unlink the blocks when the database is collected (or at
            # interpreter exit) — close() is idempotent, so the explicit
            # replacement/teardown paths above stay correct.
            weakref.finalize(self, export.close)
            return export

    def close_shard_export(self) -> None:
        """Release the cached shard export's shared-memory blocks, if any."""
        with self._lock:
            cached = self._shard_export
            self._shard_export = None
        if cached is not None:
            cached[4].close()

    # ------------------------------------------------------------------
    # Versioned invalidation hooks (the serving layer's eviction signal)
    # ------------------------------------------------------------------
    def add_invalidation_hook(
        self, hook: Callable[["KDatabase[K]", str, int], None]
    ) -> None:
        """Register ``hook(database, relation_name, version)`` for mutations.

        The hook fires after every mutation of any relation of this database
        (per-fact :meth:`KRelation.set` and bulk loads alike), with the
        relation's post-mutation version — the same counter that keys the
        columnar-view cache and the session memo fingerprints, so hook
        consumers can evict exactly the state the mutation staled.  The
        per-relation listener is installed lazily on the first hook and
        removed with the last one, keeping the unhooked write path free.
        Hooks run on the mutating thread and must not mutate the database
        themselves.
        """
        with self._lock:
            self._invalidation_hooks.append(hook)
            if len(self._invalidation_hooks) == 1:
                for name, relation in self._relations.items():
                    relation._on_mutate = self._make_mutation_listener(
                        name, relation
                    )

    def remove_invalidation_hook(
        self, hook: Callable[["KDatabase[K]", str, int], None]
    ) -> None:
        """Unregister a hook added with :meth:`add_invalidation_hook`.

        Unknown hooks are ignored (idempotent removal, so pool teardown
        never races itself).
        """
        with self._lock:
            try:
                self._invalidation_hooks.remove(hook)
            except ValueError:
                return
            if not self._invalidation_hooks:
                for relation in self._relations.values():
                    relation._on_mutate = None

    def _make_mutation_listener(self, name: str, relation: KRelation[K]):
        def notify() -> None:
            with self._lock:
                hooks = list(self._invalidation_hooks)
            version = relation._version
            for hook in hooks:
                hook(self, name, version)

        return notify

    def relation_version(self, name: str) -> int:
        """The mutation counter of one relation (see version-keyed caches)."""
        return self.relation(name)._version

    def restore_relation_version(self, name: str, version: int) -> None:
        """Reset a relation's version after a mutate-and-restore cycle.

        For callers that flip annotations in place and restore them
        **bit-identically** (the session Shapley reduction): once the content
        is back, resetting the counter keeps every version-keyed consumer —
        columnar views, decline verdicts, memo fingerprints — truthful, so
        the transient flips do not permanently evict state derived from the
        restored content.  Any columnar view materialized from the transient
        content is dropped (its tag no longer matches the restored version).
        """
        relation = self.relation(name)
        with self._lock:
            relation._version = version
            cached = self._columnar.get(name)
            if cached is not None and cached[0] != version:
                del self._columnar[name]
