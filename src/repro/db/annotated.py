"""K-annotated relations and databases (the inputs of Algorithm 1).

A K-annotated relation formally assigns an element of the 2-monoid ``K`` to
*every* tuple in ``Dom^X``; we store only the tuples whose annotation differs
from ``K.zero`` (the *support*, Definition 6.5) plus, transiently, tuples the
algorithm computes.  Absent tuples implicitly carry ``K.zero``.

The subtle point, inherited from the weakness of 2-monoids: ``a ⊗ 0 = 0``
need **not** hold (the Shapley 2-monoid violates it).  A Rule 2 merge must
therefore evaluate every tuple in the *union* of the two supports — a tuple
present on one side only gets ``a ⊗ 0``, which can be non-zero.  Only when
the monoid declares :attr:`~repro.algebra.base.TwoMonoid.annihilates` may the
join skip one-sided tuples.

Execution strategy: the elimination operations *collect-then-batch*.  They
first gather the whole workload — ⊕-groups for Rule 1, aligned annotation
pairs for Rule 2 — and then hand it to the monoid's batched
:class:`~repro.core.kernels.MonoidKernel` in one call, instead of issuing a
dynamic ``monoid.add``/``mul`` per tuple.  The kernel registry picks a
carrier-specialized implementation when one is registered and the
always-correct scalar fallback otherwise (see :mod:`repro.core.kernels`).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Generic, Iterable, Iterator, Mapping, Sequence

from repro.algebra.base import K, TwoMonoid
from repro.db.database import Database
from repro.db.fact import Fact, Value
from repro.exceptions import AlgebraError, SchemaError
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ


def _kernel_for(monoid: TwoMonoid[K]):
    # Imported lazily: repro.core.algorithm imports this module at class-def
    # time, so a module-level import of repro.core here would be circular.
    from repro.core.kernels import kernel_for

    return kernel_for(monoid)


def _tuple_picker(
    positions: tuple[int, ...]
) -> Callable[[tuple[Value, ...]], tuple[Value, ...]]:
    """A C-level callable mapping a tuple to ``tuple(t[i] for i in positions)``.

    ``itemgetter`` already returns a tuple for two or more indices; the
    nullary/unary shapes need wrapping.  These run once per support tuple in
    the elimination hot loops, so avoiding a Python-level generator per tuple
    matters.
    """
    if len(positions) == 0:
        return lambda values: ()
    if len(positions) == 1:
        index = positions[0]
        return lambda values: (values[index],)
    return itemgetter(*positions)


class KRelation(Generic[K]):
    """A K-annotated relation over the variables of one atom.

    Tuples are stored positionally, aligned with ``atom.variables``.
    Annotations equal to ``monoid.zero`` are dropped on construction, so the
    stored mapping is exactly the support.
    """

    def __init__(
        self,
        atom: Atom,
        monoid: TwoMonoid[K],
        annotations: Mapping[tuple[Value, ...], K] | None = None,
    ):
        self.atom = atom
        self.monoid = monoid
        self._annotations: dict[tuple[Value, ...], K] = {}
        if annotations:
            for values, annotation in annotations.items():
                self.set(values, annotation)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def annotation(self, values: tuple[Value, ...]) -> K:
        """The annotation of *values* (``zero`` for absent tuples)."""
        return self._annotations.get(tuple(values), self.monoid.zero)

    def set(self, values: tuple[Value, ...], annotation: K) -> None:
        """Set an annotation, keeping the zero-dropping invariant."""
        values = tuple(values)
        if len(values) != self.atom.arity:
            raise SchemaError(
                f"tuple {values} has arity {len(values)}; atom {self.atom} "
                f"expects {self.atom.arity}"
            )
        if self.monoid.is_zero(annotation):
            self._annotations.pop(values, None)
        else:
            self._annotations[values] = annotation

    def bulk_load(
        self,
        keys: Sequence[tuple[Value, ...]],
        annotations: Sequence[K],
    ) -> None:
        """Load aligned ``(tuple, annotation)`` batches in one kernel pass.

        Semantically equivalent to calling :meth:`set` once per pair — later
        occurrences of a key win, ⊕-identity annotations drop the key — but
        the support dict is produced by the monoid kernel's
        :meth:`~repro.core.kernels.MonoidKernel.annotate_support` in one
        ``dict`` constructor call instead of a per-tuple ``set`` dispatch.
        This is the hot path of the bulk ψ-annotation build
        (:meth:`KDatabase.bulk_annotate`); *keys* must already be tuples
        (e.g. :attr:`~repro.db.fact.Fact.values`).
        """
        if len(keys) != len(annotations):
            raise SchemaError(
                f"bulk_load got {len(keys)} tuples but "
                f"{len(annotations)} annotations"
            )
        arity = self.atom.arity
        bad = next((values for values in keys if len(values) != arity), None)
        if bad is not None:
            raise SchemaError(
                f"tuple {bad} has arity {len(bad)}; atom {self.atom} "
                f"expects {arity}"
            )
        if not self._annotations:
            self._annotations = _kernel_for(self.monoid).annotate_support(
                keys, annotations
            )
            return
        # Merging into existing support: a zero-annotated key in the batch
        # must still delete any earlier entry, so replay with set semantics.
        annotations_dict = self._annotations
        is_zero = self.monoid.is_zero
        for values, annotation in dict(zip(keys, annotations)).items():
            if is_zero(annotation):
                annotations_dict.pop(values, None)
            else:
                annotations_dict[values] = annotation

    def copy(self) -> "KRelation[K]":
        """An independent copy (same atom/monoid, cloned support dict)."""
        clone = KRelation(self.atom, self.monoid)
        clone._annotations = dict(self._annotations)
        return clone

    def support(self) -> frozenset[tuple[Value, ...]]:
        """The tuples with non-zero annotation (Definition 6.5)."""
        return frozenset(self._annotations)

    def items(self) -> Iterator[tuple[tuple[Value, ...], K]]:
        return iter(self._annotations.items())

    def __len__(self) -> int:
        """The *size* of the relation: its support cardinality (Def. 6.5)."""
        return len(self._annotations)

    def __repr__(self) -> str:
        return f"KRelation({self.atom}, |support|={len(self)})"

    # ------------------------------------------------------------------
    # The two elimination operations of Algorithm 1
    # ------------------------------------------------------------------
    def project_out(self, variable: Variable, target: Atom) -> "KRelation[K]":
        """Rule 1 (line 4): ``R'(x') = ⊕_y R(x', y)``.

        Groups the support by the remaining positions, then ⊕-folds all the
        groups in one batched kernel call.  Tuples outside the support
        contribute the ⊕-identity and are skipped.
        """
        if variable not in self.atom.variable_set:
            raise AlgebraError(f"{variable} does not occur in {self.atom}")
        keep_positions = tuple(
            i for i, v in enumerate(self.atom.variables) if v != variable
        )
        pick = _tuple_picker(keep_positions)
        monoid = self.monoid
        groups: dict[tuple[Value, ...], list[K]] = {}
        for values, annotation in self._annotations.items():
            key = pick(values)
            members = groups.get(key)
            if members is None:
                groups[key] = [annotation]
            else:
                members.append(annotation)
        folded = _kernel_for(monoid).fold_add(list(groups.values()))
        result = KRelation(target, monoid)
        annotations = result._annotations
        is_zero = monoid.is_zero
        for key, annotation in zip(groups, folded):
            if not is_zero(annotation):
                annotations[key] = annotation
        return result

    def merge(self, other: "KRelation[K]", target: Atom) -> "KRelation[K]":
        """Rule 2 (line 7): ``R'(x) = R1(x) ⊗ R2(x)``.

        Evaluates the union of the two supports (see module docstring for why
        the union — not the intersection — is required in general), or just
        this relation's support when the monoid annihilates by zero and the
        other side's missing tuples would zero out anyway.  The aligned
        annotation pairs are collected first and ⊗-multiplied in one batched
        kernel call; when a source atom already lists the target's variables
        in order, its tuples are used as keys directly with no re-tupling.
        """
        if self.atom.variable_set != other.atom.variable_set:
            raise AlgebraError(
                f"cannot merge {self.atom} with {other.atom}: "
                "different variable sets"
            )
        monoid = self.monoid
        if monoid is not other.monoid:
            raise AlgebraError("cannot merge relations over different monoids")
        # Positional alignment: both sides' tuples reordered to target's
        # order.  The identity permutation is skipped entirely.
        if other.atom.variables == target.variables:
            other_by_key: Mapping[tuple[Value, ...], K] = other._annotations
        else:
            align_other = _tuple_picker(
                tuple(other.atom.variables.index(v) for v in target.variables)
            )
            other_by_key = {
                align_other(values): annotation
                for values, annotation in other.items()
            }
        self_identity = self.atom.variables == target.variables
        align_self = (
            None
            if self_identity
            else _tuple_picker(
                tuple(self.atom.variables.index(v) for v in target.variables)
            )
        )
        zero = monoid.zero
        keys: list[tuple[Value, ...]] = []
        lefts: list[K] = []
        rights: list[K] = []
        for values, annotation in self._annotations.items():
            key = values if self_identity else align_self(values)
            keys.append(key)
            lefts.append(annotation)
            rights.append(other_by_key.get(key, zero))
        if not monoid.annihilates:
            present = (
                self._annotations if self_identity else frozenset(keys)
            )
            for key, other_annotation in other_by_key.items():
                if key not in present:
                    keys.append(key)
                    lefts.append(zero)
                    rights.append(other_annotation)
        products = _kernel_for(monoid).mul_aligned(lefts, rights)
        result = KRelation(target, monoid)
        annotations = result._annotations
        is_zero = monoid.is_zero
        for key, product in zip(keys, products):
            if not is_zero(product):
                annotations[key] = product
        return result

    def absorb(self, smaller: "KRelation[K]", target: Atom) -> "KRelation[K]":
        """Semi-join-style merge of an atom over a variable *subset*.

        ``R'(y) = self(y) ⊗ smaller(y|X)`` where ``X ⊂ Y``.  Used only by the
        free-variable engine (:mod:`repro.core.grouped`) to fold an atom whose
        remaining variables are all free into a superset atom.  Each tuple of
        *smaller* may annotate many output tuples, so this is sound only when
        no later ⊕ ever folds two outputs sharing a *smaller* tuple — the
        grouped engine guarantees that by never projecting free variables —
        and only for monoids with annihilation-by-zero (otherwise tuples
        absent from this relation but whose projection hits *smaller* would
        need non-zero annotations over an unbounded domain).
        """
        monoid = self.monoid
        if monoid is not smaller.monoid:
            raise AlgebraError("cannot absorb a relation over a different monoid")
        if not monoid.annihilates:
            raise AlgebraError(
                f"absorb requires annihilation-by-zero; {monoid.name} lacks it"
            )
        if not smaller.atom.variable_set < self.atom.variable_set:
            raise AlgebraError(
                f"{smaller.atom} is not over a strict variable subset of {self.atom}"
            )
        if target.variable_set != self.atom.variable_set:
            raise AlgebraError(
                f"target {target} must keep the variable set of {self.atom}"
            )
        self_identity = self.atom.variables == target.variables
        align_self = (
            None
            if self_identity
            else _tuple_picker(
                tuple(self.atom.variables.index(v) for v in target.variables)
            )
        )
        project_small = _tuple_picker(
            tuple(target.variables.index(v) for v in smaller.atom.variables)
        )
        smaller_annotations = smaller._annotations
        zero = monoid.zero
        keys: list[tuple[Value, ...]] = []
        lefts: list[K] = []
        rights: list[K] = []
        for values, annotation in self._annotations.items():
            key = values if self_identity else align_self(values)
            projected = project_small(key)
            keys.append(key)
            lefts.append(annotation)
            rights.append(smaller_annotations.get(projected, zero))
        products = _kernel_for(monoid).mul_aligned(lefts, rights)
        result = KRelation(target, monoid)
        annotations = result._annotations
        is_zero = monoid.is_zero
        for key, product in zip(keys, products):
            if not is_zero(product):
                annotations[key] = product
        return result


class KDatabase(Generic[K]):
    """A K-annotated database: one :class:`KRelation` per atom of a query."""

    def __init__(self, query: BCQ, monoid: TwoMonoid[K]):
        query.require_self_join_free()
        self.query = query
        self.monoid = monoid
        self._relations: dict[str, KRelation[K]] = {
            atom.relation: KRelation(atom, monoid) for atom in query.atoms
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def annotate(
        cls,
        query: BCQ,
        monoid: TwoMonoid[K],
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
    ) -> "KDatabase[K]":
        """Annotate *facts* with ``annotation_of`` (the ψ of Defs. 5.10/5.15).

        Uses the bulk build path (:meth:`bulk_annotate`): facts are grouped
        per relation, ψ is computed in one batched kernel pass per group, and
        each relation's support dict is built in one constructor call —
        instead of a per-fact relation lookup and ``set`` dispatch.
        """
        annotated = cls(query, monoid)
        annotated.bulk_annotate(facts, annotation_of)
        return annotated

    def bulk_annotate(
        self,
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
    ) -> None:
        """Annotate *facts* in bulk (equivalent to per-fact :meth:`set` calls).

        Groups the facts per relation in one pass, resolves every relation
        once, then computes ψ for each group via the monoid kernel's
        :meth:`~repro.core.kernels.MonoidKernel.map_annotations` and hands the
        aligned batch to :meth:`KRelation.bulk_load`.  Raises
        :class:`~repro.exceptions.SchemaError` for facts naming a relation
        the query does not mention, exactly like the per-fact path.
        """
        grouped: dict[str, list[Fact]] = {}
        for fact in facts:
            bucket = grouped.get(fact.relation)
            if bucket is None:
                grouped[fact.relation] = [fact]
            else:
                bucket.append(fact)
        # Resolve every relation before loading anything, so an unknown
        # relation fails before any partial annotation lands.
        resolved = [
            (self.relation(name), bucket) for name, bucket in grouped.items()
        ]
        kernel = _kernel_for(self.monoid)
        for relation, bucket in resolved:
            annotations = kernel.map_annotations(annotation_of, bucket)
            relation.bulk_load([fact.values for fact in bucket], annotations)

    @classmethod
    def from_database(
        cls,
        query: BCQ,
        monoid: TwoMonoid[K],
        database: Database,
        annotation_of: Callable[[Fact], K] | None = None,
    ) -> "KDatabase[K]":
        """Annotate every fact of *database* (defaulting to ``monoid.one``)."""
        database.validate_against(query)
        fn = annotation_of or (lambda _fact: monoid.one)
        return cls.annotate(query, monoid, database.facts(), fn)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def relation(self, name: str) -> KRelation[K]:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no annotated relation named {name!r}") from None

    def set(self, fact: Fact, annotation: K) -> None:
        relation = self.relation(fact.relation)
        relation.set(fact.values, annotation)

    def annotation(self, fact: Fact) -> K:
        return self.relation(fact.relation).annotation(fact.values)

    def relations(self) -> Iterator[KRelation[K]]:
        return iter(self._relations.values())

    def size(self) -> int:
        """``|D|`` for annotated databases: total support size (Def. 6.5)."""
        return sum(len(relation) for relation in self._relations.values())
