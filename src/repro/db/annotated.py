"""K-annotated relations and databases (the inputs of Algorithm 1).

A K-annotated relation formally assigns an element of the 2-monoid ``K`` to
*every* tuple in ``Dom^X``; we store only the tuples whose annotation differs
from ``K.zero`` (the *support*, Definition 6.5) plus, transiently, tuples the
algorithm computes.  Absent tuples implicitly carry ``K.zero``.

The subtle point, inherited from the weakness of 2-monoids: ``a ⊗ 0 = 0``
need **not** hold (the Shapley 2-monoid violates it).  A Rule 2 merge must
therefore evaluate every tuple in the *union* of the two supports — a tuple
present on one side only gets ``a ⊗ 0``, which can be non-zero.  Only when
the monoid declares :attr:`~repro.algebra.base.TwoMonoid.annihilates` may the
join skip one-sided tuples.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, Mapping

from repro.algebra.base import K, TwoMonoid
from repro.db.database import Database
from repro.db.fact import Fact, Value
from repro.exceptions import AlgebraError, SchemaError
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ


class KRelation(Generic[K]):
    """A K-annotated relation over the variables of one atom.

    Tuples are stored positionally, aligned with ``atom.variables``.
    Annotations equal to ``monoid.zero`` are dropped on construction, so the
    stored mapping is exactly the support.
    """

    def __init__(
        self,
        atom: Atom,
        monoid: TwoMonoid[K],
        annotations: Mapping[tuple[Value, ...], K] | None = None,
    ):
        self.atom = atom
        self.monoid = monoid
        self._annotations: dict[tuple[Value, ...], K] = {}
        if annotations:
            for values, annotation in annotations.items():
                self.set(values, annotation)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def annotation(self, values: tuple[Value, ...]) -> K:
        """The annotation of *values* (``zero`` for absent tuples)."""
        return self._annotations.get(tuple(values), self.monoid.zero)

    def set(self, values: tuple[Value, ...], annotation: K) -> None:
        """Set an annotation, keeping the zero-dropping invariant."""
        values = tuple(values)
        if len(values) != self.atom.arity:
            raise SchemaError(
                f"tuple {values} has arity {len(values)}; atom {self.atom} "
                f"expects {self.atom.arity}"
            )
        if self.monoid.is_zero(annotation):
            self._annotations.pop(values, None)
        else:
            self._annotations[values] = annotation

    def support(self) -> frozenset[tuple[Value, ...]]:
        """The tuples with non-zero annotation (Definition 6.5)."""
        return frozenset(self._annotations)

    def items(self) -> Iterator[tuple[tuple[Value, ...], K]]:
        return iter(self._annotations.items())

    def __len__(self) -> int:
        """The *size* of the relation: its support cardinality (Def. 6.5)."""
        return len(self._annotations)

    def __repr__(self) -> str:
        return f"KRelation({self.atom}, |support|={len(self)})"

    # ------------------------------------------------------------------
    # The two elimination operations of Algorithm 1
    # ------------------------------------------------------------------
    def project_out(self, variable: Variable, target: Atom) -> "KRelation[K]":
        """Rule 1 (line 4): ``R'(x') = ⊕_y R(x', y)``.

        Groups the support by the remaining positions and ⊕-folds each group.
        Tuples outside the support contribute the ⊕-identity and are skipped.
        """
        if variable not in self.atom.variable_set:
            raise AlgebraError(f"{variable} does not occur in {self.atom}")
        keep_positions = tuple(
            i for i, v in enumerate(self.atom.variables) if v != variable
        )
        groups: dict[tuple[Value, ...], K] = {}
        monoid = self.monoid
        for values, annotation in self._annotations.items():
            key = tuple(values[i] for i in keep_positions)
            existing = groups.get(key)
            groups[key] = (
                annotation if existing is None else monoid.add(existing, annotation)
            )
        result = KRelation(target, monoid)
        for key, annotation in groups.items():
            result.set(key, annotation)
        return result

    def merge(self, other: "KRelation[K]", target: Atom) -> "KRelation[K]":
        """Rule 2 (line 7): ``R'(x) = R1(x) ⊗ R2(x)``.

        Iterates the union of the two supports (see module docstring for why
        the union — not the intersection — is required in general), or just
        this relation's support when the monoid annihilates by zero and the
        other side's missing tuples would zero out anyway.
        """
        if self.atom.variable_set != other.atom.variable_set:
            raise AlgebraError(
                f"cannot merge {self.atom} with {other.atom}: "
                "different variable sets"
            )
        monoid = self.monoid
        if monoid is not other.monoid:
            raise AlgebraError("cannot merge relations over different monoids")
        # Positional alignment: other's tuples reordered to target's order.
        other_positions = tuple(
            other.atom.variables.index(v) for v in target.variables
        )
        self_positions = tuple(
            self.atom.variables.index(v) for v in target.variables
        )

        def align_self(values: tuple[Value, ...]) -> tuple[Value, ...]:
            return tuple(values[i] for i in self_positions)

        def align_other(values: tuple[Value, ...]) -> tuple[Value, ...]:
            return tuple(values[i] for i in other_positions)

        result = KRelation(target, monoid)
        other_by_key: dict[tuple[Value, ...], K] = {
            align_other(values): annotation for values, annotation in other.items()
        }
        seen: set[tuple[Value, ...]] = set()
        for values, annotation in self._annotations.items():
            key = align_self(values)
            seen.add(key)
            other_annotation = other_by_key.get(key, monoid.zero)
            result.set(key, monoid.mul(annotation, other_annotation))
        if not monoid.annihilates:
            for key, other_annotation in other_by_key.items():
                if key not in seen:
                    result.set(key, monoid.mul(monoid.zero, other_annotation))
        return result


    def absorb(self, smaller: "KRelation[K]", target: Atom) -> "KRelation[K]":
        """Semi-join-style merge of an atom over a variable *subset*.

        ``R'(y) = self(y) ⊗ smaller(y|X)`` where ``X ⊂ Y``.  Used only by the
        free-variable engine (:mod:`repro.core.grouped`) to fold an atom whose
        remaining variables are all free into a superset atom.  Each tuple of
        *smaller* may annotate many output tuples, so this is sound only when
        no later ⊕ ever folds two outputs sharing a *smaller* tuple — the
        grouped engine guarantees that by never projecting free variables —
        and only for monoids with annihilation-by-zero (otherwise tuples
        absent from this relation but whose projection hits *smaller* would
        need non-zero annotations over an unbounded domain).
        """
        monoid = self.monoid
        if monoid is not smaller.monoid:
            raise AlgebraError("cannot absorb a relation over a different monoid")
        if not monoid.annihilates:
            raise AlgebraError(
                f"absorb requires annihilation-by-zero; {monoid.name} lacks it"
            )
        if not smaller.atom.variable_set < self.atom.variable_set:
            raise AlgebraError(
                f"{smaller.atom} is not over a strict variable subset of {self.atom}"
            )
        if target.variable_set != self.atom.variable_set:
            raise AlgebraError(
                f"target {target} must keep the variable set of {self.atom}"
            )
        self_positions = tuple(
            self.atom.variables.index(v) for v in target.variables
        )
        smaller_positions = tuple(
            target.variables.index(v) for v in smaller.atom.variables
        )
        result = KRelation(target, monoid)
        for values, annotation in self._annotations.items():
            key = tuple(values[i] for i in self_positions)
            projected = tuple(key[i] for i in smaller_positions)
            result.set(key, monoid.mul(annotation, smaller.annotation(projected)))
        return result


class KDatabase(Generic[K]):
    """A K-annotated database: one :class:`KRelation` per atom of a query."""

    def __init__(self, query: BCQ, monoid: TwoMonoid[K]):
        query.require_self_join_free()
        self.query = query
        self.monoid = monoid
        self._relations: dict[str, KRelation[K]] = {
            atom.relation: KRelation(atom, monoid) for atom in query.atoms
        }

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def annotate(
        cls,
        query: BCQ,
        monoid: TwoMonoid[K],
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
    ) -> "KDatabase[K]":
        """Annotate *facts* with ``annotation_of`` (the ψ of Defs. 5.10/5.15)."""
        annotated = cls(query, monoid)
        for fact in facts:
            annotated.set(fact, annotation_of(fact))
        return annotated

    @classmethod
    def from_database(
        cls,
        query: BCQ,
        monoid: TwoMonoid[K],
        database: Database,
        annotation_of: Callable[[Fact], K] | None = None,
    ) -> "KDatabase[K]":
        """Annotate every fact of *database* (defaulting to ``monoid.one``)."""
        database.validate_against(query)
        fn = annotation_of or (lambda _fact: monoid.one)
        return cls.annotate(query, monoid, database.facts(), fn)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def relation(self, name: str) -> KRelation[K]:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no annotated relation named {name!r}") from None

    def set(self, fact: Fact, annotation: K) -> None:
        relation = self.relation(fact.relation)
        relation.set(fact.values, annotation)

    def annotation(self, fact: Fact) -> K:
        return self.relation(fact.relation).annotation(fact.values)

    def relations(self) -> Iterator[KRelation[K]]:
        return iter(self._relations.values())

    def size(self) -> int:
        """``|D|`` for annotated databases: total support size (Def. 6.5)."""
        return sum(len(relation) for relation in self._relations.values())
