"""Relational substrate: facts, set databases, CQ evaluation, K-annotations."""

from repro.db.annotated import KDatabase, KRelation
from repro.db.database import Database, repair_cost
from repro.db.evaluation import (
    count_satisfying_assignments,
    evaluates_true,
    satisfying_assignments,
)
from repro.db.fact import Fact, Value, make_fact
from repro.db.io import (
    database_from_dict,
    database_to_dict,
    load_database,
    load_probabilistic,
    probabilistic_from_dict,
    probabilistic_to_dict,
    save_database,
    save_probabilistic,
)
from repro.db.schema import Schema

__all__ = [
    "Database",
    "Fact",
    "KDatabase",
    "KRelation",
    "Schema",
    "Value",
    "count_satisfying_assignments",
    "database_from_dict",
    "database_to_dict",
    "evaluates_true",
    "load_database",
    "load_probabilistic",
    "make_fact",
    "probabilistic_from_dict",
    "probabilistic_to_dict",
    "repair_cost",
    "satisfying_assignments",
    "save_database",
    "save_probabilistic",
]
