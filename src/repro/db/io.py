"""Serialization of databases and problem instances to/from JSON.

Used by the examples (so scenarios can ship as data files) and handy for
debugging benchmark workloads.  The format is deliberately simple::

    {"relations": {"R": [[1, 5], [1, 6]], "S": [[1, 1]]}}

Values round-trip as JSON scalars (ints, floats, strings, bools, null).
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.db.database import Database
from repro.exceptions import SchemaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.problems.possible_worlds import ProbabilisticDatabase


def database_to_dict(database: Database) -> dict[str, Any]:
    """A JSON-serializable representation of *database*."""
    return {
        "relations": {
            relation: sorted(
                (list(values) for values in database.tuples(relation)),
                key=repr,
            )
            for relation in database.relations
        }
    }


def database_from_dict(payload: dict[str, Any]) -> Database:
    """Inverse of :func:`database_to_dict`."""
    if "relations" not in payload:
        raise SchemaError("database payload is missing the 'relations' key")
    relations = payload["relations"]
    if not isinstance(relations, dict):
        raise SchemaError("'relations' must map relation names to tuple lists")
    return Database.from_relations(
        {
            relation: [tuple(values) for values in tuples]
            for relation, tuples in relations.items()
        }
    )


def probabilistic_to_dict(database: "ProbabilisticDatabase") -> dict[str, Any]:
    """JSON form of a tuple-independent probabilistic database::

        {"facts": [{"relation": "R", "values": [1, 5], "probability": 0.5}]}

    Fraction probabilities are written as ``"1/2"`` strings to stay exact.
    """
    from repro.problems.possible_worlds import ProbabilisticDatabase  # noqa: F401

    def encode(probability):
        if isinstance(probability, Fraction):
            return f"{probability.numerator}/{probability.denominator}"
        return probability

    return {
        "facts": [
            {
                "relation": fact.relation,
                "values": list(fact.values),
                "probability": encode(database.probability(fact)),
            }
            for fact in database.facts()
        ]
    }


def probabilistic_from_dict(payload: dict[str, Any]) -> "ProbabilisticDatabase":
    """Inverse of :func:`probabilistic_to_dict`."""
    from repro.db.fact import Fact
    from repro.problems.possible_worlds import ProbabilisticDatabase

    if "facts" not in payload or not isinstance(payload["facts"], list):
        raise SchemaError("probabilistic payload needs a 'facts' list")
    probabilities = {}
    for entry in payload["facts"]:
        try:
            fact = Fact(entry["relation"], tuple(entry["values"]))
            raw = entry["probability"]
        except (KeyError, TypeError) as error:
            raise SchemaError(f"malformed fact entry {entry!r}") from error
        probability = Fraction(raw) if isinstance(raw, str) else raw
        probabilities[fact] = probability
    return ProbabilisticDatabase(probabilities)


def save_probabilistic(database: "ProbabilisticDatabase", path: str | Path) -> None:
    """Write a probabilistic database to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(probabilistic_to_dict(database), handle, indent=2)


def load_probabilistic(path: str | Path) -> "ProbabilisticDatabase":
    """Read a probabilistic database written by :func:`save_probabilistic`."""
    with open(path, encoding="utf-8") as handle:
        return probabilistic_from_dict(json.load(handle))


def save_database(database: Database, path: str | Path) -> None:
    """Write *database* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(database_to_dict(database), handle, indent=2, sort_keys=True)


def load_database(path: str | Path) -> Database:
    """Read a database previously written by :func:`save_database`."""
    with open(path, encoding="utf-8") as handle:
        return database_from_dict(json.load(handle))
