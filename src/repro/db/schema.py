"""Schemas: relation symbols with fixed arities.

A schema is induced by the atoms of a query (``at(Q)`` in the paper); database
instances are validated against it so arity mismatches fail loudly instead of
silently producing empty joins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.exceptions import SchemaError
from repro.db.fact import Fact
from repro.query.bcq import BCQ


@dataclass(frozen=True)
class Schema:
    """A mapping from relation symbols to arities."""

    arities: Mapping[str, int]

    def __post_init__(self) -> None:
        object.__setattr__(self, "arities", dict(self.arities))

    @classmethod
    def of_query(cls, query: BCQ) -> "Schema":
        """The schema induced by the atoms of *query*.

        Raises :class:`SchemaError` when two atoms of the query disagree on
        the arity of a shared relation symbol (possible only for non-SJF
        queries).
        """
        arities: dict[str, int] = {}
        for atom in query.atoms:
            existing = arities.get(atom.relation)
            if existing is not None and existing != atom.arity:
                raise SchemaError(
                    f"relation {atom.relation!r} used with arities "
                    f"{existing} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity
        return cls(arities)

    @property
    def relations(self) -> tuple[str, ...]:
        return tuple(sorted(self.arities))

    def arity(self, relation: str) -> int:
        try:
            return self.arities[relation]
        except KeyError:
            raise SchemaError(f"unknown relation {relation!r}") from None

    def __contains__(self, relation: str) -> bool:
        return relation in self.arities

    def __iter__(self) -> Iterator[str]:
        return iter(self.relations)

    def validate_fact(self, fact: Fact) -> None:
        """Raise :class:`SchemaError` unless *fact* fits this schema."""
        if fact.relation not in self.arities:
            raise SchemaError(f"fact {fact} uses unknown relation {fact.relation!r}")
        expected = self.arities[fact.relation]
        if fact.arity != expected:
            raise SchemaError(
                f"fact {fact} has arity {fact.arity}; "
                f"schema expects arity {expected}"
            )

    def validate_facts(self, facts: Iterable[Fact]) -> None:
        for fact in facts:
            self.validate_fact(fact)
