"""Law checking for 2-monoids and semirings.

Used by the property-test suite (with hypothesis-generated samples) and by
experiment E11, which verifies on random elements that each of the paper's
three instantiations satisfies every Definition 5.6 axiom while *violating*
distributivity — the structural reason the unifying algorithm stops at
hierarchical queries (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.algebra.base import K, TwoMonoid


@dataclass(frozen=True)
class LawViolation:
    """One concrete counterexample to a named algebraic law."""

    law: str
    elements: tuple

    def __str__(self) -> str:
        return f"{self.law} violated at {self.elements}"


def check_two_monoid_laws(
    monoid: TwoMonoid[K], samples: Sequence[K], max_triples: int = 200
) -> list[LawViolation]:
    """Check every Definition 5.6 axiom of *monoid* on the given *samples*.

    Checks: commutativity and associativity of both ⊕ and ⊗, the identity
    laws for 0 and 1, and ``0 ⊗ 0 = 0``.  Returns all violations found (empty
    list = laws hold on the samples).
    """
    violations: list[LawViolation] = []
    zero, one = monoid.zero, monoid.one

    if not monoid.eq(monoid.mul(zero, zero), zero):
        violations.append(LawViolation("0 ⊗ 0 = 0", (zero,)))

    for a in samples:
        if not monoid.eq(monoid.add(a, zero), a):
            violations.append(LawViolation("a ⊕ 0 = a", (a,)))
        if not monoid.eq(monoid.mul(a, one), a):
            violations.append(LawViolation("a ⊗ 1 = a", (a,)))

    for a, b in product(samples, repeat=2):
        if not monoid.eq(monoid.add(a, b), monoid.add(b, a)):
            violations.append(LawViolation("⊕ commutativity", (a, b)))
        if not monoid.eq(monoid.mul(a, b), monoid.mul(b, a)):
            violations.append(LawViolation("⊗ commutativity", (a, b)))

    count = 0
    for a, b, c in product(samples, repeat=3):
        if count >= max_triples:
            break
        count += 1
        left = monoid.add(monoid.add(a, b), c)
        right = monoid.add(a, monoid.add(b, c))
        if not monoid.eq(left, right):
            violations.append(LawViolation("⊕ associativity", (a, b, c)))
        left = monoid.mul(monoid.mul(a, b), c)
        right = monoid.mul(a, monoid.mul(b, c))
        if not monoid.eq(left, right):
            violations.append(LawViolation("⊗ associativity", (a, b, c)))
    return violations


def find_distributivity_violation(
    monoid: TwoMonoid[K], samples: Sequence[K], max_triples: int = 500
) -> tuple[K, K, K] | None:
    """Find ``(a, b, c)`` with ``a ⊗ (b ⊕ c) ≠ (a ⊗ b) ⊕ (a ⊗ c)``, if any.

    Each of the paper's three problem 2-monoids admits such a triple; the
    genuine semirings in this package do not.
    """
    count = 0
    for a, b, c in product(samples, repeat=3):
        if count >= max_triples:
            return None
        count += 1
        left = monoid.mul(a, monoid.add(b, c))
        right = monoid.add(monoid.mul(a, b), monoid.mul(a, c))
        if not monoid.eq(left, right):
            return (a, b, c)
    return None


def find_annihilation_violation(
    monoid: TwoMonoid[K], samples: Sequence[K]
) -> K | None:
    """Find ``a`` with ``a ⊗ 0 ≠ 0``, if any.

    The Shapley 2-monoid (Definition 5.14) has such elements; this is why the
    annotated-relation join must not prune tuples present on one side only.
    """
    zero = monoid.zero
    for a in samples:
        if not monoid.eq(monoid.mul(a, zero), zero):
            return a
    return None
