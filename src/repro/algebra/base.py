"""The 2-monoid abstraction (Definition 5.6).

A 2-monoid ``K = (K, ⊕, ⊗)`` consists of two commutative monoids over the
same carrier — ``(K, ⊕)`` with neutral element ``0`` and ``(K, ⊗)`` with
neutral element ``1`` — satisfying the single interaction law ``0 ⊗ 0 = 0``.
Unlike a commutative semiring, a 2-monoid need satisfy neither distributivity
nor annihilation-by-zero; the paper shows this weakening is exactly what
confines the unifying algorithm to hierarchical queries.

Concrete instantiations live in sibling modules:

* :mod:`repro.algebra.probability` — probabilistic query evaluation (Def. 5.7),
* :mod:`repro.algebra.bagset` — bag-set maximization (Def. 5.9),
* :mod:`repro.algebra.shapley` — ``#Sat`` vectors for Shapley values (Def. 5.14),
* :mod:`repro.algebra.provenance` — the universal provenance 2-monoid (Def. 6.2),
* plus genuine semirings (counting, Boolean, tropical, polynomial) used for
  cross-checks and to exhibit the semiring/2-monoid gap.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Generic, Iterable, TypeVar

K = TypeVar("K")


class TwoMonoid(ABC, Generic[K]):
    """Abstract base for 2-monoids (Definition 5.6).

    Subclasses provide :attr:`zero`, :attr:`one`, :meth:`add` (⊕) and
    :meth:`mul` (⊗).  Equality of elements defaults to ``==`` and can be
    overridden (e.g. for float-valued probabilities in tests).
    """

    #: Human-readable name used in reports and error messages.
    name: str = "2-monoid"

    @property
    @abstractmethod
    def zero(self) -> K:
        """The neutral element of ⊕ (written 0 in the paper)."""

    @property
    @abstractmethod
    def one(self) -> K:
        """The neutral element of ⊗ (written 1 in the paper)."""

    @abstractmethod
    def add(self, left: K, right: K) -> K:
        """The ⊕ operation."""

    @abstractmethod
    def mul(self, left: K, right: K) -> K:
        """The ⊗ operation."""

    def eq(self, left: K, right: K) -> bool:
        """Element equality (override for approximate carriers)."""
        return left == right

    # ------------------------------------------------------------------
    # Folds (the algorithm aggregates with these)
    # ------------------------------------------------------------------
    def add_fold(self, items: Iterable[K]) -> K:
        """⊕-fold of *items*; the empty fold is :attr:`zero`."""
        result = self.zero
        for item in items:
            result = self.add(result, item)
        return result

    def mul_fold(self, items: Iterable[K]) -> K:
        """⊗-fold of *items*; the empty fold is :attr:`one`."""
        result = self.one
        for item in items:
            result = self.mul(result, item)
        return result

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_zero(self, item: K) -> bool:
        """True when *item* equals the ⊕-identity."""
        return self.eq(item, self.zero)

    def is_one(self, item: K) -> bool:
        """True when *item* equals the ⊗-identity.

        The batched merge loop uses this to skip ⊗ applications whose result
        is known (``a ⊗ 1 = a``); override alongside :meth:`eq` for carriers
        with approximate equality.
        """
        return self.eq(item, self.one)

    @property
    def annihilates(self) -> bool:
        """Whether ``a ⊗ 0 = 0`` holds for all ``a`` (semiring property).

        2-monoids only guarantee ``0 ⊗ 0 = 0``.  Subclasses for which full
        annihilation *does* hold may override this to True, enabling a
        support-pruning optimization in the annotated-relation join; the
        Shapley 2-monoid must leave it False.
        """
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class CommutativeSemiring(TwoMonoid[K]):
    """Marker base for 2-monoids that are genuine commutative semirings.

    These satisfy distributivity and annihilation-by-zero on top of the
    2-monoid laws.  None of the paper's three problem instantiations is a
    semiring; these exist for engine cross-checks (e.g. counting the bag-set
    value of a query via the counting semiring) and for the law-census
    experiment E11.
    """

    @property
    def annihilates(self) -> bool:
        return True
