"""The counting semiring ``(N, +, ×)`` — a genuine commutative semiring.

Not one of the paper's instantiations: it satisfies distributivity, so
evaluating with it through *any* join plan (not only hierarchical
eliminations) is sound.  The library uses it to cross-check the annotated
engine: running Algorithm 1 on a hierarchical query with every present fact
annotated 1 yields exactly ``Q(D)`` under bag-set semantics, which must agree
with the backtracking evaluator of :mod:`repro.db.evaluation`.
"""

from __future__ import annotations

from repro.algebra.base import CommutativeSemiring
from repro.core.kernels import (
    ArrayKernel,
    ExactObjectArrayKernel,
    MonoidKernel,
    register_array_kernel,
    register_kernel,
)
from repro.exceptions import AlgebraError


class CountingSemiring(CommutativeSemiring[int]):
    """Natural numbers under ``(+, ×)``."""

    name = "counting (N, +, ×)"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return left + right

    def mul(self, left: int, right: int) -> int:
        return left * right

    def validate(self, value: int) -> int:
        if not isinstance(value, int) or value < 0:
            raise AlgebraError(f"{value!r} is not a natural number")
        return value


class SumProductKernel(MonoidKernel):
    """Batched ``(+, ×)``: ⊕-folds are C-level ``sum`` calls.

    ``sum`` folds left-to-right from 0 exactly like the scalar path, so the
    kernel is bit-identical for ints and rationals and matches floats to the
    last ulp.  Shared by the counting and non-negative-real semirings.
    """

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else sum(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [left * right for left, right in zip(lefts, rights)]


register_kernel(CountingSemiring, SumProductKernel)


class SumProductArrayKernel(ArrayKernel):
    """Columnar float ``(+, ×)``: ⊕-folds via ``add.reduceat``, ⊗ elementwise
    (the real semiring; results agree with scalar up to re-association)."""

    def __init__(self, monoid, np, dtype):
        super().__init__(monoid, np)
        self.dtype = dtype

    def fold_groups(self, annotations, starts):
        return self.np.add.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts * rights


class CountingArrayKernel(ExactObjectArrayKernel):
    """Columnar ``(+, ×)`` over exact Python ints (object columns).

    Counting values — model counts, bag-set cardinalities — routinely
    exceed int64, and numpy int64 arithmetic wraps silently, so this kernel
    keeps the annotations as Python ints: bit-identical to the scalar tier
    at every magnitude.
    """

    def fold_groups(self, annotations, starts):
        return self.np.add.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts * rights


register_array_kernel(CountingSemiring, CountingArrayKernel)
