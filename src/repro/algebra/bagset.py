"""The bag-set maximization 2-monoid (Definition 5.9).

Elements are *monotone* vectors ``x ∈ N^N``: ``x(i)`` is the best multiplicity
achievable with a repair budget of ``i``.  The operations are convolutions

* ``(x ⊕ y)(i) = max_{i1+i2=i} x(i1) + y(i2)`` — (max, +) convolution, for
  disjunctions of independently-repairable formulas (Eq. 10),
* ``(x ⊗ y)(i) = max_{i1+i2=i} x(i1) · y(i2)`` — (max, ×) convolution, for
  conjunctions (Eq. 11).

Identities: 0 = the all-zeros vector, 1 = the all-ones vector.  ``⊗`` does not
distribute over ``⊕`` (see the tests for a concrete triple), so this is a
2-monoid, not a semiring.

Vectors are truncated to ``length = θ + 1`` entries: the maximum useful budget
is ``θ ≤ |Dr|``, and monotonicity makes entries beyond the truncation point
redundant.  This truncation is exactly the lever that yields the
``O((|D|+|Dr|)·|Dr|²)`` bound of Theorem 5.11, and is ablated by experiment E9.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.base import TwoMonoid
from repro.algebra.packed import INT64_SAFE, fold_segments, max_conv
from repro.core.kernels import (
    MonoidKernel,
    VectorArrayKernel,
    register_array_kernel,
    register_kernel,
)
from repro.exceptions import AlgebraError

BagSetVector = tuple[int, ...]
"""A truncated monotone vector of naturals; index = repair budget."""


def is_monotone(vector: Sequence[int]) -> bool:
    """True when the vector is non-decreasing (the Definition 5.9 carrier)."""
    return all(vector[i] <= vector[i + 1] for i in range(len(vector) - 1))


class BagSetMonoid(TwoMonoid[BagSetVector]):
    """The Definition 5.9 2-monoid with vectors truncated to a fixed length.

    Parameters
    ----------
    length:
        Number of stored entries (budget ``θ`` ⇒ ``length = θ + 1``).
        Must be at least 1.
    """

    name = "bag-set maximization"

    def __init__(self, length: int):
        if length < 1:
            raise AlgebraError("BagSetMonoid needs at least one vector entry")
        self._length = length

    @property
    def length(self) -> int:
        return self._length

    @property
    def budget(self) -> int:
        """The largest budget the truncated vectors can answer for."""
        return self._length - 1

    # ------------------------------------------------------------------
    # Distinguished elements
    # ------------------------------------------------------------------
    @property
    def zero(self) -> BagSetVector:
        """All-zeros: a formula that cannot be made true at any budget."""
        return (0,) * self._length

    @property
    def one(self) -> BagSetVector:
        """All-ones: a fact already present in D (multiplicity 1 for free)."""
        return (1,) * self._length

    @property
    def star(self) -> BagSetVector:
        """``★ = (0, 1, 1, ...)``: a repair fact — multiplicity 1 at cost ≥ 1."""
        if self._length == 1:
            return (0,)
        return (0,) + (1,) * (self._length - 1)

    def constant(self, value: int) -> BagSetVector:
        """A constant vector (useful in tests)."""
        return (value,) * self._length

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        """(max, +) convolution — Eq. (10)."""
        self._check(left)
        self._check(right)
        return tuple(
            max(left[j] + right[i - j] for j in range(i + 1))
            for i in range(self._length)
        )

    def mul(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        """(max, ×) convolution — Eq. (11)."""
        self._check(left)
        self._check(right)
        return tuple(
            max(left[j] * right[i - j] for j in range(i + 1))
            for i in range(self._length)
        )

    @property
    def annihilates(self) -> bool:
        """(max, ×) convolution with all-zeros is all-zeros, so ⊗0 annihilates."""
        return True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check(self, vector: BagSetVector) -> None:
        if len(vector) != self._length:
            raise AlgebraError(
                f"vector of length {len(vector)} used in a "
                f"BagSetMonoid of length {self._length}"
            )

    def validate(self, vector: Iterable[int]) -> BagSetVector:
        """Check membership in the carrier: right length, naturals, monotone."""
        vector = tuple(vector)
        self._check(vector)
        if any(entry < 0 for entry in vector):
            raise AlgebraError(f"{vector} has negative entries")
        if not is_monotone(vector):
            raise AlgebraError(
                f"{vector} is not monotone; Definition 5.9 restricts the "
                "carrier to monotone vectors"
            )
        return vector

    def truncate(self, vector: Sequence[int]) -> BagSetVector:
        """Truncate or monotonically extend *vector* to this monoid's length."""
        vector = tuple(vector)
        if len(vector) >= self._length:
            return vector[: self._length]
        tail = vector[-1] if vector else 0
        return vector + (tail,) * (self._length - len(vector))


class BagSetKernel(MonoidKernel[BagSetVector]):
    """Batched bag-set convolutions with constant/★ fast paths.

    Because the carrier is *monotone* vectors, a vector is constant iff its
    first and last entries agree — an O(1) test.  Convolving with a constant
    ``c`` collapses to an O(θ) elementwise map::

        (x ⊕ c)(i) = max_j x(j) + c = x(i) + c      (monotonicity)
        (x ⊗ c)(i) = max_j x(j) · c = x(i) · c

    Constants dominate real ψ-annotations: every base-database fact is the
    all-ones 1.  The repair facts are ``★ = (0, 1, 1, …)``, whose ⊗ is the
    index shift ``(0, x₀, …, x_{θ−1})``.  Non-fast pairs fall back to the
    scalar quadratic convolutions, so the kernel stays exactly equal to the
    :class:`BagSetMonoid` operations.
    """

    def __init__(self, monoid: BagSetMonoid):
        super().__init__(monoid)
        self._star = monoid.star

    def _add(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        if left[0] == left[-1]:
            constant = left[0]
            return tuple(value + constant for value in right)
        if right[0] == right[-1]:
            constant = right[0]
            return tuple(value + constant for value in left)
        return self.monoid.add(left, right)

    def _mul(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        if left[0] == left[-1]:
            constant = left[0]
            return tuple(value * constant for value in right)
        if right[0] == right[-1]:
            constant = right[0]
            return tuple(value * constant for value in left)
        if left == self._star:
            return (0,) + right[:-1]
        if right == self._star:
            return (0,) + left[:-1]
        return self.monoid.mul(left, right)

    # fold_add: inherited left-fold over the fast-path _add above.

    def mul_aligned(self, lefts, rights):
        mul = self._mul
        return [mul(left, right) for left, right in zip(lefts, rights)]


register_kernel(BagSetMonoid, BagSetKernel)


class BagSetArrayKernel(VectorArrayKernel):
    """Packed columnar bag-set vectors: 2-D rows, batched (max, ·) convolutions.

    A relation's annotations live in one ``(n, θ+1)`` array — one row per
    support tuple, one column per budget slot; vectors always span the full
    truncation length (monotone tails make every slot meaningful, so there
    is nothing to trim).  Both operations are truncated ``(max, ·)``
    convolutions (Eqs. 10/11) run as **sliding windows**: for each shift
    ``j``, one vectorized ``max`` folds ``rows[:, j] ∘ rows[:, :θ+1−j]``
    into the output block — ``O(θ)`` numpy calls for *all* aligned row
    pairs, instead of an ``O(θ²)`` Python loop per pair.  Rule 1 ⊕-folds
    run the same convolution through the segmented halving of
    :func:`repro.algebra.packed.fold_segments`.

    Exactness: rows are int64 while every entry fits the guarded range and
    flip to exact ``object`` (Python int) rows the moment an a-priori bound
    says a result could leave it — multiplicities never wrap, and results
    are bit-identical to the scalar tier at any magnitude ((max, +) and
    (max, ×) are associative and commutative over exact ints, so the tree
    re-association cannot change values).
    """

    def __init__(self, monoid: BagSetMonoid, np):
        super().__init__(monoid, np)
        self._length = monoid.length
        self.dtype = np.int64

    # -- conversion ----------------------------------------------------
    def to_array(self, annotations):
        np = self.np
        if not len(annotations):
            return np.empty((0, self._length), dtype=np.int64)
        rows = list(annotations)
        # Monotone vectors peak at their last entry, so the dtype decision
        # is one O(n) scan.
        peak = max(vector[-1] for vector in rows)
        dtype = np.int64 if peak <= INT64_SAFE else object
        return np.array(rows, dtype=dtype)

    def to_scalar(self, value) -> BagSetVector:
        return tuple(value.tolist())

    def to_scalars(self, column) -> list:
        return [tuple(row) for row in column.tolist()]

    def zero_row(self, width):
        return self.np.zeros(width, dtype=self.np.int64)

    def zero_mask(self, column):
        # Monotone naturals are all-zero exactly when the last slot is 0.
        return column[:, -1] == 0

    # -- the two batched operations ------------------------------------
    def _convolve(self, lefts, rights, product, bound):
        np = self.np
        if lefts.dtype != object and rights.dtype != object:
            if bound > INT64_SAFE:
                # The result could leave the guarded int64 range: compute
                # this (and everything downstream) in exact Python ints.
                lefts = lefts.astype(object)
                rights = rights.astype(object)
        return max_conv(np, lefts, rights, self._length, product)

    def _peak(self, rows) -> int:
        if rows.shape[0] == 0:
            return 0
        return int(rows[:, -1].max())

    def _spike_fold(self, annotations, starts):
        """Closed-form ⊕-fold when every row is a constant or ``★``.

        The real ψ-annotations (Definition 5.10): base facts are constants,
        repair facts are ``★``.  Constants ⊕-fold by summing and shift a
        fold elementwise (``(c ⊕ x)(i) = c + x(i)`` by monotonicity), and
        ``k`` stars fold to the ramp ``min(i, k)`` — so the whole group
        fold is ``Σ constants + min(i, #stars)``, computed for *all* groups
        with two **per-slot** ``add.reduceat`` passes and one broadcast
        ramp.  Returns ``None`` when some row is neither (the generic
        convolution fold handles it).
        """
        np = self.np
        if annotations.dtype == object:
            return None
        constant = annotations[:, 0] == annotations[:, -1]
        star = ~constant
        if star.any():
            star_row = np.asarray(self.monoid.star, dtype=np.int64)
            star &= (annotations == star_row).all(axis=1)
            if not (constant | star).all():
                return None
        # A-priori sum bound (checked before the reduceat, which would wrap
        # silently): every constant is ≤ the column peak and each group has
        # at most n members.
        if self._peak(annotations) * annotations.shape[0] > INT64_SAFE:
            return None
        constant_sum = np.add.reduceat(
            np.where(constant, annotations[:, 0], 0), starts
        )
        stars = np.add.reduceat(star.astype(np.int64), starts)
        ramp = np.minimum(
            np.arange(self._length, dtype=np.int64)[None, :],
            stars[:, None],
        )
        return constant_sum[:, None] + ramp

    def fold_groups(self, annotations, starts):
        np = self.np
        if annotations.shape[0]:
            folded = self._spike_fold(annotations, starts)
            if folded is not None:
                return folded

        def combine(lefts, rights):
            bound = self._peak(lefts) + self._peak(rights)
            return self._convolve(lefts, rights, np.add, bound)

        return fold_segments(np, annotations, starts, combine, self.pad_rows)

    def mul_arrays(self, lefts, rights):
        bound = self._peak(lefts) * self._peak(rights)
        return self._convolve(lefts, rights, self.np.multiply, bound)


register_array_kernel(BagSetMonoid, BagSetArrayKernel)
