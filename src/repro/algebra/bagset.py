"""The bag-set maximization 2-monoid (Definition 5.9).

Elements are *monotone* vectors ``x ∈ N^N``: ``x(i)`` is the best multiplicity
achievable with a repair budget of ``i``.  The operations are convolutions

* ``(x ⊕ y)(i) = max_{i1+i2=i} x(i1) + y(i2)`` — (max, +) convolution, for
  disjunctions of independently-repairable formulas (Eq. 10),
* ``(x ⊗ y)(i) = max_{i1+i2=i} x(i1) · y(i2)`` — (max, ×) convolution, for
  conjunctions (Eq. 11).

Identities: 0 = the all-zeros vector, 1 = the all-ones vector.  ``⊗`` does not
distribute over ``⊕`` (see the tests for a concrete triple), so this is a
2-monoid, not a semiring.

Vectors are truncated to ``length = θ + 1`` entries: the maximum useful budget
is ``θ ≤ |Dr|``, and monotonicity makes entries beyond the truncation point
redundant.  This truncation is exactly the lever that yields the
``O((|D|+|Dr|)·|Dr|²)`` bound of Theorem 5.11, and is ablated by experiment E9.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.base import TwoMonoid
from repro.core.kernels import MonoidKernel, register_kernel
from repro.exceptions import AlgebraError

BagSetVector = tuple[int, ...]
"""A truncated monotone vector of naturals; index = repair budget."""


def is_monotone(vector: Sequence[int]) -> bool:
    """True when the vector is non-decreasing (the Definition 5.9 carrier)."""
    return all(vector[i] <= vector[i + 1] for i in range(len(vector) - 1))


class BagSetMonoid(TwoMonoid[BagSetVector]):
    """The Definition 5.9 2-monoid with vectors truncated to a fixed length.

    Parameters
    ----------
    length:
        Number of stored entries (budget ``θ`` ⇒ ``length = θ + 1``).
        Must be at least 1.
    """

    name = "bag-set maximization"

    def __init__(self, length: int):
        if length < 1:
            raise AlgebraError("BagSetMonoid needs at least one vector entry")
        self._length = length

    @property
    def length(self) -> int:
        return self._length

    @property
    def budget(self) -> int:
        """The largest budget the truncated vectors can answer for."""
        return self._length - 1

    # ------------------------------------------------------------------
    # Distinguished elements
    # ------------------------------------------------------------------
    @property
    def zero(self) -> BagSetVector:
        """All-zeros: a formula that cannot be made true at any budget."""
        return (0,) * self._length

    @property
    def one(self) -> BagSetVector:
        """All-ones: a fact already present in D (multiplicity 1 for free)."""
        return (1,) * self._length

    @property
    def star(self) -> BagSetVector:
        """``★ = (0, 1, 1, ...)``: a repair fact — multiplicity 1 at cost ≥ 1."""
        if self._length == 1:
            return (0,)
        return (0,) + (1,) * (self._length - 1)

    def constant(self, value: int) -> BagSetVector:
        """A constant vector (useful in tests)."""
        return (value,) * self._length

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        """(max, +) convolution — Eq. (10)."""
        self._check(left)
        self._check(right)
        return tuple(
            max(left[j] + right[i - j] for j in range(i + 1))
            for i in range(self._length)
        )

    def mul(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        """(max, ×) convolution — Eq. (11)."""
        self._check(left)
        self._check(right)
        return tuple(
            max(left[j] * right[i - j] for j in range(i + 1))
            for i in range(self._length)
        )

    @property
    def annihilates(self) -> bool:
        """(max, ×) convolution with all-zeros is all-zeros, so ⊗0 annihilates."""
        return True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check(self, vector: BagSetVector) -> None:
        if len(vector) != self._length:
            raise AlgebraError(
                f"vector of length {len(vector)} used in a "
                f"BagSetMonoid of length {self._length}"
            )

    def validate(self, vector: Iterable[int]) -> BagSetVector:
        """Check membership in the carrier: right length, naturals, monotone."""
        vector = tuple(vector)
        self._check(vector)
        if any(entry < 0 for entry in vector):
            raise AlgebraError(f"{vector} has negative entries")
        if not is_monotone(vector):
            raise AlgebraError(
                f"{vector} is not monotone; Definition 5.9 restricts the "
                "carrier to monotone vectors"
            )
        return vector

    def truncate(self, vector: Sequence[int]) -> BagSetVector:
        """Truncate or monotonically extend *vector* to this monoid's length."""
        vector = tuple(vector)
        if len(vector) >= self._length:
            return vector[: self._length]
        tail = vector[-1] if vector else 0
        return vector + (tail,) * (self._length - len(vector))


class BagSetKernel(MonoidKernel[BagSetVector]):
    """Batched bag-set convolutions with constant/★ fast paths.

    Because the carrier is *monotone* vectors, a vector is constant iff its
    first and last entries agree — an O(1) test.  Convolving with a constant
    ``c`` collapses to an O(θ) elementwise map::

        (x ⊕ c)(i) = max_j x(j) + c = x(i) + c      (monotonicity)
        (x ⊗ c)(i) = max_j x(j) · c = x(i) · c

    Constants dominate real ψ-annotations: every base-database fact is the
    all-ones 1.  The repair facts are ``★ = (0, 1, 1, …)``, whose ⊗ is the
    index shift ``(0, x₀, …, x_{θ−1})``.  Non-fast pairs fall back to the
    scalar quadratic convolutions, so the kernel stays exactly equal to the
    :class:`BagSetMonoid` operations.
    """

    def __init__(self, monoid: BagSetMonoid):
        super().__init__(monoid)
        self._star = monoid.star

    def _add(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        if left[0] == left[-1]:
            constant = left[0]
            return tuple(value + constant for value in right)
        if right[0] == right[-1]:
            constant = right[0]
            return tuple(value + constant for value in left)
        return self.monoid.add(left, right)

    def _mul(self, left: BagSetVector, right: BagSetVector) -> BagSetVector:
        if left[0] == left[-1]:
            constant = left[0]
            return tuple(value * constant for value in right)
        if right[0] == right[-1]:
            constant = right[0]
            return tuple(value * constant for value in left)
        if left == self._star:
            return (0,) + right[:-1]
        if right == self._star:
            return (0,) + left[:-1]
        return self.monoid.mul(left, right)

    # fold_add: inherited left-fold over the fast-path _add above.

    def mul_aligned(self, lefts, rights):
        mul = self._mul
        return [mul(left, right) for left, right in zip(lefts, rights)]


register_kernel(BagSetMonoid, BagSetKernel)
