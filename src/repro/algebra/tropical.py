"""Tropical semirings: ``(N ∪ {∞}, min, +)`` and ``(N, max, ×)``.

The paper's ⊕/⊗ for bag-set maximization are *convolutions over* the
``(N, max, +)`` and ``(N, max, ×)`` semirings (Section 2).  We expose the
scalar semirings both for that connection and as additional genuine-semiring
baselines in the law-census experiment.  The min-plus semiring additionally
computes a natural "cheapest witness" quantity: with cost annotations, it
yields the minimum total cost of a single satisfying assignment.
"""

from __future__ import annotations

import math

from repro.algebra.base import CommutativeSemiring
from repro.core.kernels import (
    ArrayKernel,
    ExactObjectArrayKernel,
    MonoidKernel,
    register_array_kernel,
    register_kernel,
)

Extended = float
"""Naturals extended with ``math.inf``."""


class MinPlusSemiring(CommutativeSemiring[Extended]):
    """``(N ∪ {∞}, min, +)``: shortest-path / cheapest-witness semiring."""

    name = "tropical (min, +)"

    @property
    def zero(self) -> Extended:
        return math.inf

    @property
    def one(self) -> Extended:
        return 0

    def add(self, left: Extended, right: Extended) -> Extended:
        return min(left, right)

    def mul(self, left: Extended, right: Extended) -> Extended:
        return left + right


class MaxTimesSemiring(CommutativeSemiring[int]):
    """``(N, max, ×)``: the scalar carrier underlying Eq. (11)."""

    name = "(max, ×)"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return max(left, right)

    def mul(self, left: int, right: int) -> int:
        return left * right


class MaxPlusSemiring(CommutativeSemiring[Extended]):
    """``(N ∪ {−∞}, max, +)``: the scalar carrier underlying Eq. (10)."""

    name = "(max, +)"

    @property
    def zero(self) -> Extended:
        return -math.inf

    @property
    def one(self) -> Extended:
        return 0

    def add(self, left: Extended, right: Extended) -> Extended:
        return max(left, right)

    def mul(self, left: Extended, right: Extended) -> Extended:
        return left + right


class MinPlusKernel(MonoidKernel[Extended]):
    """Batched ``(min, +)``: ⊕-folds via the ``min`` builtin."""

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else min(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [left + right for left, right in zip(lefts, rights)]


class MaxTimesKernel(MonoidKernel[int]):
    """Batched ``(max, ×)``: ⊕-folds via the ``max`` builtin."""

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else max(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [left * right for left, right in zip(lefts, rights)]


class MaxPlusKernel(MonoidKernel[Extended]):
    """Batched ``(max, +)``."""

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else max(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [left + right for left, right in zip(lefts, rights)]


register_kernel(MinPlusSemiring, MinPlusKernel)
register_kernel(MaxTimesSemiring, MaxTimesKernel)
register_kernel(MaxPlusSemiring, MaxPlusKernel)


class MinPlusArrayKernel(ArrayKernel):
    """Columnar ``(min, +)`` over float columns (``∞`` is the ⊕-identity)."""

    def __init__(self, monoid, np):
        super().__init__(monoid, np)
        self.dtype = np.float64

    def fold_groups(self, annotations, starts):
        return self.np.minimum.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts + rights

    def zero_mask(self, column):
        return self.np.isposinf(column)


class MaxTimesArrayKernel(ExactObjectArrayKernel):
    """Columnar ``(max, ×)`` over exact Python ints (object columns —
    products exceed any fixed-width dtype, and int64 would wrap silently;
    bit-identical to scalar at every magnitude)."""

    def fold_groups(self, annotations, starts):
        return self.np.maximum.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts * rights


class MaxPlusArrayKernel(ArrayKernel):
    """Columnar ``(max, +)`` over float columns (``−∞`` is the ⊕-identity)."""

    def __init__(self, monoid, np):
        super().__init__(monoid, np)
        self.dtype = np.float64

    def fold_groups(self, annotations, starts):
        return self.np.maximum.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts + rights

    def zero_mask(self, column):
        return self.np.isneginf(column)


register_array_kernel(MinPlusSemiring, MinPlusArrayKernel)
register_array_kernel(MaxTimesSemiring, MaxTimesArrayKernel)
register_array_kernel(MaxPlusSemiring, MaxPlusArrayKernel)
