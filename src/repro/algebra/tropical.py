"""Tropical semirings: ``(N ∪ {∞}, min, +)`` and ``(N, max, ×)``.

The paper's ⊕/⊗ for bag-set maximization are *convolutions over* the
``(N, max, +)`` and ``(N, max, ×)`` semirings (Section 2).  We expose the
scalar semirings both for that connection and as additional genuine-semiring
baselines in the law-census experiment.  The min-plus semiring additionally
computes a natural "cheapest witness" quantity: with cost annotations, it
yields the minimum total cost of a single satisfying assignment.
"""

from __future__ import annotations

import math

from repro.algebra.base import CommutativeSemiring

Extended = float
"""Naturals extended with ``math.inf``."""


class MinPlusSemiring(CommutativeSemiring[Extended]):
    """``(N ∪ {∞}, min, +)``: shortest-path / cheapest-witness semiring."""

    name = "tropical (min, +)"

    @property
    def zero(self) -> Extended:
        return math.inf

    @property
    def one(self) -> Extended:
        return 0

    def add(self, left: Extended, right: Extended) -> Extended:
        return min(left, right)

    def mul(self, left: Extended, right: Extended) -> Extended:
        return left + right


class MaxTimesSemiring(CommutativeSemiring[int]):
    """``(N, max, ×)``: the scalar carrier underlying Eq. (11)."""

    name = "(max, ×)"

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    def add(self, left: int, right: int) -> int:
        return max(left, right)

    def mul(self, left: int, right: int) -> int:
        return left * right


class MaxPlusSemiring(CommutativeSemiring[Extended]):
    """``(N ∪ {−∞}, max, +)``: the scalar carrier underlying Eq. (10)."""

    name = "(max, +)"

    @property
    def zero(self) -> Extended:
        return -math.inf

    @property
    def one(self) -> Extended:
        return 0

    def add(self, left: Extended, right: Extended) -> Extended:
        return max(left, right)

    def mul(self, left: Extended, right: Extended) -> Extended:
        return left + right
