"""The Boolean semiring ``({false, true}, ∨, ∧)``.

A genuine semiring: Algorithm 1 instantiated with it computes plain Boolean
query evaluation ``D ⊨ Q`` for hierarchical queries, cross-checked against
the backtracking evaluator.
"""

from __future__ import annotations

from repro.algebra.base import CommutativeSemiring
from repro.core.kernels import (
    ArrayKernel,
    MonoidKernel,
    register_array_kernel,
    register_kernel,
)


class BooleanSemiring(CommutativeSemiring[bool]):
    """Booleans under ``(∨, ∧)``."""

    name = "boolean"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, left: bool, right: bool) -> bool:
        return left or right

    def mul(self, left: bool, right: bool) -> bool:
        return left and right


class BooleanKernel(MonoidKernel[bool]):
    """Batched ``(∨, ∧)`` via the short-circuiting ``any`` builtin."""

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else any(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [left and right for left, right in zip(lefts, rights)]


register_kernel(BooleanSemiring, BooleanKernel)


class BooleanArrayKernel(ArrayKernel):
    """Columnar ``(∨, ∧)`` over bool columns — bit-identical to scalar."""

    def __init__(self, monoid, np):
        super().__init__(monoid, np)
        self.dtype = np.bool_

    def fold_groups(self, annotations, starts):
        return self.np.logical_or.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return self.np.logical_and(lefts, rights)

    def zero_mask(self, column):
        return self.np.logical_not(column)


register_array_kernel(BooleanSemiring, BooleanArrayKernel)
