"""The Boolean semiring ``({false, true}, ∨, ∧)``.

A genuine semiring: Algorithm 1 instantiated with it computes plain Boolean
query evaluation ``D ⊨ Q`` for hierarchical queries, cross-checked against
the backtracking evaluator.
"""

from __future__ import annotations

from repro.algebra.base import CommutativeSemiring
from repro.core.kernels import MonoidKernel, register_kernel


class BooleanSemiring(CommutativeSemiring[bool]):
    """Booleans under ``(∨, ∧)``."""

    name = "boolean"

    @property
    def zero(self) -> bool:
        return False

    @property
    def one(self) -> bool:
        return True

    def add(self, left: bool, right: bool) -> bool:
        return left or right

    def mul(self, left: bool, right: bool) -> bool:
        return left and right


class BooleanKernel(MonoidKernel[bool]):
    """Batched ``(∨, ∧)`` via the short-circuiting ``any`` builtin."""

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else any(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [left and right for left, right in zip(lefts, rights)]


register_kernel(BooleanSemiring, BooleanKernel)
