"""Batched operations over *packed* vector carriers (the 2-D array tier).

The bag-set maximization and Shapley 2-monoids carry fixed-length vectors —
monotone multiplicity profiles (Definition 5.9) and degree-indexed ``#Sat``
polynomials (Definition 5.14).  The columnar execution tier stores a whole
relation's annotations as **one 2-D array**: one row per support tuple, one
column per vector slot (Shapley packs its false/true slices along a middle
axis, giving shape ``(n, 2, w)``).  This module provides the two batched
shapes every vector carrier needs, dtype-polymorphic over ``int64`` (the
guarded fast path) and ``object`` (exact Python ints, any magnitude):

* **sliding-window convolutions** — ⊗ (and the Shapley ⊕) are truncated
  convolutions; instead of an ``O(w²)`` Python loop per *pair*, the batched
  form runs ``O(w)`` numpy operations over *all aligned row pairs at once*:
  for each shift ``j`` the window ``lefts[:, j] · rights[:, :w−j]``
  accumulates (by ``+`` or ``max``) into the output block ``out[:, j:]``;
* **segmented tree folds** — Rule 1 ⊕-folds contiguous row segments of a
  sorted annotation array.  Elementwise ``reduceat`` cannot fold a
  convolution, so the fold halves every segment per round: each round pairs
  adjacent rows of every segment and combines *all pairs of all segments* in
  one batched convolution call, finishing in ``O(log max segment)`` rounds.

Everything here is exact: the ⊕/⊗ arithmetic is integer arithmetic, the
tree re-association is sound because the 2-monoid operations are associative
and commutative, and the ``int64`` fast path is only taken when an a-priori
coefficient bound (computed in unbounded Python ints) proves no slot can
reach the dtype's range — so results are bit-identical to the scalar tier
at every magnitude.
"""

from __future__ import annotations


class PackedOverflow(Exception):
    """An int64 packed operation would exceed the dtype's safe range.

    Raised *before* any lossy arithmetic happens (the a-priori coefficient
    bound failed); callers redo the operation on an exact path — object-dtype
    rows, or the batched kernel's per-row big-int arithmetic.
    """


#: Values at or below this bound are storable in an int64 slot with headroom
#: for one addition (totals slices sum two stored values) — the invariant
#: every int64 packed row maintains.
INT64_SAFE = 2**62 - 1


def max_value(np, rows) -> int:
    """The largest entry of *rows* as an unbounded Python int (0 if empty)."""
    if rows.size == 0:
        return 0
    peak = rows.max()
    return int(peak)


#: Largest ``rows × out-slots × in-slots`` product the window form of
#: :func:`max_conv` may materialize; bigger workloads use the shift loop.
WINDOW_CAP = 1 << 23

#: Left-operand width above which the per-shift loop beats the window form
#: (the window form's work grows with ``w₁`` per output slot; the loop's
#: only with the true pair count).
_WINDOW_WIDTH_CAP = 128


def _windows(np, lefts, rights, width, pad_value=0):
    """Reversed left operand + sliding right windows for the window form.

    Pads the right operand by ``w₁ − 1`` *pad_value* slots on both sides so
    that ``windows[r, i, k] = rights_padded[r, i + k]`` pairs output slot
    ``i`` with ``lefts[r, w₁−1−k]`` — the convolution index transform —
    with out-of-range pairs reading the padding (the reduction's identity:
    0 for Σ and for max-of-products over naturals, a large-negative
    sentinel for max-of-sums).  Only views are created beyond the single
    padded copy.
    """
    n, w1 = lefts.shape[0], lefts.shape[-1]
    padded = np.full(
        (n, rights.shape[-1] + 2 * (w1 - 1)), pad_value, rights.dtype
    )
    if w1 > 1:
        padded[:, w1 - 1 : 1 - w1] = rights
    else:
        padded[:] = rights
    reversed_lefts = lefts[:, ::-1]
    row_stride, slot_stride = padded.strides
    # Raw as_strided beats sliding_window_view's validation overhead; the
    # view is read-only downstream and stays inside the padded buffer
    # (width + w1 − 1 ≤ padded columns by construction).
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(n, width, w1),
        strides=(row_stride, slot_stride, slot_stride),
    )
    return reversed_lefts, windows


def sum_conv(np, lefts, rights, length):
    """Batched truncated ``(+, ×)`` convolution along the last axis.

    ``out[r, i] = Σ_{j+k=i} lefts[r, j] · rights[r, k]`` truncated to
    *length* slots — the Definition 5.14 polynomial product, over every
    aligned row pair at once.  int64 workloads run as **one** ``einsum``
    over sliding windows of the zero-padded right operand (the padding is
    the additive identity, so out-of-range pairs contribute nothing):
    three C-level calls regardless of width.  Exact ``object`` workloads
    use the sliding-shift loop — ``O(width)`` vectorized
    multiply-accumulates over Python ints, exact at any magnitude.
    """
    n = lefts.shape[0]
    w1, w2 = lefts.shape[-1], rights.shape[-1]
    width = min(w1 + w2 - 1, length)
    dtype = np.promote_types(lefts.dtype, rights.dtype)
    if n == 0:
        return np.zeros((n, width), dtype=dtype)
    if dtype != object and w1 <= _WINDOW_WIDTH_CAP:
        reversed_lefts, windows = _windows(np, lefts, rights, width)
        return np.einsum("nk,nik->ni", reversed_lefts, windows)
    out = np.zeros((n, width), dtype=dtype)
    for shift in range(min(w1, width)):
        span = min(w2, width - shift)
        out[:, shift : shift + span] += (
            lefts[:, shift : shift + 1] * rights[:, :span]
        )
    return out


def max_conv(np, lefts, rights, length, product):
    """Batched truncated ``(max, ·)`` convolution along the last axis.

    ``out[r, i] = max_{j+k=i} lefts[r, j] ∘ rights[r, k]`` where ``∘`` is
    ``+`` (Eq. 10, the bag-set ⊕) or ``×`` (Eq. 11, the bag-set ⊗) —
    *product* is ``np.add`` or ``np.multiply``.  Both operands must already
    span the full truncation *length* (bag-set vectors are never trimmed:
    monotonicity makes every slot meaningful).  int64 workloads build the
    sliding windows of :func:`sum_conv` once, apply *product* and
    max-reduce; ``object`` (or very large) workloads use the shift loop.

    Padding: out-of-range pairs must lose every max.  Products of naturals
    pad with 0 (``l · 0 = 0`` never beats an in-range candidate — slot 0 is
    always in range and all values are ≥ 0); sums pad with ``−2⁶²``
    (``l − 2⁶² < 0`` with no int64 wrap, since stored values stay inside
    the guarded range).  Genuine in-range zeros read identically either
    way.
    """
    n = lefts.shape[0]
    width = min(lefts.shape[-1], length)
    if (
        n
        and lefts.dtype != object
        and rights.dtype != object
        and n * width * width <= WINDOW_CAP
    ):
        pad_value = 0 if product is np.multiply else -(2**62)
        reversed_lefts, windows = _windows(
            np, lefts[:, :width], rights[:, :width], width, pad_value
        )
        return product(reversed_lefts[:, None, :], windows).max(axis=2)
    out = product(lefts[:, :1], rights[:, :width])
    if n == 0:
        return out
    for shift in range(1, width):
        span = width - shift
        contribution = product(
            lefts[:, shift : shift + 1], rights[:, :span]
        )
        np.maximum(out[:, shift:], contribution, out=out[:, shift:])
    return out


def pad_rows(np, rows, width):
    """Zero-pad the last axis of *rows* to *width* (no-op when wide enough).

    Sound only for carriers whose trailing slots are implicit zeros (the
    trimmed Shapley polynomials); bag-set rows always span the truncation
    length and never pad.
    """
    if rows.shape[-1] >= width:
        return rows
    shape = rows.shape[:-1] + (width,)
    out = np.zeros(shape, dtype=rows.dtype)
    out[..., : rows.shape[-1]] = rows
    return out


def fold_segments(np, rows, starts, combine, pad, fallback=None):
    """⊕-fold contiguous row segments of *rows* via batched halving.

    *starts* (``intp``, strictly increasing, ``starts[0] == 0``) marks each
    segment's first row; the last segment runs to the end.  Returns one row
    per segment, in segment order.  Each round pairs adjacent rows within
    every segment and hands **all pairs of all segments** to *combine* in a
    single call (one batched convolution), so a fold of ``n`` rows costs
    ``O(log max segment)`` batched operations instead of ``n`` scalar ones.
    *pad(rows, width)* right-pads carried-over odd rows to the combined
    width.  Requires ⊕ associative and commutative with exact arithmetic
    (both vector carriers qualify), under which any association order is
    value-identical to the scalar left fold.

    When *combine* raises :class:`PackedOverflow`, *fallback(rows, starts)*
    finishes the fold from the **current** partially-folded state (fewer,
    wider rows — the cheap int64 rounds already done are kept) and its
    result is returned; without a fallback the overflow propagates.
    """
    n = rows.shape[0]
    if n == 0 or starts.shape[0] == 0:
        return rows
    if starts.shape[0] == 1:
        # One segment (the terminal fold of a plan): adjacent pairs are
        # plain strided slices, no per-segment index bookkeeping needed.
        while n > 1:
            try:
                combined = combine(rows[0 : n - 1 : 2], rows[1:n:2])
            except PackedOverflow:
                if fallback is None:
                    raise
                return fallback(rows, starts)
            if n & 1:
                leftover = pad(rows[n - 1 :], combined.shape[-1])
                combined = np.concatenate([combined, leftover])
            rows, n = combined, combined.shape[0]
        return rows
    counts = np.diff(np.append(starts, n))
    segments = np.arange(counts.shape[0])
    while int(counts.max()) > 1:
        pairs = counts >> 1
        odd = counts & 1
        total_pairs = int(pairs.sum())
        segment_of_pair = np.repeat(segments, pairs)
        rank = np.arange(total_pairs) - np.repeat(
            np.cumsum(pairs) - pairs, pairs
        )
        left_rows = starts[segment_of_pair] + 2 * rank
        try:
            combined = combine(rows[left_rows], rows[left_rows + 1])
        except PackedOverflow:
            if fallback is None:
                raise
            return fallback(rows, starts)
        new_counts = pairs + odd
        new_starts = np.cumsum(new_counts) - new_counts
        out = np.empty(
            (int(new_counts.sum()),) + combined.shape[1:],
            dtype=combined.dtype,
        )
        out[new_starts[segment_of_pair] + rank] = combined
        leftover = np.flatnonzero(odd)
        if leftover.size:
            out[new_starts[leftover] + pairs[leftover]] = pad(
                rows[starts[leftover] + counts[leftover] - 1],
                combined.shape[-1],
            )
        rows, starts, counts = out, new_starts, new_counts
    return rows
