"""The ``#Sat`` 2-monoid for Shapley value computation (Definition 5.14).

Elements are vectors over ``N × B``: ``x(i, b)`` counts the size-``i`` subsets
of the endogenous facts under a formula that make it evaluate to ``b``.  We
store an element as a pair of integer tuples (the ``b = false`` and
``b = true`` slices), truncated at ``length = |Dn| + 1`` entries.

The operations (Eqs. 15 and 16) are convolutions over the budget index
combined with the Boolean operation on the flag:

* ⊕ pairs flags with ∨:  ``zF = xF*yF``;  ``zT = xF*yT + xT*yF + xT*yT``
* ⊗ pairs flags with ∧:  ``zT = xT*yT``;  ``zF = xF*yF + xF*yT + xT*yF``

where ``*`` is ordinary (+, ×) truncated convolution over exact Python ints.

This 2-monoid famously does **not** satisfy annihilation-by-zero:
``a ⊗ 0 ≠ 0`` in general (the paper highlights this right after
Definition 5.14).  Consequently the annotated-relation join in
:mod:`repro.db.annotated` must evaluate tuples present on *either* side of a
Rule 2 merge, not only on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algebra.base import TwoMonoid
from repro.exceptions import AlgebraError


@dataclass(frozen=True)
class SatVector:
    """One element of the Definition 5.14 carrier.

    Attributes
    ----------
    false_counts:
        ``x(i, false)`` for ``i = 0 .. length-1``.
    true_counts:
        ``x(i, true)`` for ``i = 0 .. length-1``.
    """

    false_counts: tuple[int, ...]
    true_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.false_counts) != len(self.true_counts):
            raise AlgebraError(
                "false/true slices of a SatVector must have equal length"
            )

    @property
    def length(self) -> int:
        return len(self.true_counts)

    def sat_count(self, size: int) -> int:
        """``#Sat(k)``: number of size-*size* endogenous subsets satisfying Q."""
        return self.true_counts[size]

    def __str__(self) -> str:
        return f"SatVector(false={self.false_counts}, true={self.true_counts})"


def _convolve(left: Sequence[int], right: Sequence[int], length: int) -> list[int]:
    """(+, ×) convolution truncated to *length* entries (exact ints)."""
    out = [0] * length
    for i, left_value in enumerate(left):
        if not left_value:
            continue
        limit = length - i
        for j in range(min(len(right), limit)):
            right_value = right[j]
            if right_value:
                out[i + j] += left_value * right_value
    return out


def _add_into(target: list[int], extra: Sequence[int]) -> None:
    for index, value in enumerate(extra):
        target[index] += value


class ShapleyMonoid(TwoMonoid[SatVector]):
    """The Definition 5.14 2-monoid with vectors truncated to a fixed length.

    Parameters
    ----------
    length:
        Number of stored budget entries; ``|Dn|`` endogenous facts need
        ``length = |Dn| + 1``.
    """

    name = "#Sat / Shapley"

    def __init__(self, length: int):
        if length < 1:
            raise AlgebraError("ShapleyMonoid needs at least one vector entry")
        self._length = length

    @property
    def length(self) -> int:
        return self._length

    # ------------------------------------------------------------------
    # Distinguished elements
    # ------------------------------------------------------------------
    def _unit(self, true_flag: bool) -> SatVector:
        spike = (1,) + (0,) * (self._length - 1)
        flat = (0,) * self._length
        if true_flag:
            return SatVector(false_counts=flat, true_counts=spike)
        return SatVector(false_counts=spike, true_counts=flat)

    @property
    def zero(self) -> SatVector:
        """0: the empty subset (and only it), evaluating to false."""
        return self._unit(False)

    @property
    def one(self) -> SatVector:
        """1: the empty subset (and only it), evaluating to true — an exogenous fact."""
        return self._unit(True)

    @property
    def star(self) -> SatVector:
        """★: an endogenous fact — false if excluded (size 0), true if included (size 1)."""
        false_counts = (1,) + (0,) * (self._length - 1)
        if self._length == 1:
            true_counts = (0,)
        else:
            true_counts = (0, 1) + (0,) * (self._length - 2)
        return SatVector(false_counts=false_counts, true_counts=true_counts)

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, left: SatVector, right: SatVector) -> SatVector:
        """Eq. (15): flags combine with ∨."""
        self._check(left)
        self._check(right)
        false_counts = _convolve(left.false_counts, right.false_counts, self._length)
        true_counts = _convolve(left.false_counts, right.true_counts, self._length)
        _add_into(true_counts, _convolve(left.true_counts, right.false_counts, self._length))
        _add_into(true_counts, _convolve(left.true_counts, right.true_counts, self._length))
        return SatVector(tuple(false_counts), tuple(true_counts))

    def mul(self, left: SatVector, right: SatVector) -> SatVector:
        """Eq. (16): flags combine with ∧."""
        self._check(left)
        self._check(right)
        true_counts = _convolve(left.true_counts, right.true_counts, self._length)
        false_counts = _convolve(left.false_counts, right.false_counts, self._length)
        _add_into(false_counts, _convolve(left.false_counts, right.true_counts, self._length))
        _add_into(false_counts, _convolve(left.true_counts, right.false_counts, self._length))
        return SatVector(tuple(false_counts), tuple(true_counts))

    @property
    def annihilates(self) -> bool:
        """False: ``a ⊗ 0 ≠ 0`` in general (noted after Definition 5.14)."""
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check(self, vector: SatVector) -> None:
        if vector.length != self._length:
            raise AlgebraError(
                f"SatVector of length {vector.length} used in a "
                f"ShapleyMonoid of length {self._length}"
            )

    def validate(self, vector: SatVector) -> SatVector:
        self._check(vector)
        negatives = [
            v for v in (*vector.false_counts, *vector.true_counts) if v < 0
        ]
        if negatives:
            raise AlgebraError(f"{vector} has negative counts")
        return vector
