"""The ``#Sat`` 2-monoid for Shapley value computation (Definition 5.14).

Elements are vectors over ``N × B``: ``x(i, b)`` counts the size-``i`` subsets
of the endogenous facts under a formula that make it evaluate to ``b``.  We
store an element as a pair of integer tuples (the ``b = false`` and
``b = true`` slices), truncated at ``length = |Dn| + 1`` entries.

The operations (Eqs. 15 and 16) are convolutions over the budget index
combined with the Boolean operation on the flag:

* ⊕ pairs flags with ∨:  ``zF = xF*yF``;  ``zT = xF*yT + xT*yF + xT*yT``
* ⊗ pairs flags with ∧:  ``zT = xT*yT``;  ``zF = xF*yF + xF*yT + xT*yF``

where ``*`` is ordinary (+, ×) truncated convolution over exact Python ints.

This 2-monoid famously does **not** satisfy annihilation-by-zero:
``a ⊗ 0 ≠ 0`` in general (the paper highlights this right after
Definition 5.14).  Consequently the annotated-relation join in
:mod:`repro.db.annotated` must evaluate tuples present on *either* side of a
Rule 2 merge, not only on both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.algebra.base import TwoMonoid
from repro.algebra.packed import (
    INT64_SAFE,
    PackedOverflow,
    fold_segments,
    max_value,
    sum_conv,
)
from repro.core.kernels import (
    MonoidKernel,
    VectorArrayKernel,
    kernel_for,
    register_array_kernel,
    register_kernel,
)
from repro.exceptions import AlgebraError


@dataclass(frozen=True)
class SatVector:
    """One element of the Definition 5.14 carrier.

    Attributes
    ----------
    false_counts:
        ``x(i, false)`` for ``i = 0 .. length-1``.
    true_counts:
        ``x(i, true)`` for ``i = 0 .. length-1``.
    """

    false_counts: tuple[int, ...]
    true_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.false_counts) != len(self.true_counts):
            raise AlgebraError(
                "false/true slices of a SatVector must have equal length"
            )

    @property
    def length(self) -> int:
        return len(self.true_counts)

    def sat_count(self, size: int) -> int:
        """``#Sat(k)``: number of size-*size* endogenous subsets satisfying Q."""
        return self.true_counts[size]

    def __str__(self) -> str:
        return f"SatVector(false={self.false_counts}, true={self.true_counts})"


def _convolve(left: Sequence[int], right: Sequence[int], length: int) -> list[int]:
    """(+, ×) convolution truncated to *length* entries (exact ints)."""
    out = [0] * length
    for i, left_value in enumerate(left):
        if not left_value:
            continue
        limit = length - i
        for j in range(min(len(right), limit)):
            right_value = right[j]
            if right_value:
                out[i + j] += left_value * right_value
    return out


def _add_into(target: list[int], extra: Sequence[int]) -> None:
    for index, value in enumerate(extra):
        target[index] += value


def kron_convolve(
    left: Sequence[int],
    right: Sequence[int],
    length: int,
    *,
    pack=None,
) -> list[int]:
    """(+, ×) convolution truncated to *length* via Kronecker substitution.

    Packs each operand's (non-negative) coefficients into fixed-width byte
    slots of one big Python int, multiplies once, and unpacks the product's
    slots.  The slot width is chosen from the a-priori coefficient bound
    ``min(n1, n2) · max(left) · max(right)`` so no slot ever carries into its
    neighbour, making the result exactly equal to :func:`_convolve`.  One
    CPython big-int multiply is subquadratic (Karatsuba) and runs entirely in
    C, which is what buys the Shapley kernel its speedup over the four
    per-pair Python convolution loops.

    Operands are trimmed to their true degree first (ψ-annotations like ★
    are 2-term polynomials inside length-(|Dn|+1) vectors), so packing and
    unpacking cost scales with the actual support of the product rather than
    the truncation length; degenerate shapes (empty, constant) short-circuit
    without any big-int work.

    Coefficients must be non-negative (the ``#Sat`` carrier guarantees it);
    negative inputs raise ``OverflowError`` during packing.

    *pack* overrides the packing routine ``(values, count, width) -> int``;
    :class:`ShapleyKernel` passes a caching wrapper so big-int operands are
    packed once and reused across fold steps (see :meth:`ShapleyKernel._pack`).
    """
    if pack is None:
        pack = _kron_pack
    n1 = min(len(left), length)
    n2 = min(len(right), length)
    while n1 and not left[n1 - 1]:
        n1 -= 1
    while n2 and not right[n2 - 1]:
        n2 -= 1
    if not n1 or not n2:
        return [0] * length
    if n1 == 1:
        scale = left[0]
        out = [scale * right[j] for j in range(n2)]
    elif n2 == 1:
        scale = right[0]
        out = [scale * left[i] for i in range(n1)]
    else:
        max_left = max(left[:n1])
        max_right = max(right[:n2])
        if not max_left or not max_right:
            return [0] * length
        bound = min(n1, n2) * max_left * max_right
        width = (bound.bit_length() + 7) // 8
        product = pack(left, n1, width) * pack(right, n2, width)
        out_length = min(length, n1 + n2 - 1)
        raw = product.to_bytes((n1 + n2) * width, "little")
        out = [
            int.from_bytes(raw[i * width : (i + 1) * width], "little")
            for i in range(out_length)
        ]
    if len(out) < length:
        out.extend([0] * (length - len(out)))
    return out


def _kron_pack(values: Sequence[int], count: int, width: int) -> int:
    """Pack ``values[:count]`` into *width*-byte little-endian slots."""
    buffer = bytearray(count * width)
    for index in range(count):
        value = values[index]
        if value:
            buffer[index * width : index * width + width] = value.to_bytes(
                width, "little"
            )
    return int.from_bytes(buffer, "little")


class ShapleyMonoid(TwoMonoid[SatVector]):
    """The Definition 5.14 2-monoid with vectors truncated to a fixed length.

    Parameters
    ----------
    length:
        Number of stored budget entries; ``|Dn|`` endogenous facts need
        ``length = |Dn| + 1``.
    """

    name = "#Sat / Shapley"

    def __init__(self, length: int):
        if length < 1:
            raise AlgebraError("ShapleyMonoid needs at least one vector entry")
        self._length = length
        spike = (1,) + (0,) * (length - 1)
        flat = (0,) * length
        self._zero_vector = SatVector(false_counts=spike, true_counts=flat)
        self._one_vector = SatVector(false_counts=flat, true_counts=spike)
        star_true = (0, 1) + (0,) * (length - 2) if length > 1 else (0,)
        self._star_vector = SatVector(false_counts=spike, true_counts=star_true)

    @property
    def length(self) -> int:
        return self._length

    # ------------------------------------------------------------------
    # Distinguished elements
    # ------------------------------------------------------------------
    @property
    def zero(self) -> SatVector:
        """0: the empty subset (and only it), evaluating to false."""
        return self._zero_vector

    @property
    def one(self) -> SatVector:
        """1: the empty subset (and only it), evaluating to true — an exogenous fact."""
        return self._one_vector

    @property
    def star(self) -> SatVector:
        """★: an endogenous fact — false if excluded (size 0), true if included (size 1)."""
        return self._star_vector

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, left: SatVector, right: SatVector) -> SatVector:
        """Eq. (15): flags combine with ∨.

        Identity/absorbing spikes short-circuit without convolving:
        ``0 ⊕ y = y`` and ``1 ⊕ y`` merely ∨-collapses ``y``'s flag slices
        (``zF = 0``, ``zT = yF + yT``).  Exogenous-heavy ψ-annotations hit
        these constantly.
        """
        self._check(left)
        self._check(right)
        if left == self._zero_vector:
            return right
        if right == self._zero_vector:
            return left
        if left == self._one_vector:
            return self._or_collapse(right)
        if right == self._one_vector:
            return self._or_collapse(left)
        false_counts = _convolve(left.false_counts, right.false_counts, self._length)
        true_counts = _convolve(left.false_counts, right.true_counts, self._length)
        _add_into(true_counts, _convolve(left.true_counts, right.false_counts, self._length))
        _add_into(true_counts, _convolve(left.true_counts, right.true_counts, self._length))
        return SatVector(tuple(false_counts), tuple(true_counts))

    def mul(self, left: SatVector, right: SatVector) -> SatVector:
        """Eq. (16): flags combine with ∧.

        Mirror-image fast paths: ``1 ⊗ y = y`` and ``0 ⊗ y`` ∧-collapses
        (``zT = 0``, ``zF = yF + yT``) — note the latter is *not* ``0``; the
        Shapley 2-monoid does not annihilate.
        """
        self._check(left)
        self._check(right)
        if left == self._one_vector:
            return right
        if right == self._one_vector:
            return left
        if left == self._zero_vector:
            return self._and_collapse(right)
        if right == self._zero_vector:
            return self._and_collapse(left)
        true_counts = _convolve(left.true_counts, right.true_counts, self._length)
        false_counts = _convolve(left.false_counts, right.false_counts, self._length)
        _add_into(false_counts, _convolve(left.false_counts, right.true_counts, self._length))
        _add_into(false_counts, _convolve(left.true_counts, right.false_counts, self._length))
        return SatVector(tuple(false_counts), tuple(true_counts))

    def _or_collapse(self, vector: SatVector) -> SatVector:
        """``1 ⊕ vector``: every subset now evaluates to true."""
        merged = tuple(
            f + t for f, t in zip(vector.false_counts, vector.true_counts)
        )
        return SatVector(false_counts=(0,) * self._length, true_counts=merged)

    def _and_collapse(self, vector: SatVector) -> SatVector:
        """``0 ⊗ vector``: every subset now evaluates to false."""
        merged = tuple(
            f + t for f, t in zip(vector.false_counts, vector.true_counts)
        )
        return SatVector(false_counts=merged, true_counts=(0,) * self._length)

    @property
    def annihilates(self) -> bool:
        """False: ``a ⊗ 0 ≠ 0`` in general (noted after Definition 5.14)."""
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check(self, vector: SatVector) -> None:
        if vector.length != self._length:
            raise AlgebraError(
                f"SatVector of length {vector.length} used in a "
                f"ShapleyMonoid of length {self._length}"
            )

    def validate(self, vector: SatVector) -> SatVector:
        self._check(vector)
        negatives = [
            v for v in (*vector.false_counts, *vector.true_counts) if v < 0
        ]
        if negatives:
            raise AlgebraError(f"{vector} has negative counts")
        return vector


#: Bound on each per-kernel reuse cache; on overflow the cache is cleared
#: wholesale (the workloads re-warm it within one fold step).
KERNEL_CACHE_LIMIT = 1 << 14


class ShapleyKernel(MonoidKernel[SatVector]):
    """Batched ``#Sat`` operations via Kronecker-substitution convolution.

    Each scalar ⊕/⊗ needs four truncated convolutions (Eqs. 15/16).  The
    kernel needs only **two** big-int multiplies per operation, using the
    marginal identity ``(xF + xT) * (yF + yT) = zF + zT`` (every output
    subset carries exactly one flag): compute the total ``S`` and one flag
    slice directly, then recover the other slice as ``S − slice`` — exact,
    since all counts are non-negative integers.  Combined with
    :func:`kron_convolve` this turns ``O(n²)`` Python loops into a handful
    of C-level big-int multiplications, while remaining bit-identical to
    the scalar :class:`ShapleyMonoid` path.

    The kernel additionally keeps three bounded reuse caches, keyed by the
    (immutable) operand vectors:

    * ``packed`` — Kronecker-packed big-int operands per ``(coeffs, width)``,
      so a vector appearing in many ⊕/⊗ applications is packed once and its
      big int reused across fold steps instead of re-packed at every ⊕;
    * ``totals`` — the marginal slice ``xF + xT`` per vector;
    * ``products`` — whole ⊕/⊗ results per operand pair (Rule 2 merges
      re-pair the same annotations across many tuples).

    Kernels are memoized on their monoid instance (see
    :func:`repro.core.kernels.kernel_for`), so an
    :class:`~repro.engine.session.EngineSession` that pins one
    :class:`ShapleyMonoid` keeps these caches warm across *every* evaluation
    request it answers — the packed-state reuse the session API exists for.
    All cached values are exact immutable ints/tuples; hits are bit-identical
    to recomputation.
    """

    def __init__(self, monoid: ShapleyMonoid):
        super().__init__(monoid)
        self._length = monoid.length
        self._zero = monoid.zero
        self._one = monoid.one
        self._star = monoid.star
        self._pack_cache: dict[tuple, int] = {}
        self._totals_cache: dict[SatVector, tuple[int, ...]] = {}
        self._product_cache: dict[tuple, SatVector] = {}
        self._pack_hits = 0
        self._pack_misses = 0

    def cache_info(self) -> dict[str, int]:
        """Sizes and hit counters of the reuse caches (tests/diagnostics)."""
        return {
            "packed": len(self._pack_cache),
            "pack_hits": self._pack_hits,
            "pack_misses": self._pack_misses,
            "totals": len(self._totals_cache),
            "products": len(self._product_cache),
        }

    def clear_caches(self) -> None:
        """Drop every cached packed operand, total and product."""
        self._pack_cache.clear()
        self._totals_cache.clear()
        self._product_cache.clear()
        self._pack_hits = 0
        self._pack_misses = 0

    # -- reuse caches ----------------------------------------------------
    def _pack(self, values: Sequence[int], count: int, width: int) -> int:
        """Caching :func:`_kron_pack`: one packing per ``(coeffs, width)``."""
        if isinstance(values, tuple) and len(values) == count:
            coeffs = values
        else:
            coeffs = tuple(values[:count])
        key = (coeffs, width)
        packed = self._pack_cache.get(key)
        if packed is None:
            self._pack_misses += 1
            if len(self._pack_cache) >= KERNEL_CACHE_LIMIT:
                self._pack_cache.clear()
            packed = _kron_pack(coeffs, count, width)
            self._pack_cache[key] = packed
        else:
            self._pack_hits += 1
        return packed

    def _convolve(self, left: Sequence[int], right: Sequence[int]) -> list[int]:
        return kron_convolve(left, right, self._length, pack=self._pack)

    # -- scalar building blocks (with the same spike fast paths) --------
    def _totals(self, vector: SatVector) -> tuple[int, ...]:
        totals = self._totals_cache.get(vector)
        if totals is None:
            if len(self._totals_cache) >= KERNEL_CACHE_LIMIT:
                self._totals_cache.clear()
            totals = tuple(
                f + t for f, t in zip(vector.false_counts, vector.true_counts)
            )
            self._totals_cache[vector] = totals
        return totals

    def _cache_product(self, key: tuple, result: SatVector) -> SatVector:
        if len(self._product_cache) >= KERNEL_CACHE_LIMIT:
            self._product_cache.clear()
        self._product_cache[key] = result
        return result

    def _add(self, left: SatVector, right: SatVector) -> SatVector:
        if left == self._zero:
            return right
        if right == self._zero:
            return left
        monoid: ShapleyMonoid = self.monoid  # type: ignore[assignment]
        if left == self._one:
            return monoid._or_collapse(right)
        if right == self._one:
            return monoid._or_collapse(left)
        key = (True, left, right)
        cached = self._product_cache.get(key)
        if cached is not None:
            return cached
        totals = self._convolve(self._totals(left), self._totals(right))
        false_counts = self._convolve(left.false_counts, right.false_counts)
        true_counts = tuple(s - f for s, f in zip(totals, false_counts))
        return self._cache_product(
            key, SatVector(tuple(false_counts), true_counts)
        )

    def _mul(self, left: SatVector, right: SatVector) -> SatVector:
        if left == self._one:
            return right
        if right == self._one:
            return left
        monoid: ShapleyMonoid = self.monoid  # type: ignore[assignment]
        if left == self._zero:
            return monoid._and_collapse(right)
        if right == self._zero:
            return monoid._and_collapse(left)
        key = (False, left, right)
        cached = self._product_cache.get(key)
        if cached is not None:
            return cached
        totals = self._convolve(self._totals(left), self._totals(right))
        true_counts = self._convolve(left.true_counts, right.true_counts)
        false_counts = tuple(s - t for s, t in zip(totals, true_counts))
        return self._cache_product(
            key, SatVector(false_counts, tuple(true_counts))
        )

    # -- bulk ψ-annotation -----------------------------------------------
    def annotation_is_zero(self):
        """Zero test with identity fast paths for the ψ spikes.

        The Definition 5.15 ψ maps every fact to one of the distinguished
        instances ``1``/``★``/``0`` the monoid hands out, so identity checks
        classify almost every annotation without a deep vector comparison
        (``★`` and ``0`` share their false-slice, so ``== zero`` would walk
        the whole slice before differing).
        """
        zero, one, star = self._zero, self._one, self._star
        return lambda annotation: annotation is zero or (
            annotation is not one
            and annotation is not star
            and annotation == zero
        )

    def _spike_fold(self, ones: int, stars: int) -> SatVector:
        """Closed form for ``1^⊕ones ⊕ ★^⊕stars`` (at least one spike).

        The ⊕-fold of ``b`` stars tracks subsets of ``b`` endogenous facts
        under ∨: a size-``i`` subset is true iff non-empty, so the true slice
        is the binomial row ``C(b, i)`` with the ``i = 0`` entry zeroed and
        the false slice is the 0-spike.  Any ``1`` in the fold makes every
        subset true (``T(i) = C(b, i)``, ``F = 0``).  These are exactly what
        the Eq. 15 convolutions produce, without running them.
        """
        length = self._length
        binomial = [0] * length
        binomial[0] = 1
        value = 1
        for index in range(1, min(stars, length - 1) + 1):
            value = value * (stars - index + 1) // index
            binomial[index] = value
        flat = (0,) * length
        if ones:
            return SatVector(false_counts=flat, true_counts=tuple(binomial))
        binomial[0] = 0
        spike = (1,) + flat[1:]
        return SatVector(false_counts=spike, true_counts=tuple(binomial))

    # -- batch interface -------------------------------------------------
    def fold_add(self, groups):
        add = self._add
        zero = self._zero
        one = self._one
        star = self._star
        out = []
        for group in groups:
            ones = stars = 0
            others = []
            for item in group:
                if item == star:
                    stars += 1
                elif item == one:
                    ones += 1
                elif item == zero:
                    continue
                else:
                    others.append(item)
            if ones or stars:
                result = self._spike_fold(ones, stars)
                for item in others:
                    result = add(result, item)
            elif others:
                iterator = iter(others)
                result = next(iterator)
                for item in iterator:
                    result = add(result, item)
            else:
                result = zero
            out.append(result)
        return out

    def mul_aligned(self, lefts, rights):
        mul = self._mul
        return [mul(left, right) for left, right in zip(lefts, rights)]


register_kernel(ShapleyMonoid, ShapleyKernel)


class ShapleyArrayKernel(VectorArrayKernel):
    """Packed columnar ``#Sat`` polynomials: ``(n, 2, w)`` rows with a
    guarded int64 fast path and the Kronecker kernel as exact fallback.

    A relation's annotations live in one 3-D array — one row per support
    tuple, the false/true slices along the middle axis, and one column per
    degree slot, **trimmed** to the highest degree any row uses (ψ-spikes
    are 2-term polynomials inside length-(|Dn|+1) vectors, so input
    relations pack to width 2, and widths only grow as convolutions
    genuinely need them).

    Both operations use the marginal identity of :class:`ShapleyKernel` —
    compute the totals convolution and one flag slice, recover the other by
    subtraction — so each batched ⊕/⊗ is **two** sliding-window
    convolutions (:func:`repro.algebra.packed.sum_conv`) over all aligned
    rows at once.  The int64 path is taken only when an a-priori coefficient
    bound (``min(w₁, w₂) · max(left) · max(right)``, evaluated in unbounded
    Python ints) stays inside the guarded range; otherwise the operation
    falls back to the **batched Shapley kernel** row by row — the
    Kronecker-substitution big-int multiply with its packed-operand /
    totals / product reuse caches — and re-packs the result (returning to
    int64 whenever coefficients shrink back).  ``#Sat`` counts reach
    ``C(|Dn|, k)`` magnitudes, so the exact leg is routinely exercised by
    the final ⊕-fold; either way every value is an exact integer and the
    tier is bit-identical to the scalar path.
    """

    def __init__(self, monoid: ShapleyMonoid, np):
        super().__init__(monoid, np)
        self._length = monoid.length
        self.dtype = np.int64
        # The registered batched kernel — shared through kernel_for's
        # per-monoid memo, so the exact fallback reuses the same warm
        # packed-operand caches as the batched tier.
        self._batched = kernel_for(monoid)

    # -- conversion ----------------------------------------------------
    def to_array(self, annotations):
        np = self.np
        if not len(annotations):
            return np.empty((0, 2, 1), dtype=np.int64)
        widest = max(vector.length for vector in annotations)
        rows = [
            (
                vector.false_counts + (0,) * (widest - vector.length),
                vector.true_counts + (0,) * (widest - vector.length),
            )
            if vector.length != widest
            else (vector.false_counts, vector.true_counts)
            for vector in annotations
        ]
        try:
            packed = np.array(rows, dtype=np.int64)
            if int(packed.max()) > INT64_SAFE:
                packed = np.array(rows, dtype=object)
        except OverflowError:  # coefficients beyond int64: exact rows
            packed = np.array(rows, dtype=object)
        used = np.flatnonzero((packed != 0).any(axis=(0, 1)))
        width = int(used[-1]) + 1 if used.size else 1
        if width < packed.shape[-1]:
            packed = packed[:, :, :width].copy()
        return packed

    def to_scalar(self, value) -> SatVector:
        false_counts, true_counts = value.tolist()
        padding = (0,) * (self._length - len(false_counts))
        return SatVector(
            tuple(false_counts) + padding, tuple(true_counts) + padding
        )

    def to_scalars(self, column) -> list:
        padding = (0,) * (self._length - column.shape[-1])
        return [
            SatVector(tuple(false) + padding, tuple(true) + padding)
            for false, true in column.tolist()
        ]

    def _trimmed_scalars(self, column) -> list:
        """Decode rows *without* padding to the truncation length.

        The exact-fallback legs hand these straight to the batched kernel,
        whose convolutions accept operands of any degree — trailing zeros
        would only inflate the packing work.  Public decodes
        (:meth:`to_scalars`/:meth:`to_scalar`) always pad: stored carriers
        must satisfy the monoid's length check.
        """
        return [
            SatVector(tuple(false), tuple(true))
            for false, true in column.tolist()
        ]

    def zero_row(self, width):
        row = self.np.zeros((2, width), dtype=self.np.int64)
        row[0, 0] = 1  # the 0-spike: only the empty subset, evaluating false
        return row

    def zero_mask(self, column):
        return (column == self.zero_row(column.shape[-1])).all(axis=(1, 2))

    # -- the guarded int64 convolution path ----------------------------
    def _convolve_rows(self, lefts, rights, true_slice: bool):
        """One batched Eq. 15/16 application, or :class:`PackedOverflow`.

        *true_slice* picks which flag slice convolves directly (the true
        slices for ⊗, the false slices for ⊕); the other one is recovered
        from the totals by exact subtraction.
        """
        np = self.np
        if lefts.dtype == object or rights.dtype == object:
            raise PackedOverflow
        n1, n2 = lefts.shape[-1], rights.shape[-1]
        totals_left = lefts[:, 0, :] + lefts[:, 1, :]
        totals_right = rights[:, 0, :] + rights[:, 1, :]
        bound = (
            min(n1, n2)
            * max_value(np, totals_left)
            * max_value(np, totals_right)
        )
        if bound > INT64_SAFE:
            raise PackedOverflow
        totals = sum_conv(np, totals_left, totals_right, self._length)
        index = 1 if true_slice else 0
        direct = sum_conv(
            np, lefts[:, index, :], rights[:, index, :], self._length
        )
        other = totals - direct
        slices = (other, direct) if true_slice else (direct, other)
        return np.stack(slices, axis=1)

    def _decode_groups(self, annotations, starts):
        scalars = self._trimmed_scalars(annotations)
        edges = [int(start) for start in starts] + [len(scalars)]
        return [
            scalars[first:last] for first, last in zip(edges, edges[1:])
        ]

    def _spike_fold_groups(self, annotations, starts):
        """Closed-form ⊕-fold when every row is a ψ-spike (``0``/``1``/``★``).

        The Definition 5.15 ψ maps every fact to a distinguished spike, so
        input-relation folds reduce to *counting*: two **per-slot**
        ``add.reduceat`` passes count the ``1``s and ``★``s per group, and
        the fold of ``b`` stars (plus any ``1``) is the binomial row
        ``C(b, i)`` — exactly :meth:`ShapleyKernel._spike_fold`, built here
        for all groups at once by a vectorized Pascal recurrence
        (``C(b, i) = C(b, i−1)·(b−i+1)/i``, exact in int64 under the
        a-priori bound).  Returns ``None`` when some row is not a spike or
        the binomials could leave the guarded range (the convolution fold
        takes over).
        """
        np = self.np
        width = annotations.shape[-1]
        if annotations.dtype == object or width > 2:
            return None  # spikes pack to ≤ 2 slots; wider rows ⇒ not spikes
        length = self._length
        zero_row = self.zero_row(width)
        one_row = np.zeros((2, width), dtype=np.int64)
        one_row[1, 0] = 1
        is_zero = (annotations == zero_row).all(axis=(1, 2))
        is_one = (annotations == one_row).all(axis=(1, 2))
        if width == 2 and length > 1:
            star_row = np.zeros((2, width), dtype=np.int64)
            star_row[0, 0] = 1
            star_row[1, 1] = 1
            is_star = (annotations == star_row).all(axis=(1, 2))
        else:
            is_star = np.zeros(annotations.shape[0], dtype=bool)
        if not (is_zero | is_one | is_star).all():
            return None
        ones = np.add.reduceat(is_one.astype(np.int64), starts)
        stars = np.add.reduceat(is_star.astype(np.int64), starts)
        max_stars = int(stars.max())
        out_width = min(max_stars, length - 1) + 1
        bound = math.comb(max_stars, min(out_width - 1, max_stars // 2))
        if bound * out_width > INT64_SAFE:
            return None
        groups = stars.shape[0]
        true_rows = np.zeros((groups, out_width), dtype=np.int64)
        true_rows[:, 0] = 1
        for index in range(1, out_width):
            true_rows[:, index] = (
                true_rows[:, index - 1]
                * np.maximum(stars - index + 1, 0)
                // index
            )
        has_one = ones > 0
        false_rows = np.zeros((groups, out_width), dtype=np.int64)
        false_rows[:, 0] = ~has_one  # the 0-spike of one-less groups
        true_rows[:, 0] = has_one  # C(b, 0) counts only when a 1 is present
        return np.stack([false_rows, true_rows], axis=1)

    # -- the two batched operations ------------------------------------
    def fold_groups(self, annotations, starts):
        np = self.np
        if annotations.shape[0]:
            folded = self._spike_fold_groups(annotations, starts)
            if folded is not None:
                return folded

        def combine(lefts, rights):
            return self._convolve_rows(lefts, rights, true_slice=False)

        def exact_fold(rows, segment_starts):
            # Coefficients left the guarded int64 range: finish from the
            # partially-folded rows through the Kronecker kernel (and its
            # warm packed-operand caches), one group at a time.
            groups = self._decode_groups(rows, segment_starts)
            return self.to_array(self._batched.fold_add(groups))

        return fold_segments(
            np, annotations, starts, combine, self.pad_rows, exact_fold
        )

    def mul_arrays(self, lefts, rights):
        try:
            return self._convolve_rows(lefts, rights, true_slice=True)
        except PackedOverflow:
            products = self._batched.mul_aligned(
                self._trimmed_scalars(lefts), self._trimmed_scalars(rights)
            )
            return self.to_array(products)


register_array_kernel(ShapleyMonoid, ShapleyArrayKernel)
