"""The ``#Sat`` 2-monoid for Shapley value computation (Definition 5.14).

Elements are vectors over ``N × B``: ``x(i, b)`` counts the size-``i`` subsets
of the endogenous facts under a formula that make it evaluate to ``b``.  We
store an element as a pair of integer tuples (the ``b = false`` and
``b = true`` slices), truncated at ``length = |Dn| + 1`` entries.

The operations (Eqs. 15 and 16) are convolutions over the budget index
combined with the Boolean operation on the flag:

* ⊕ pairs flags with ∨:  ``zF = xF*yF``;  ``zT = xF*yT + xT*yF + xT*yT``
* ⊗ pairs flags with ∧:  ``zT = xT*yT``;  ``zF = xF*yF + xF*yT + xT*yF``

where ``*`` is ordinary (+, ×) truncated convolution over exact Python ints.

This 2-monoid famously does **not** satisfy annihilation-by-zero:
``a ⊗ 0 ≠ 0`` in general (the paper highlights this right after
Definition 5.14).  Consequently the annotated-relation join in
:mod:`repro.db.annotated` must evaluate tuples present on *either* side of a
Rule 2 merge, not only on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.algebra.base import TwoMonoid
from repro.core.kernels import MonoidKernel, register_kernel
from repro.exceptions import AlgebraError


@dataclass(frozen=True)
class SatVector:
    """One element of the Definition 5.14 carrier.

    Attributes
    ----------
    false_counts:
        ``x(i, false)`` for ``i = 0 .. length-1``.
    true_counts:
        ``x(i, true)`` for ``i = 0 .. length-1``.
    """

    false_counts: tuple[int, ...]
    true_counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.false_counts) != len(self.true_counts):
            raise AlgebraError(
                "false/true slices of a SatVector must have equal length"
            )

    @property
    def length(self) -> int:
        return len(self.true_counts)

    def sat_count(self, size: int) -> int:
        """``#Sat(k)``: number of size-*size* endogenous subsets satisfying Q."""
        return self.true_counts[size]

    def __str__(self) -> str:
        return f"SatVector(false={self.false_counts}, true={self.true_counts})"


def _convolve(left: Sequence[int], right: Sequence[int], length: int) -> list[int]:
    """(+, ×) convolution truncated to *length* entries (exact ints)."""
    out = [0] * length
    for i, left_value in enumerate(left):
        if not left_value:
            continue
        limit = length - i
        for j in range(min(len(right), limit)):
            right_value = right[j]
            if right_value:
                out[i + j] += left_value * right_value
    return out


def _add_into(target: list[int], extra: Sequence[int]) -> None:
    for index, value in enumerate(extra):
        target[index] += value


def kron_convolve(
    left: Sequence[int],
    right: Sequence[int],
    length: int,
    *,
    pack=None,
) -> list[int]:
    """(+, ×) convolution truncated to *length* via Kronecker substitution.

    Packs each operand's (non-negative) coefficients into fixed-width byte
    slots of one big Python int, multiplies once, and unpacks the product's
    slots.  The slot width is chosen from the a-priori coefficient bound
    ``min(n1, n2) · max(left) · max(right)`` so no slot ever carries into its
    neighbour, making the result exactly equal to :func:`_convolve`.  One
    CPython big-int multiply is subquadratic (Karatsuba) and runs entirely in
    C, which is what buys the Shapley kernel its speedup over the four
    per-pair Python convolution loops.

    Operands are trimmed to their true degree first (ψ-annotations like ★
    are 2-term polynomials inside length-(|Dn|+1) vectors), so packing and
    unpacking cost scales with the actual support of the product rather than
    the truncation length; degenerate shapes (empty, constant) short-circuit
    without any big-int work.

    Coefficients must be non-negative (the ``#Sat`` carrier guarantees it);
    negative inputs raise ``OverflowError`` during packing.

    *pack* overrides the packing routine ``(values, count, width) -> int``;
    :class:`ShapleyKernel` passes a caching wrapper so big-int operands are
    packed once and reused across fold steps (see :meth:`ShapleyKernel._pack`).
    """
    if pack is None:
        pack = _kron_pack
    n1 = min(len(left), length)
    n2 = min(len(right), length)
    while n1 and not left[n1 - 1]:
        n1 -= 1
    while n2 and not right[n2 - 1]:
        n2 -= 1
    if not n1 or not n2:
        return [0] * length
    if n1 == 1:
        scale = left[0]
        out = [scale * right[j] for j in range(n2)]
    elif n2 == 1:
        scale = right[0]
        out = [scale * left[i] for i in range(n1)]
    else:
        max_left = max(left[:n1])
        max_right = max(right[:n2])
        if not max_left or not max_right:
            return [0] * length
        bound = min(n1, n2) * max_left * max_right
        width = (bound.bit_length() + 7) // 8
        product = pack(left, n1, width) * pack(right, n2, width)
        out_length = min(length, n1 + n2 - 1)
        raw = product.to_bytes((n1 + n2) * width, "little")
        out = [
            int.from_bytes(raw[i * width : (i + 1) * width], "little")
            for i in range(out_length)
        ]
    if len(out) < length:
        out.extend([0] * (length - len(out)))
    return out


def _kron_pack(values: Sequence[int], count: int, width: int) -> int:
    """Pack ``values[:count]`` into *width*-byte little-endian slots."""
    buffer = bytearray(count * width)
    for index in range(count):
        value = values[index]
        if value:
            buffer[index * width : index * width + width] = value.to_bytes(
                width, "little"
            )
    return int.from_bytes(buffer, "little")


class ShapleyMonoid(TwoMonoid[SatVector]):
    """The Definition 5.14 2-monoid with vectors truncated to a fixed length.

    Parameters
    ----------
    length:
        Number of stored budget entries; ``|Dn|`` endogenous facts need
        ``length = |Dn| + 1``.
    """

    name = "#Sat / Shapley"

    def __init__(self, length: int):
        if length < 1:
            raise AlgebraError("ShapleyMonoid needs at least one vector entry")
        self._length = length
        spike = (1,) + (0,) * (length - 1)
        flat = (0,) * length
        self._zero_vector = SatVector(false_counts=spike, true_counts=flat)
        self._one_vector = SatVector(false_counts=flat, true_counts=spike)
        star_true = (0, 1) + (0,) * (length - 2) if length > 1 else (0,)
        self._star_vector = SatVector(false_counts=spike, true_counts=star_true)

    @property
    def length(self) -> int:
        return self._length

    # ------------------------------------------------------------------
    # Distinguished elements
    # ------------------------------------------------------------------
    @property
    def zero(self) -> SatVector:
        """0: the empty subset (and only it), evaluating to false."""
        return self._zero_vector

    @property
    def one(self) -> SatVector:
        """1: the empty subset (and only it), evaluating to true — an exogenous fact."""
        return self._one_vector

    @property
    def star(self) -> SatVector:
        """★: an endogenous fact — false if excluded (size 0), true if included (size 1)."""
        return self._star_vector

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def add(self, left: SatVector, right: SatVector) -> SatVector:
        """Eq. (15): flags combine with ∨.

        Identity/absorbing spikes short-circuit without convolving:
        ``0 ⊕ y = y`` and ``1 ⊕ y`` merely ∨-collapses ``y``'s flag slices
        (``zF = 0``, ``zT = yF + yT``).  Exogenous-heavy ψ-annotations hit
        these constantly.
        """
        self._check(left)
        self._check(right)
        if left == self._zero_vector:
            return right
        if right == self._zero_vector:
            return left
        if left == self._one_vector:
            return self._or_collapse(right)
        if right == self._one_vector:
            return self._or_collapse(left)
        false_counts = _convolve(left.false_counts, right.false_counts, self._length)
        true_counts = _convolve(left.false_counts, right.true_counts, self._length)
        _add_into(true_counts, _convolve(left.true_counts, right.false_counts, self._length))
        _add_into(true_counts, _convolve(left.true_counts, right.true_counts, self._length))
        return SatVector(tuple(false_counts), tuple(true_counts))

    def mul(self, left: SatVector, right: SatVector) -> SatVector:
        """Eq. (16): flags combine with ∧.

        Mirror-image fast paths: ``1 ⊗ y = y`` and ``0 ⊗ y`` ∧-collapses
        (``zT = 0``, ``zF = yF + yT``) — note the latter is *not* ``0``; the
        Shapley 2-monoid does not annihilate.
        """
        self._check(left)
        self._check(right)
        if left == self._one_vector:
            return right
        if right == self._one_vector:
            return left
        if left == self._zero_vector:
            return self._and_collapse(right)
        if right == self._zero_vector:
            return self._and_collapse(left)
        true_counts = _convolve(left.true_counts, right.true_counts, self._length)
        false_counts = _convolve(left.false_counts, right.false_counts, self._length)
        _add_into(false_counts, _convolve(left.false_counts, right.true_counts, self._length))
        _add_into(false_counts, _convolve(left.true_counts, right.false_counts, self._length))
        return SatVector(tuple(false_counts), tuple(true_counts))

    def _or_collapse(self, vector: SatVector) -> SatVector:
        """``1 ⊕ vector``: every subset now evaluates to true."""
        merged = tuple(
            f + t for f, t in zip(vector.false_counts, vector.true_counts)
        )
        return SatVector(false_counts=(0,) * self._length, true_counts=merged)

    def _and_collapse(self, vector: SatVector) -> SatVector:
        """``0 ⊗ vector``: every subset now evaluates to false."""
        merged = tuple(
            f + t for f, t in zip(vector.false_counts, vector.true_counts)
        )
        return SatVector(false_counts=merged, true_counts=(0,) * self._length)

    @property
    def annihilates(self) -> bool:
        """False: ``a ⊗ 0 ≠ 0`` in general (noted after Definition 5.14)."""
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _check(self, vector: SatVector) -> None:
        if vector.length != self._length:
            raise AlgebraError(
                f"SatVector of length {vector.length} used in a "
                f"ShapleyMonoid of length {self._length}"
            )

    def validate(self, vector: SatVector) -> SatVector:
        self._check(vector)
        negatives = [
            v for v in (*vector.false_counts, *vector.true_counts) if v < 0
        ]
        if negatives:
            raise AlgebraError(f"{vector} has negative counts")
        return vector


#: Bound on each per-kernel reuse cache; on overflow the cache is cleared
#: wholesale (the workloads re-warm it within one fold step).
KERNEL_CACHE_LIMIT = 1 << 14


class ShapleyKernel(MonoidKernel[SatVector]):
    """Batched ``#Sat`` operations via Kronecker-substitution convolution.

    Each scalar ⊕/⊗ needs four truncated convolutions (Eqs. 15/16).  The
    kernel needs only **two** big-int multiplies per operation, using the
    marginal identity ``(xF + xT) * (yF + yT) = zF + zT`` (every output
    subset carries exactly one flag): compute the total ``S`` and one flag
    slice directly, then recover the other slice as ``S − slice`` — exact,
    since all counts are non-negative integers.  Combined with
    :func:`kron_convolve` this turns ``O(n²)`` Python loops into a handful
    of C-level big-int multiplications, while remaining bit-identical to
    the scalar :class:`ShapleyMonoid` path.

    The kernel additionally keeps three bounded reuse caches, keyed by the
    (immutable) operand vectors:

    * ``packed`` — Kronecker-packed big-int operands per ``(coeffs, width)``,
      so a vector appearing in many ⊕/⊗ applications is packed once and its
      big int reused across fold steps instead of re-packed at every ⊕;
    * ``totals`` — the marginal slice ``xF + xT`` per vector;
    * ``products`` — whole ⊕/⊗ results per operand pair (Rule 2 merges
      re-pair the same annotations across many tuples).

    Kernels are memoized on their monoid instance (see
    :func:`repro.core.kernels.kernel_for`), so an
    :class:`~repro.engine.session.EngineSession` that pins one
    :class:`ShapleyMonoid` keeps these caches warm across *every* evaluation
    request it answers — the packed-state reuse the session API exists for.
    All cached values are exact immutable ints/tuples; hits are bit-identical
    to recomputation.
    """

    def __init__(self, monoid: ShapleyMonoid):
        super().__init__(monoid)
        self._length = monoid.length
        self._zero = monoid.zero
        self._one = monoid.one
        self._star = monoid.star
        self._pack_cache: dict[tuple, int] = {}
        self._totals_cache: dict[SatVector, tuple[int, ...]] = {}
        self._product_cache: dict[tuple, SatVector] = {}
        self._pack_hits = 0
        self._pack_misses = 0

    def cache_info(self) -> dict[str, int]:
        """Sizes and hit counters of the reuse caches (tests/diagnostics)."""
        return {
            "packed": len(self._pack_cache),
            "pack_hits": self._pack_hits,
            "pack_misses": self._pack_misses,
            "totals": len(self._totals_cache),
            "products": len(self._product_cache),
        }

    def clear_caches(self) -> None:
        """Drop every cached packed operand, total and product."""
        self._pack_cache.clear()
        self._totals_cache.clear()
        self._product_cache.clear()
        self._pack_hits = 0
        self._pack_misses = 0

    # -- reuse caches ----------------------------------------------------
    def _pack(self, values: Sequence[int], count: int, width: int) -> int:
        """Caching :func:`_kron_pack`: one packing per ``(coeffs, width)``."""
        if isinstance(values, tuple) and len(values) == count:
            coeffs = values
        else:
            coeffs = tuple(values[:count])
        key = (coeffs, width)
        packed = self._pack_cache.get(key)
        if packed is None:
            self._pack_misses += 1
            if len(self._pack_cache) >= KERNEL_CACHE_LIMIT:
                self._pack_cache.clear()
            packed = _kron_pack(coeffs, count, width)
            self._pack_cache[key] = packed
        else:
            self._pack_hits += 1
        return packed

    def _convolve(self, left: Sequence[int], right: Sequence[int]) -> list[int]:
        return kron_convolve(left, right, self._length, pack=self._pack)

    # -- scalar building blocks (with the same spike fast paths) --------
    def _totals(self, vector: SatVector) -> tuple[int, ...]:
        totals = self._totals_cache.get(vector)
        if totals is None:
            if len(self._totals_cache) >= KERNEL_CACHE_LIMIT:
                self._totals_cache.clear()
            totals = tuple(
                f + t for f, t in zip(vector.false_counts, vector.true_counts)
            )
            self._totals_cache[vector] = totals
        return totals

    def _cache_product(self, key: tuple, result: SatVector) -> SatVector:
        if len(self._product_cache) >= KERNEL_CACHE_LIMIT:
            self._product_cache.clear()
        self._product_cache[key] = result
        return result

    def _add(self, left: SatVector, right: SatVector) -> SatVector:
        if left == self._zero:
            return right
        if right == self._zero:
            return left
        monoid: ShapleyMonoid = self.monoid  # type: ignore[assignment]
        if left == self._one:
            return monoid._or_collapse(right)
        if right == self._one:
            return monoid._or_collapse(left)
        key = (True, left, right)
        cached = self._product_cache.get(key)
        if cached is not None:
            return cached
        totals = self._convolve(self._totals(left), self._totals(right))
        false_counts = self._convolve(left.false_counts, right.false_counts)
        true_counts = tuple(s - f for s, f in zip(totals, false_counts))
        return self._cache_product(
            key, SatVector(tuple(false_counts), true_counts)
        )

    def _mul(self, left: SatVector, right: SatVector) -> SatVector:
        if left == self._one:
            return right
        if right == self._one:
            return left
        monoid: ShapleyMonoid = self.monoid  # type: ignore[assignment]
        if left == self._zero:
            return monoid._and_collapse(right)
        if right == self._zero:
            return monoid._and_collapse(left)
        key = (False, left, right)
        cached = self._product_cache.get(key)
        if cached is not None:
            return cached
        totals = self._convolve(self._totals(left), self._totals(right))
        true_counts = self._convolve(left.true_counts, right.true_counts)
        false_counts = tuple(s - t for s, t in zip(totals, true_counts))
        return self._cache_product(
            key, SatVector(false_counts, tuple(true_counts))
        )

    # -- bulk ψ-annotation -----------------------------------------------
    def annotation_is_zero(self):
        """Zero test with identity fast paths for the ψ spikes.

        The Definition 5.15 ψ maps every fact to one of the distinguished
        instances ``1``/``★``/``0`` the monoid hands out, so identity checks
        classify almost every annotation without a deep vector comparison
        (``★`` and ``0`` share their false-slice, so ``== zero`` would walk
        the whole slice before differing).
        """
        zero, one, star = self._zero, self._one, self._star
        return lambda annotation: annotation is zero or (
            annotation is not one
            and annotation is not star
            and annotation == zero
        )

    def _spike_fold(self, ones: int, stars: int) -> SatVector:
        """Closed form for ``1^⊕ones ⊕ ★^⊕stars`` (at least one spike).

        The ⊕-fold of ``b`` stars tracks subsets of ``b`` endogenous facts
        under ∨: a size-``i`` subset is true iff non-empty, so the true slice
        is the binomial row ``C(b, i)`` with the ``i = 0`` entry zeroed and
        the false slice is the 0-spike.  Any ``1`` in the fold makes every
        subset true (``T(i) = C(b, i)``, ``F = 0``).  These are exactly what
        the Eq. 15 convolutions produce, without running them.
        """
        length = self._length
        binomial = [0] * length
        binomial[0] = 1
        value = 1
        for index in range(1, min(stars, length - 1) + 1):
            value = value * (stars - index + 1) // index
            binomial[index] = value
        flat = (0,) * length
        if ones:
            return SatVector(false_counts=flat, true_counts=tuple(binomial))
        binomial[0] = 0
        spike = (1,) + flat[1:]
        return SatVector(false_counts=spike, true_counts=tuple(binomial))

    # -- batch interface -------------------------------------------------
    def fold_add(self, groups):
        add = self._add
        zero = self._zero
        one = self._one
        star = self._star
        out = []
        for group in groups:
            ones = stars = 0
            others = []
            for item in group:
                if item == star:
                    stars += 1
                elif item == one:
                    ones += 1
                elif item == zero:
                    continue
                else:
                    others.append(item)
            if ones or stars:
                result = self._spike_fold(ones, stars)
                for item in others:
                    result = add(result, item)
            elif others:
                iterator = iter(others)
                result = next(iterator)
                for item in iterator:
                    result = add(result, item)
            else:
                result = zero
            out.append(result)
        return out

    def mul_aligned(self, lefts, rights):
        mul = self._mul
        return [mul(left, right) for left, right in zip(lefts, rights)]


register_kernel(ShapleyMonoid, ShapleyKernel)
