"""The probability 2-monoid (Definition 5.7).

The carrier is the probability interval ``[0, 1]`` with

* ``p1 ⊗ p2 = p1 · p2`` — probability of the conjunction of independent events,
* ``p1 ⊕ p2 = 1 − (1 − p1)(1 − p2)`` — probability of their disjunction.

``⊗`` does *not* distribute over ``⊕`` (e.g. ``p ⊗ (q ⊕ q) ≠ (p⊗q) ⊕ (p⊗q)``),
so this is a 2-monoid and not a semiring.  Instantiating Algorithm 1 with it
recovers the Dalvi–Suciu safe-plan algorithm for hierarchical SJF-BCQs on
tuple-independent probabilistic databases (Theorem 5.8).
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Rational

from repro.algebra.base import TwoMonoid
from repro.core.kernels import (
    ArrayKernel,
    MonoidKernel,
    register_array_kernel,
    register_kernel,
)
from repro.exceptions import AlgebraError

Probability = float | Fraction


class ProbabilityMonoid(TwoMonoid[Probability]):
    """Float-valued probability 2-monoid with tolerance-based equality."""

    name = "probability"

    def __init__(self, tolerance: float = 1e-12):
        self._tolerance = tolerance

    @property
    def zero(self) -> Probability:
        return 0.0

    @property
    def one(self) -> Probability:
        return 1.0

    def add(self, left: Probability, right: Probability) -> Probability:
        return left + right - left * right

    def mul(self, left: Probability, right: Probability) -> Probability:
        return left * right

    def eq(self, left: Probability, right: Probability) -> bool:
        return abs(left - right) <= self._tolerance

    @property
    def annihilates(self) -> bool:
        return True

    def validate(self, value: Probability) -> Probability:
        """Check that *value* is a probability in ``[0, 1]``."""
        if not 0 <= value <= 1:
            raise AlgebraError(f"{value!r} is not a probability in [0, 1]")
        return value


class ExactProbabilityMonoid(ProbabilityMonoid):
    """Probability 2-monoid over exact rationals (:class:`fractions.Fraction`).

    Used by tests to compare the unified algorithm against brute-force
    possible-world enumeration with zero rounding error.
    """

    name = "probability (exact)"

    def __init__(self) -> None:
        super().__init__(tolerance=0.0)

    @property
    def zero(self) -> Fraction:
        return Fraction(0)

    @property
    def one(self) -> Fraction:
        return Fraction(1)

    def eq(self, left: Probability, right: Probability) -> bool:
        return left == right

    def validate(self, value: Probability) -> Fraction:
        if not isinstance(value, Rational):
            raise AlgebraError(
                f"exact probabilities must be rational, got {type(value).__name__}"
            )
        fraction = Fraction(value)
        if not 0 <= fraction <= 1:
            raise AlgebraError(f"{value!r} is not a probability in [0, 1]")
        return fraction


class ProbabilityKernel(MonoidKernel[Probability]):
    """Batched probability operations.

    ⊕-folds use the closed form ``1 − Π(1 − pᵢ)`` (one C-level product
    instead of three Python arithmetic ops per element); ⊗ batches are plain
    products.  Agrees with the scalar fold up to floating-point
    re-association (well inside the monoid's equality tolerance), and is
    exact for the rational subclass, whose inherited ``add``/``mul`` make it
    resolve to this same kernel.
    """

    def fold_add(self, groups):
        out = []
        one = self.monoid.one
        for group in groups:
            if len(group) == 1:
                out.append(group[0])
            else:
                out.append(one - math.prod(one - p for p in group))
        return out

    def mul_aligned(self, lefts, rights):
        return [left * right for left, right in zip(lefts, rights)]


register_kernel(ProbabilityMonoid, ProbabilityKernel)


class ProbabilityArrayKernel(ArrayKernel):
    """Columnar probabilities: ⊕-folds as ``1 − Π(1−pᵢ)`` per segment.

    ``multiply.reduceat`` over the complement column runs every group
    product in C; segment order is the columnar key sort, so float results
    agree with the scalar fold up to re-association (inside the monoid's
    equality tolerance, like the batched kernel).  The ⊕-identity mask
    mirrors the scalar tolerance test ``|p| ≤ tol``.
    """

    def __init__(self, monoid, np):
        super().__init__(monoid, np)
        self.dtype = np.float64

    def fold_groups(self, annotations, starts):
        return 1.0 - self.np.multiply.reduceat(1.0 - annotations, starts)

    def mul_arrays(self, lefts, rights):
        return lefts * rights

    def zero_mask(self, column):
        return self.np.absolute(column) <= self.monoid._tolerance


def _probability_array_kernel(monoid, np):
    # The exact-rational subclass inherits add/mul but carries Fractions —
    # not a flat float column; it stays on the batched kernel.
    if not isinstance(monoid.zero, float):
        return None
    return ProbabilityArrayKernel(monoid, np)


register_array_kernel(ProbabilityMonoid, _probability_array_kernel)
