"""The non-negative real semiring ``(R≥0, +, ×)``.

A genuine commutative semiring used by the *expected answer count*
instantiation (:mod:`repro.problems.expected_count`): annotating each fact
with its marginal probability and evaluating with ``(+, ×)`` computes
``E[Q(D)]`` — the expected number of satisfying assignments over possible
worlds — by linearity of expectation and tuple independence.

Because this structure *does* distribute, the computation is sound for every
acyclic query, not just hierarchical ones; the library exposes it through the
hierarchical engine and uses it in tests/benches to dramatize the
semiring-vs-2-monoid boundary: the same fact annotations under the
(non-distributive) Definition 5.7 2-monoid give ``P[Q]``, which is hard for
``q_nh``, while ``E[Q(D)]`` stays easy.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra.base import CommutativeSemiring
from repro.algebra.counting import SumProductArrayKernel, SumProductKernel
from repro.core.kernels import register_array_kernel, register_kernel
from repro.exceptions import AlgebraError

Real = float | Fraction


class RealSemiring(CommutativeSemiring[Real]):
    """Non-negative reals (or exact rationals) under ``(+, ×)``."""

    name = "reals (R≥0, +, ×)"

    def __init__(self, exact: bool = False):
        self._exact = exact

    @property
    def zero(self) -> Real:
        return Fraction(0) if self._exact else 0.0

    @property
    def one(self) -> Real:
        return Fraction(1) if self._exact else 1.0

    def add(self, left: Real, right: Real) -> Real:
        return left + right

    def mul(self, left: Real, right: Real) -> Real:
        return left * right

    def validate(self, value: Real) -> Real:
        if value < 0:
            raise AlgebraError(f"{value!r} is negative")
        return value


# Same carrier shape as the counting semiring: batched sum/product.
register_kernel(RealSemiring, SumProductKernel)


def _real_array_kernel(monoid, np):
    # Exact-rational instances carry Fractions — no flat float column.
    if not isinstance(monoid.zero, float):
        return None
    return SumProductArrayKernel(monoid, np, np.float64)


register_array_kernel(RealSemiring, _real_array_kernel)
