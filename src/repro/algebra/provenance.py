"""Provenance trees and the universal provenance 2-monoid (Defs. 6.1, 6.2).

A provenance tree is a rooted tree whose leaves carry symbols (fact
identifiers) or the constants ``true``/``false``, and whose internal nodes
are labeled ∧ or ∨.  Children are unordered (⊕/⊗ commutativity) and a child
sharing its parent's label is merged into the parent (associativity); we
additionally apply the footnote-8 constant simplifications (drop ``true``
under ∧, collapse ∨ to ``true`` when it contains ``true``, dually for
``false``) so that the identity laws hold on the nose.

The provenance 2-monoid is *universal* (Theorem 6.4): running Algorithm 1
with it and then mapping the resulting tree through a structure-respecting
function φ gives the same answer as running Algorithm 1 directly in the
target 2-monoid — provided the trees are decomposable with disjoint supports,
which Lemma 6.3 guarantees for hierarchical queries.  :func:`evaluate_tree`
implements the φ side, giving the test suite an independent evaluation path
for every problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import cached_property
from typing import Callable, Hashable, TypeVar

from repro.algebra.base import TwoMonoid
from repro.exceptions import AlgebraError

Symbol = Hashable
K = TypeVar("K")


class NodeKind(Enum):
    """The label of a provenance-tree node."""

    LEAF = "leaf"
    AND = "∧"
    OR = "∨"


_TRUE_SENTINEL = ("__prov_true__",)
_FALSE_SENTINEL = ("__prov_false__",)


@dataclass(frozen=True)
class ProvTree:
    """An immutable, canonicalized provenance tree.

    Use the module-level constructors :func:`leaf`, :func:`true_tree`,
    :func:`false_tree`, :func:`disjoin` and :func:`conjoin` instead of calling
    the dataclass directly; they maintain the canonical form.
    """

    kind: NodeKind
    symbol: Symbol | None = None
    children: tuple["ProvTree", ...] = ()

    # ------------------------------------------------------------------
    # Constants
    # ------------------------------------------------------------------
    @property
    def is_true(self) -> bool:
        return self.kind is NodeKind.LEAF and self.symbol == _TRUE_SENTINEL

    @property
    def is_false(self) -> bool:
        return self.kind is NodeKind.LEAF and self.symbol == _FALSE_SENTINEL

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @cached_property
    def support(self) -> frozenset[Symbol]:
        """All leaf symbols, excluding the ``true``/``false`` constants (Def. 6.1)."""
        if self.kind is NodeKind.LEAF:
            if self.is_true or self.is_false:
                return frozenset()
            return frozenset({self.symbol})
        return frozenset(s for child in self.children for s in child.support)

    @cached_property
    def leaf_count(self) -> int:
        if self.kind is NodeKind.LEAF:
            return 0 if (self.is_true or self.is_false) else 1
        return sum(child.leaf_count for child in self.children)

    @property
    def is_decomposable(self) -> bool:
        """True when all leaf symbols are distinct (Definition 6.1).

        In canonical form the constants never appear below the root, so only
        symbol distinctness needs checking.
        """
        return len(self.support) == self.leaf_count

    def _sort_key(self) -> tuple:
        if self.kind is NodeKind.LEAF:
            return (0, repr(self.symbol))
        return (
            1 if self.kind is NodeKind.AND else 2,
            tuple(child._sort_key() for child in self.children),
        )

    def __str__(self) -> str:
        if self.is_true:
            return "true"
        if self.is_false:
            return "false"
        if self.kind is NodeKind.LEAF:
            return str(self.symbol)
        joiner = " ∧ " if self.kind is NodeKind.AND else " ∨ "
        return "(" + joiner.join(str(child) for child in self.children) + ")"


def leaf(symbol: Symbol) -> ProvTree:
    """A single-leaf tree carrying *symbol* (typically a fact)."""
    if symbol in (_TRUE_SENTINEL, _FALSE_SENTINEL):
        raise AlgebraError("reserved sentinel symbols cannot be used as leaves")
    return ProvTree(NodeKind.LEAF, symbol=symbol)


def true_tree() -> ProvTree:
    """The constant ``true`` tree — the ⊗-identity of the provenance 2-monoid."""
    return ProvTree(NodeKind.LEAF, symbol=_TRUE_SENTINEL)


def false_tree() -> ProvTree:
    """The constant ``false`` tree — the ⊕-identity of the provenance 2-monoid."""
    return ProvTree(NodeKind.LEAF, symbol=_FALSE_SENTINEL)


def _combine(
    kind: NodeKind,
    left: ProvTree,
    right: ProvTree,
    absorbing: Callable[[ProvTree], bool],
    neutral: Callable[[ProvTree], bool],
    empty: ProvTree,
) -> ProvTree:
    """Shared canonicalizing constructor for ∧/∨ nodes."""
    if absorbing(left) or absorbing(right):
        # false under ∧ / true under ∨ absorbs the whole node (footnote 8).
        return empty_opposite(kind)
    children: list[ProvTree] = []
    for operand in (left, right):
        if neutral(operand):
            continue
        if operand.kind is kind:
            children.extend(operand.children)
        else:
            children.append(operand)
    if not children:
        return empty
    if len(children) == 1:
        return children[0]
    children.sort(key=ProvTree._sort_key)
    return ProvTree(kind, children=tuple(children))


def empty_opposite(kind: NodeKind) -> ProvTree:
    """The absorbing constant of a node kind: false for ∧, true for ∨."""
    return false_tree() if kind is NodeKind.AND else true_tree()


def disjoin(left: ProvTree, right: ProvTree) -> ProvTree:
    """``left ⊕ right``: a ∨-node (canonicalized)."""
    return _combine(
        NodeKind.OR,
        left,
        right,
        absorbing=lambda t: t.is_true,
        neutral=lambda t: t.is_false,
        empty=false_tree(),
    )


def conjoin(left: ProvTree, right: ProvTree) -> ProvTree:
    """``left ⊗ right``: a ∧-node (canonicalized)."""
    return _combine(
        NodeKind.AND,
        left,
        right,
        absorbing=lambda t: t.is_false,
        neutral=lambda t: t.is_true,
        empty=true_tree(),
    )


def _combine_free(
    kind: NodeKind,
    left: ProvTree,
    right: ProvTree,
    neutral: Callable[[ProvTree], bool],
    empty: ProvTree,
    dedupe_constant: Callable[[ProvTree], bool] | None,
) -> ProvTree:
    """Constructor for the *free* provenance 2-monoid: no absorbing rules.

    Only the simplifications *forced by the 2-monoid axioms* are applied:

    * neutral constants are dropped (the identity laws), and
    * multiple ``false`` children of an ∧-node collapse to one (the axiom
      ``0 ⊗ 0 = 0``; no dual rule exists for ``true`` under ∨, since
      ``1 ⊕ 1 ≠ 1`` in e.g. the counting semiring).

    In particular ``a ∧ false`` is *kept* — which is what makes the free
    monoid φ-compatible with non-annihilating targets like the Shapley
    2-monoid, where ``a ⊗ 0 ≠ 0``.
    """
    children: list[ProvTree] = []
    seen_constant = False
    for operand in (left, right):
        if neutral(operand):
            continue
        parts = operand.children if operand.kind is kind else (operand,)
        for part in parts:
            if dedupe_constant is not None and dedupe_constant(part):
                if seen_constant:
                    continue
                seen_constant = True
            children.append(part)
    if not children:
        return empty
    if len(children) == 1:
        return children[0]
    children.sort(key=ProvTree._sort_key)
    return ProvTree(kind, children=tuple(children))


def free_disjoin(left: ProvTree, right: ProvTree) -> ProvTree:
    """``left ⊕ right`` in the free provenance 2-monoid."""
    return _combine_free(
        NodeKind.OR, left, right,
        neutral=lambda t: t.is_false,
        empty=false_tree(),
        dedupe_constant=None,
    )


def free_conjoin(left: ProvTree, right: ProvTree) -> ProvTree:
    """``left ⊗ right`` in the free provenance 2-monoid."""
    return _combine_free(
        NodeKind.AND, left, right,
        neutral=lambda t: t.is_true,
        empty=true_tree(),
        dedupe_constant=lambda t: t.is_false,
    )


class ProvenanceMonoid(TwoMonoid[ProvTree]):
    """The provenance 2-monoid of Definition 6.2 (the universal 2-monoid)."""

    name = "provenance trees"

    @property
    def zero(self) -> ProvTree:
        return false_tree()

    @property
    def one(self) -> ProvTree:
        return true_tree()

    def add(self, left: ProvTree, right: ProvTree) -> ProvTree:
        return disjoin(left, right)

    def mul(self, left: ProvTree, right: ProvTree) -> ProvTree:
        return conjoin(left, right)

    @property
    def annihilates(self) -> bool:
        """∧ with ``false`` collapses to ``false`` under canonicalization."""
        return True


class FreeProvenanceMonoid(TwoMonoid[ProvTree]):
    """The *free* provenance 2-monoid: no absorbing simplifications.

    This is the universal object of Theorem 6.4 in full generality: φ-mapping
    its output reproduces the direct run in **any** 2-monoid — including the
    non-annihilating Shapley structure, for which the canonicalized
    :class:`ProvenanceMonoid` is only universal up to support padding
    (because dropping ``a ∧ false`` loses the size contribution of ``a``'s
    facts).  The footnote-8 constant eliminations the paper mentions are
    valid for the three standard semantics but not forced by the axioms;
    keeping the constants is what this class does.
    """

    name = "provenance trees (free)"

    @property
    def zero(self) -> ProvTree:
        return false_tree()

    @property
    def one(self) -> ProvTree:
        return true_tree()

    def add(self, left: ProvTree, right: ProvTree) -> ProvTree:
        return free_disjoin(left, right)

    def mul(self, left: ProvTree, right: ProvTree) -> ProvTree:
        return free_conjoin(left, right)

    @property
    def annihilates(self) -> bool:
        """``a ∧ false`` is kept, so ⊗-by-zero does not annihilate here."""
        return False


def evaluate_tree(
    tree: ProvTree,
    monoid: TwoMonoid[K],
    leaf_value: Callable[[Symbol], K],
) -> K:
    """Map a provenance tree into *monoid* — the φ of Theorem 6.4.

    For decomposable trees with the leaf annotations used by Algorithm 1 this
    equals the algorithm's direct output in *monoid*; the test suite checks
    that equality for all three problem instantiations.
    """
    if tree.is_true:
        return monoid.one
    if tree.is_false:
        return monoid.zero
    if tree.kind is NodeKind.LEAF:
        return leaf_value(tree.symbol)
    values = (evaluate_tree(child, monoid, leaf_value) for child in tree.children)
    if tree.kind is NodeKind.AND:
        return monoid.mul_fold(values)
    return monoid.add_fold(values)


def truth_value(tree: ProvTree, true_symbols: frozenset[Symbol] | set[Symbol]) -> bool:
    """Evaluate the Boolean formula of *tree* with the given symbols set true."""
    if tree.is_true:
        return True
    if tree.is_false:
        return False
    if tree.kind is NodeKind.LEAF:
        return tree.symbol in true_symbols
    if tree.kind is NodeKind.AND:
        return all(truth_value(child, true_symbols) for child in tree.children)
    return any(truth_value(child, true_symbols) for child in tree.children)


def is_read_once(tree: ProvTree) -> bool:
    """A decomposable tree is a read-once form of its Boolean formula."""
    return tree.is_decomposable
