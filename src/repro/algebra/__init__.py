"""2-monoids (Definition 5.6) and their problem-specific instantiations.

The three problem 2-monoids (probability, bag-set, #Sat/Shapley) are *not*
semirings — each violates distributivity — while the auxiliary structures
(counting, Boolean, tropical, polynomial) are genuine semirings used for
cross-checks.  The provenance 2-monoid is the universal one of Theorem 6.4.
"""

from repro.algebra.base import CommutativeSemiring, TwoMonoid
from repro.algebra.bagset import BagSetMonoid, BagSetVector, is_monotone
from repro.algebra.boolean import BooleanSemiring
from repro.algebra.counting import CountingSemiring
from repro.algebra.laws import (
    LawViolation,
    check_two_monoid_laws,
    find_annihilation_violation,
    find_distributivity_violation,
)
from repro.algebra.polynomial import (
    PolynomialSemiring,
    constant,
    monomial_supports,
    variable,
)
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.algebra.real import Real, RealSemiring
from repro.algebra.resilience import Cost, ResilienceMonoid
from repro.algebra.provenance import (
    FreeProvenanceMonoid,
    NodeKind,
    ProvenanceMonoid,
    ProvTree,
    conjoin,
    disjoin,
    evaluate_tree,
    false_tree,
    free_conjoin,
    free_disjoin,
    is_read_once,
    leaf,
    true_tree,
    truth_value,
)
from repro.algebra.shapley import SatVector, ShapleyMonoid
from repro.algebra.tropical import MaxPlusSemiring, MaxTimesSemiring, MinPlusSemiring

__all__ = [
    "BagSetMonoid",
    "BagSetVector",
    "BooleanSemiring",
    "CommutativeSemiring",
    "Cost",
    "CountingSemiring",
    "ExactProbabilityMonoid",
    "FreeProvenanceMonoid",
    "LawViolation",
    "MaxPlusSemiring",
    "MaxTimesSemiring",
    "MinPlusSemiring",
    "NodeKind",
    "PolynomialSemiring",
    "ProbabilityMonoid",
    "ProvTree",
    "ProvenanceMonoid",
    "Real",
    "RealSemiring",
    "ResilienceMonoid",
    "SatVector",
    "ShapleyMonoid",
    "TwoMonoid",
    "check_two_monoid_laws",
    "conjoin",
    "constant",
    "disjoin",
    "evaluate_tree",
    "false_tree",
    "free_conjoin",
    "free_disjoin",
    "find_annihilation_violation",
    "find_distributivity_violation",
    "is_monotone",
    "is_read_once",
    "leaf",
    "monomial_supports",
    "true_tree",
    "truth_value",
    "variable",
]
