"""A resilience 2-monoid — a new instantiation answering Question 2.

The paper's concluding remarks (Question 2) ask which other problems the
unifying algorithm captures.  *Resilience* — the minimum number of
(endogenous) facts whose deletion makes a true query false [Freire et al.,
PVLDB 2015] — turns out to fit: annotate each fact with the cost of
falsifying it and evaluate in the structure

    K = (N ∪ {∞},  ⊕ = +,  ⊗ = min),

because falsifying a disjunction of independent formulas requires falsifying
*both* sides (costs add), while falsifying a conjunction requires falsifying
*either* side (take the cheaper).  Identities: 0 = 0 (an already-false
formula costs nothing) and 1 = ∞ (a tautology cannot be falsified);
``0 ⊗ 0 = min(0, 0) = 0`` holds.

This is again **not** a semiring — ``min(a, b + c) ≠ min(a, b) + min(a, c)``
in general (take a = b = c = 1) — so the same structural story as the
paper's three instantiations applies: Algorithm 1 computes resilience of
hierarchical SJF-BCQs in ``O(|D|)``, and correctness follows from
Theorem 6.4 with φ(tree) = "min-cost falsifying deletion set of the tree's
formula", which is ⊕/⊗-compatible on decomposable trees with disjoint
supports.

Note this structure is the tropical ``(min, +)`` algebra with the *roles of
the operations swapped* relative to :class:`~repro.algebra.tropical.
MinPlusSemiring`: there ``⊕ = min`` distributes; here ``⊕ = +`` does not.
"""

from __future__ import annotations

import math

from repro.algebra.base import TwoMonoid
from repro.core.kernels import (
    ArrayKernel,
    MonoidKernel,
    register_array_kernel,
    register_kernel,
)
from repro.exceptions import AlgebraError

Cost = float
"""Falsification costs: naturals extended with ``math.inf``."""


class ResilienceMonoid(TwoMonoid[Cost]):
    """``(N ∪ {∞}, +, min)`` — min-cost falsification."""

    name = "resilience (N ∪ {∞}, +, min)"

    @property
    def zero(self) -> Cost:
        """An absent/false fact: already false, zero deletion cost."""
        return 0

    @property
    def one(self) -> Cost:
        """An undeletable (exogenous) fact: infinite falsification cost."""
        return math.inf

    @property
    def unit_cost(self) -> Cost:
        """An endogenous fact: falsified by one deletion."""
        return 1

    def add(self, left: Cost, right: Cost) -> Cost:
        """Falsify a disjunction: both sides must fall."""
        return left + right

    def mul(self, left: Cost, right: Cost) -> Cost:
        """Falsify a conjunction: the cheaper side suffices."""
        return min(left, right)

    @property
    def annihilates(self) -> bool:
        """``min(a, 0) = 0`` for costs a ≥ 0, so ⊗-by-zero annihilates."""
        return True

    def validate(self, value: Cost) -> Cost:
        if value != math.inf and (value < 0 or value != int(value)):
            raise AlgebraError(
                f"{value!r} is not a natural falsification cost (or ∞)"
            )
        return value


class ResilienceKernel(MonoidKernel[Cost]):
    """Batched ``(+, min)``: ⊕-folds via ``sum``, ⊗ via ``min``."""

    def fold_add(self, groups):
        return [group[0] if len(group) == 1 else sum(group) for group in groups]

    def mul_aligned(self, lefts, rights):
        return [right if left > right else left for left, right in zip(lefts, rights)]


register_kernel(ResilienceMonoid, ResilienceKernel)


class ResilienceArrayKernel(ArrayKernel):
    """Columnar ``(+, min)`` over float columns.

    Costs are naturals (exactly representable as float64) extended with
    ``∞``, so ``add.reduceat`` sums are order-independent and the tier is
    value-identical to scalar until costs exceed 2⁵³ — far beyond any
    support size the engine can hold.
    """

    def __init__(self, monoid, np):
        super().__init__(monoid, np)
        self.dtype = np.float64

    def fold_groups(self, annotations, starts):
        return self.np.add.reduceat(annotations, starts)

    def mul_arrays(self, lefts, rights):
        return self.np.minimum(lefts, rights)


register_array_kernel(ResilienceMonoid, ResilienceArrayKernel)
