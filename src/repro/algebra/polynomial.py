"""Provenance polynomials ``N[X]`` — the most general commutative semiring.

Elements are polynomials with natural coefficients over fact symbols
(Green–Karvounarakis–Tannen why-provenance).  Annotating every fact of a
hierarchical query with its own indeterminate and running Algorithm 1 yields
the polynomial whose monomials are exactly the satisfying assignments'
fact sets; tests use this to cross-check both the engine and the
provenance-tree path.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Mapping

from repro.algebra.base import CommutativeSemiring

Symbol = Hashable
Monomial = tuple[tuple[Symbol, int], ...]
"""A monomial as a sorted tuple of (symbol, exponent) pairs."""
Polynomial = frozenset[tuple[Monomial, int]]
"""A polynomial as a frozenset of (monomial, coefficient) pairs."""


def variable(symbol: Symbol) -> Polynomial:
    """The polynomial consisting of the single indeterminate *symbol*."""
    monomial: Monomial = ((symbol, 1),)
    return frozenset({(monomial, 1)})


def constant(value: int) -> Polynomial:
    """A constant polynomial."""
    if value == 0:
        return frozenset()
    return frozenset({((), value)})


def _as_dict(polynomial: Polynomial) -> dict[Monomial, int]:
    return dict(polynomial)


def _normalize(coefficients: Mapping[Monomial, int]) -> Polynomial:
    return frozenset(
        (monomial, coefficient)
        for monomial, coefficient in coefficients.items()
        if coefficient
    )


def _multiply_monomials(left: Monomial, right: Monomial) -> Monomial:
    merged: Counter[Symbol] = Counter(dict(left))
    for symbol, exponent in right:
        merged[symbol] += exponent
    return tuple(sorted(merged.items(), key=lambda item: repr(item[0])))


class PolynomialSemiring(CommutativeSemiring[Polynomial]):
    """``N[X]`` under polynomial addition and multiplication."""

    name = "provenance polynomials N[X]"

    @property
    def zero(self) -> Polynomial:
        return constant(0)

    @property
    def one(self) -> Polynomial:
        return constant(1)

    def add(self, left: Polynomial, right: Polynomial) -> Polynomial:
        coefficients = _as_dict(left)
        for monomial, coefficient in right:
            coefficients[monomial] = coefficients.get(monomial, 0) + coefficient
        return _normalize(coefficients)

    def mul(self, left: Polynomial, right: Polynomial) -> Polynomial:
        coefficients: dict[Monomial, int] = {}
        for left_monomial, left_coefficient in left:
            for right_monomial, right_coefficient in right:
                monomial = _multiply_monomials(left_monomial, right_monomial)
                coefficients[monomial] = (
                    coefficients.get(monomial, 0)
                    + left_coefficient * right_coefficient
                )
        return _normalize(coefficients)


def monomial_supports(polynomial: Polynomial) -> set[frozenset[Symbol]]:
    """The sets of symbols appearing in each monomial (ignoring exponents)."""
    return {
        frozenset(symbol for symbol, _ in monomial)
        for monomial, _ in polynomial
    }


def total_degree_one_count(polynomial: Polynomial) -> int:
    """Sum of coefficients — for idempotent-free annotations, ``Q(D)``."""
    return sum(coefficient for _, coefficient in polynomial)
