"""Workload generators: random databases and problem instances.

Everything is seeded (callers pass a :class:`random.Random` or a seed), so
benchmark workloads and property-test instances are reproducible.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from fractions import Fraction
from itertools import accumulate
from typing import Iterable

from repro.db.database import Database
from repro.db.fact import Fact
from repro.problems.bagset_max import BagSetInstance
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.shapley import ShapleyInstance
from repro.query.bcq import BCQ


def _as_rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def _value_sampler(rng: random.Random, domain_size: int, skew: float):
    """A ``() → value`` draw over ``range(domain_size)``, optionally skewed.

    ``skew == 0`` is the uniform ``rng.randrange`` draw (bit-compatible
    with the historical generators, so existing seeds reproduce their
    databases unchanged).  ``skew > 0`` draws from a Zipf/power law —
    value ``k`` with weight ``1/(k+1)**skew`` — via one cumulative table
    and a binary search per draw, still fully determined by *rng*.  Skewed
    draws contend on the low values: the regime where shared-scan fusion
    and sweep batching meet hot keys.
    """
    if skew < 0:
        raise ValueError(f"skew must be non-negative, got {skew!r}")
    if skew == 0:
        return lambda: rng.randrange(domain_size)
    cumulative = list(
        accumulate(1.0 / (k + 1) ** skew for k in range(domain_size))
    )
    total = cumulative[-1]
    return lambda: bisect_right(cumulative, rng.random() * total)


def random_database(
    query: BCQ,
    facts_per_relation: int,
    domain_size: int,
    seed: int | random.Random = 0,
    skew: float = 0.0,
) -> Database:
    """Sample ≈ *facts_per_relation* distinct facts per atom of *query*.

    Values are integers in ``range(domain_size)``; duplicate samples collapse
    (databases are sets), so small domains may yield fewer facts.  A
    positive *skew* draws values from a seeded Zipf distribution instead of
    uniformly (see :func:`_value_sampler`) — heavier collapse on the hot
    low values, contended join keys.
    """
    rng = _as_rng(seed)
    draw = _value_sampler(rng, domain_size, skew)
    facts: list[Fact] = []
    for atom in query.atoms:
        seen: set[tuple[int, ...]] = set()
        attempts = 0
        while len(seen) < facts_per_relation and attempts < 20 * facts_per_relation:
            attempts += 1
            values = tuple(draw() for _ in range(atom.arity))
            seen.add(values)
        facts.extend(Fact(atom.relation, values) for values in seen)
    return Database(facts)


def correlated_database(
    query: BCQ,
    shared_values: int,
    branch_values: int,
    seed: int | random.Random = 0,
) -> Database:
    """A join-friendly database: join variables draw from a small pool.

    Variables occurring in more than one atom draw from
    ``range(shared_values)``; private variables draw from a wider pool.
    Small shared pools force joins to hit, producing many satisfying
    assignments — the regime where bag-set counting is interesting.
    """
    rng = _as_rng(seed)
    occurrences: dict[str, int] = {}
    for atom in query.atoms:
        for variable in atom.variables:
            occurrences[variable] = occurrences.get(variable, 0) + 1
    facts: list[Fact] = []
    for atom in query.atoms:
        for _ in range(shared_values * 2):
            values = tuple(
                rng.randrange(shared_values)
                if occurrences[variable] > 1
                else rng.randrange(branch_values)
                for variable in atom.variables
            )
            facts.append(Fact(atom.relation, values))
    return Database(facts)


def random_probabilistic_database(
    query: BCQ,
    facts_per_relation: int,
    domain_size: int,
    seed: int | random.Random = 0,
    exact: bool = False,
    skew: float = 0.0,
) -> ProbabilisticDatabase:
    """A TID over a random database, probabilities uniform in (0, 1).

    *skew* shapes the fact values exactly as in :func:`random_database`.
    """
    rng = _as_rng(seed)
    base = random_database(query, facts_per_relation, domain_size, rng, skew)
    probabilities = {}
    for fact in base.facts():
        if exact:
            probabilities[fact] = Fraction(rng.randrange(1, 100), 100)
        else:
            probabilities[fact] = rng.uniform(0.01, 0.99)
    return ProbabilisticDatabase(probabilities)


def random_bagset_instance(
    query: BCQ,
    base_facts_per_relation: int,
    repair_facts_per_relation: int,
    budget: int,
    domain_size: int,
    seed: int | random.Random = 0,
) -> BagSetInstance:
    """A random ``(D, Dr, θ)`` instance with disjoint-ish repair facts."""
    rng = _as_rng(seed)
    base = random_database(query, base_facts_per_relation, domain_size, rng)
    repair_pool = random_database(
        query, repair_facts_per_relation, domain_size, rng
    )
    repair = Database(
        fact for fact in repair_pool.facts() if fact not in base
    )
    return BagSetInstance(database=base, repair_database=repair, budget=budget)


def random_shapley_instance(
    query: BCQ,
    facts_per_relation: int,
    domain_size: int,
    endogenous_fraction: float = 0.5,
    seed: int | random.Random = 0,
) -> ShapleyInstance:
    """Split a random database into exogenous/endogenous parts."""
    rng = _as_rng(seed)
    base = random_database(query, facts_per_relation, domain_size, rng)
    endogenous: list[Fact] = []
    exogenous: list[Fact] = []
    for fact in base.facts():
        if rng.random() < endogenous_fraction:
            endogenous.append(fact)
        else:
            exogenous.append(fact)
    if not endogenous:
        # Shapley needs at least one endogenous fact to attribute to.
        endogenous, exogenous = exogenous[:1], exogenous[1:]
    return ShapleyInstance(
        exogenous=Database(exogenous), endogenous=Database(endogenous)
    )


def star_database(
    query: BCQ, hubs: int, spokes_per_hub: int
) -> Database:
    """Deterministic workload for star queries ``Ri(X, Yi)``.

    Every hub value joins with *spokes_per_hub* spokes in each branch
    relation, so the bag-set value is ``hubs · spokes^branches`` — handy for
    closed-form correctness checks at benchmark scale.
    """
    facts = [
        Fact(atom.relation, (hub, (hub, atom.relation, spoke)))
        for atom in query.atoms
        for hub in range(hubs)
        for spoke in range(spokes_per_hub)
    ]
    return Database(facts)


def scale_database(database: Database, relations: Iterable[str]) -> dict[str, int]:
    """Per-relation fact counts (reporting helper for benchmark tables)."""
    return {relation: len(database.tuples(relation)) for relation in relations}
