"""Workloads: query families, random instances, and graph generators."""

from repro.workloads.generators import (
    correlated_database,
    random_bagset_instance,
    random_database,
    random_probabilistic_database,
    random_shapley_instance,
    scale_database,
    star_database,
)
from repro.workloads.graphs import (
    cycle_graph,
    gnp_random_graph,
    path_graph,
    planted_biclique_graph,
)

__all__ = [
    "correlated_database",
    "cycle_graph",
    "gnp_random_graph",
    "path_graph",
    "planted_biclique_graph",
    "random_bagset_instance",
    "random_database",
    "random_probabilistic_database",
    "random_shapley_instance",
    "scale_database",
    "star_database",
]
