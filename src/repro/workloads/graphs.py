"""Random graph generators for the hardness experiments (E8).

The planted-biclique generator hides a ``k × k`` balanced complete bipartite
subgraph inside G(n, p) noise — the natural hard workload for the Theorem 4.4
reduction: the reduction-based solver must recover the planted structure.
"""

from __future__ import annotations

import random

from repro.hardness.bcbs import Graph


def _as_rng(seed_or_rng: int | random.Random) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def gnp_random_graph(n: int, p: float, seed: int | random.Random = 0) -> Graph:
    """Erdős–Rényi ``G(n, p)`` on vertices ``0 .. n-1``."""
    rng = _as_rng(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    return Graph.from_edges(edges, vertices=range(n))


def planted_biclique_graph(
    n: int, k: int, noise: float, seed: int | random.Random = 0
) -> tuple[Graph, frozenset[int], frozenset[int]]:
    """``G(n, noise)`` with a planted balanced ``k × k`` biclique.

    Returns the graph and the two planted parts (the first ``k`` and the next
    ``k`` vertices).
    """
    if 2 * k > n:
        raise ValueError("need n ≥ 2k to plant a balanced k × k biclique")
    rng = _as_rng(seed)
    base = gnp_random_graph(n, noise, rng)
    part_one = frozenset(range(k))
    part_two = frozenset(range(k, 2 * k))
    planted = [(u, v) for u in part_one for v in part_two]
    edges = {tuple(sorted(edge)) for edge in planted}
    edges.update(tuple(sorted(edge)) for edge in base.edges)
    return (
        Graph.from_edges(edges, vertices=range(n)),
        part_one,
        part_two,
    )


def path_graph(n: int) -> Graph:
    """The path ``0 — 1 — ... — n-1`` (biclique-free beyond 1×1 for n ≥ 2)."""
    return Graph.from_edges(
        [(i, i + 1) for i in range(n - 1)], vertices=range(n)
    )


def cycle_graph(n: int) -> Graph:
    """The n-cycle."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % n) for i in range(n)]
    return Graph.from_edges(edges, vertices=range(n))
