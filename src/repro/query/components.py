"""Connected components of conjunctive queries.

Two atoms are *connected* when they share a variable, or transitively through
other atoms (Section 5.1 of the paper).  The connected components of a query
``Q`` are the unique connected sub-queries ``Q1 ∧ ... ∧ Qm`` with pairwise
disjoint variable sets.  Variable-free atoms each form their own component.
"""

from __future__ import annotations

from repro.query.atoms import Atom
from repro.query.bcq import BCQ


def connected_components(query: BCQ) -> tuple[BCQ, ...]:
    """Split *query* into its connected components, preserving atom order.

    Nullary atoms share no variables with anything and therefore form
    singleton components.
    """
    parent: dict[int, int] = {i: i for i in range(len(query.atoms))}

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    owner: dict[str, int] = {}
    for index, atom in enumerate(query.atoms):
        for variable in atom.variables:
            if variable in owner:
                union(owner[variable], index)
            else:
                owner[variable] = index

    groups: dict[int, list[Atom]] = {}
    for index, atom in enumerate(query.atoms):
        groups.setdefault(find(index), []).append(atom)
    ordered_roots = sorted(groups, key=lambda root: min(
        i for i, a in enumerate(query.atoms) if a in groups[root]
    ))
    return tuple(
        BCQ(tuple(groups[root]), f"{query.name}_{k}")
        for k, root in enumerate(ordered_roots)
    )


def is_connected(query: BCQ) -> bool:
    """True when every pair of atoms in *query* is connected."""
    return len(connected_components(query)) == 1
