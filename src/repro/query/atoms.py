"""Atoms of conjunctive queries.

An atom is an expression ``R(X1, ..., Xk)`` where ``R`` is a relation symbol
and ``X1, ..., Xk`` are *distinct* variables.  The paper treats the variables
of an atom as a set; we store them as an ordered tuple (so facts can be plain
value tuples aligned positionally) and expose the set view through
:attr:`Atom.variable_set`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import QueryError

Variable = str
"""Variables are plain strings; by convention they start with a capital letter."""


@dataclass(frozen=True, order=True)
class Atom:
    """A query atom ``relation(variables...)`` with pairwise-distinct variables.

    Parameters
    ----------
    relation:
        The relation symbol, e.g. ``"R"``.
    variables:
        Ordered tuple of distinct variable names.
    """

    relation: str
    variables: tuple[Variable, ...]
    _variable_set: frozenset[Variable] = field(
        init=False, repr=False, compare=False, hash=False, default=frozenset()
    )

    def __post_init__(self) -> None:
        if not self.relation:
            raise QueryError("atom relation symbol must be a non-empty string")
        variables = tuple(self.variables)
        if len(set(variables)) != len(variables):
            raise QueryError(
                f"atom {self.relation}{variables} repeats a variable; "
                "atoms must have pairwise-distinct variables"
            )
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "_variable_set", frozenset(variables))

    @property
    def arity(self) -> int:
        """Number of variables in the atom."""
        return len(self.variables)

    @property
    def variable_set(self) -> frozenset[Variable]:
        """The paper's set-of-variables view of the atom."""
        return self._variable_set

    @property
    def is_nullary(self) -> bool:
        """True when the atom has no variables, i.e. it is of the form ``R()``."""
        return not self.variables

    def contains(self, variable: Variable) -> bool:
        """Return True when *variable* occurs in this atom."""
        return variable in self._variable_set

    def without(self, variable: Variable, new_relation: str) -> Atom:
        """Return a copy named *new_relation* with *variable* removed.

        This is the atom-level effect of Rule 1 of the elimination procedure
        (Proposition 5.1).
        """
        if variable not in self._variable_set:
            raise QueryError(f"variable {variable} does not occur in {self}")
        remaining = tuple(v for v in self.variables if v != variable)
        return Atom(new_relation, remaining)

    def renamed(self, new_relation: str) -> Atom:
        """Return a copy of this atom under a new relation symbol."""
        return Atom(new_relation, self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


def make_atom(relation: str, variables: Iterable[Variable]) -> Atom:
    """Convenience constructor accepting any iterable of variables."""
    return Atom(relation, tuple(variables))
