"""Query model: atoms, SJF-BCQs, the hierarchical property, and elimination.

Public surface:

* :class:`~repro.query.atoms.Atom`, :class:`~repro.query.bcq.BCQ`,
  :func:`~repro.query.bcq.make_query`, :func:`~repro.query.parser.parse_query`
* :func:`~repro.query.hierarchy.is_hierarchical` (pairwise definition),
  :func:`~repro.query.elimination.eliminate` (Proposition 5.1 procedure),
  :func:`~repro.query.tree.build_variable_forest` (Proposition 5.5 trees)
* :func:`~repro.query.gyo.is_acyclic` (GYO, for the acyclic-vs-hierarchical gap)
* query families in :mod:`repro.query.families`
"""

from repro.query.atoms import Atom, Variable, make_atom
from repro.query.bcq import BCQ, make_query
from repro.query.components import connected_components, is_connected
from repro.query.elimination import (
    EliminationTrace,
    Rule1Step,
    Rule2Step,
    apply_step,
    eliminate,
    is_hierarchical_by_elimination,
    make_random_policy,
)
from repro.query.families import (
    chain_query,
    forest_query,
    q_disconnected,
    q_eq1,
    q_example_53,
    q_h,
    q_nh,
    random_hierarchical_query,
    random_query,
    star_query,
    telescope_query,
)
from repro.query.gyo import is_acyclic
from repro.query.hierarchy import (
    NonHierarchicalWitness,
    atom_sets,
    find_non_hierarchical_witness,
    is_hierarchical,
)
from repro.query.parser import parse_query
from repro.query.tree import (
    VariableForest,
    VariableTree,
    build_variable_forest,
    is_hierarchical_by_tree,
    verify_variable_tree,
)

__all__ = [
    "Atom",
    "BCQ",
    "EliminationTrace",
    "NonHierarchicalWitness",
    "Rule1Step",
    "Rule2Step",
    "Variable",
    "VariableForest",
    "VariableTree",
    "apply_step",
    "atom_sets",
    "build_variable_forest",
    "chain_query",
    "connected_components",
    "eliminate",
    "find_non_hierarchical_witness",
    "forest_query",
    "is_acyclic",
    "is_connected",
    "is_hierarchical",
    "is_hierarchical_by_elimination",
    "is_hierarchical_by_tree",
    "make_atom",
    "make_query",
    "make_random_policy",
    "parse_query",
    "q_disconnected",
    "q_eq1",
    "q_example_53",
    "q_h",
    "q_nh",
    "random_hierarchical_query",
    "random_query",
    "star_query",
    "telescope_query",
    "verify_variable_tree",
]
