"""Query families: the paper's named queries plus parameterized generators.

These are the workloads of the benchmark suite.  Hierarchical families (stars,
telescopes, forests) drive the tractable-side scaling experiments; ``q_nh``
drives the hardness experiments; the random generators drive the property
tests.
"""

from __future__ import annotations

import random

from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ


def q_eq1() -> BCQ:
    """The running-example query of Eq. (1): ``Q() :- R(A,B) ∧ S(A,C) ∧ T(A,C,D)``."""
    return BCQ(
        (
            Atom("R", ("A", "B")),
            Atom("S", ("A", "C")),
            Atom("T", ("A", "C", "D")),
        )
    )


def q_h() -> BCQ:
    """The paper's hierarchical example: ``Q() :- E(X,Y) ∧ F(Y,Z)``."""
    return BCQ((Atom("E", ("X", "Y")), Atom("F", ("Y", "Z"))))


def q_nh() -> BCQ:
    """The canonical non-hierarchical query: ``Q() :- R(X) ∧ S(X,Y) ∧ T(Y)``."""
    return BCQ((Atom("R", ("X",)), Atom("S", ("X", "Y")), Atom("T", ("Y",))))


def q_disconnected() -> BCQ:
    """Example 5.4: the disconnected hierarchical query ``Q() :- R(A) ∧ S(B)``."""
    return BCQ((Atom("R", ("A",)), Atom("S", ("B",))))


def q_example_53() -> BCQ:
    """Example 5.3: the non-hierarchical chain ``R(A,B) ∧ S(B,C) ∧ T(C,D)``."""
    return BCQ(
        (Atom("R", ("A", "B")), Atom("S", ("B", "C")), Atom("T", ("C", "D")))
    )


def star_query(branches: int) -> BCQ:
    """``Q() :- R1(X,Y1) ∧ ... ∧ Rk(X,Yk)`` — hierarchical for every k ≥ 1."""
    if branches < 1:
        raise ValueError("a star query needs at least one branch")
    atoms = tuple(
        Atom(f"R{i}", ("X", f"Y{i}")) for i in range(1, branches + 1)
    )
    return BCQ(atoms)


def telescope_query(depth: int) -> BCQ:
    """``Q() :- R1(X1) ∧ R2(X1,X2) ∧ ... ∧ Rd(X1..Xd)`` — a maximal hierarchy chain."""
    if depth < 1:
        raise ValueError("a telescope query needs depth at least 1")
    atoms = tuple(
        Atom(f"R{i}", tuple(f"X{j}" for j in range(1, i + 1)))
        for i in range(1, depth + 1)
    )
    return BCQ(atoms)


def chain_query(length: int) -> BCQ:
    """``Q() :- R1(X1,X2) ∧ ... ∧ Rk(Xk,Xk+1)`` — non-hierarchical for k ≥ 3."""
    if length < 1:
        raise ValueError("a chain query needs at least one atom")
    atoms = tuple(
        Atom(f"R{i}", (f"X{i}", f"X{i + 1}")) for i in range(1, length + 1)
    )
    return BCQ(atoms)


def forest_query(stars: int, branches: int) -> BCQ:
    """A disconnected hierarchical query: *stars* disjoint stars of *branches* arms."""
    atoms: list[Atom] = []
    for s in range(1, stars + 1):
        for b in range(1, branches + 1):
            atoms.append(Atom(f"R{s}_{b}", (f"X{s}", f"Y{s}_{b}")))
    return BCQ(tuple(atoms))


def random_hierarchical_query(
    rng: random.Random,
    max_variables: int = 6,
    max_atoms: int = 6,
) -> BCQ:
    """Sample a hierarchical SJF-BCQ by sampling a random variable tree.

    The construction is the converse of Proposition 5.5: build a random rooted
    forest on a variable pool, then emit one atom per sampled root-path.  The
    result is hierarchical by construction (and tests verify this against all
    three hierarchicality tests).
    """
    n_vars = rng.randint(1, max_variables)
    variables: list[Variable] = [f"V{i}" for i in range(n_vars)]
    parent: dict[Variable, Variable | None] = {}
    roots: list[Variable] = []
    for index, variable in enumerate(variables):
        if index == 0 or rng.random() < 0.25:
            parent[variable] = None
            roots.append(variable)
        else:
            parent[variable] = variables[rng.randrange(index)]

    def root_path(variable: Variable) -> tuple[Variable, ...]:
        path = [variable]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])  # type: ignore[arg-type]
        return tuple(path)

    n_atoms = rng.randint(1, max_atoms)
    atoms: list[Atom] = []
    # Ensure every variable is used by covering each leaf's root-path first.
    leaves = [v for v in variables if v not in set(parent.values())]
    picks = leaves + [rng.choice(variables) for _ in range(max(0, n_atoms - len(leaves)))]
    for index, pick in enumerate(picks):
        atoms.append(Atom(f"A{index}", root_path(pick)))
    if rng.random() < 0.3:
        atoms.append(Atom("NULL0", ()))
    return BCQ(tuple(atoms))


def random_query(
    rng: random.Random,
    max_variables: int = 5,
    max_atoms: int = 5,
    max_arity: int = 3,
) -> BCQ:
    """Sample an arbitrary SJF-BCQ (hierarchical or not) for property tests."""
    n_vars = rng.randint(1, max_variables)
    variables = [f"V{i}" for i in range(n_vars)]
    n_atoms = rng.randint(1, max_atoms)
    atoms = []
    for index in range(n_atoms):
        arity = rng.randint(0, min(max_arity, n_vars))
        atom_vars = tuple(rng.sample(variables, arity))
        atoms.append(Atom(f"A{index}", atom_vars))
    return BCQ(tuple(atoms))
